#!/usr/bin/env python3
"""Degrees-of-separation analysis on a social-network-like graph.

The workload the paper's introduction motivates: BFS as the building
block of graph analytics.  This example uses the library's hybrid BFS to
measure, on an R-MAT "social network":

* the hop-distance distribution from a set of seed users (the
  small-world effect),
* the reachable fraction of the network,
* how much simulated cluster time the analysis costs on NUMA hardware
  with and without the paper's optimizations.

Usage::

    python examples/social_network_analysis.py [scale]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro import BFSConfig, BFSEngine, paper_cluster, rmat_graph
from repro.core.validate import compute_levels
from repro.graph.degree import degree_statistics, sample_roots
from repro.util import format_si, format_table, format_time_ns


def main(scale: int = 14) -> None:
    graph = rmat_graph(scale=scale, seed=42)
    stats = degree_statistics(graph)
    print("== the network ==")
    print(f"  users              : {stats.num_vertices:,}")
    print(f"  friendships        : {stats.num_edges:,}")
    print(f"  most-connected user: {stats.max_degree:,} friends")
    print(f"  inactive accounts  : {stats.isolated_fraction * 100:.0f}% "
          f"(degree 0)")
    print()

    cluster = paper_cluster(nodes=4)
    seeds = sample_roots(graph, 4, seed=11)

    engine = BFSEngine(graph, cluster, BFSConfig.granularity_variant(256))
    hop_counter: Counter[int] = Counter()
    reachable = []
    sim_seconds = 0.0
    for seed in seeds:
        result = engine.run(int(seed))
        sim_seconds += result.seconds
        levels = compute_levels(graph, int(seed), result.parent)
        reached = levels[levels >= 0]
        reachable.append(reached.size / graph.num_vertices)
        hop_counter.update(Counter(reached.tolist()))

    print("== degrees of separation (from 4 seed users) ==")
    total = sum(hop_counter.values())
    rows = []
    cumulative = 0.0
    for hop in sorted(hop_counter):
        share = hop_counter[hop] / total
        cumulative += share
        rows.append([hop, hop_counter[hop], f"{share*100:.1f}%",
                     f"{cumulative*100:.1f}%"])
    print(format_table(["hops", "users", "share", "cumulative"], rows))
    within4 = sum(hop_counter[h] for h in hop_counter if h <= 4) / total
    print(f"\n  {within4*100:.0f}% of reachable users are within 4 hops "
          f"(small-world)")
    print(f"  reachable fraction of the network: "
          f"{np.mean(reachable)*100:.0f}%")
    print()

    print("== most influential users (distributed PageRank) ==")
    from repro.analysis import distributed_pagerank

    pr = distributed_pagerank(graph, cluster, tol=1e-10)
    top = np.argsort(pr.ranks)[::-1][:5]
    deg = graph.degrees()
    for rank_pos, user in enumerate(top, 1):
        print(f"  #{rank_pos}: user {int(user)} "
              f"(pagerank {pr.ranks[user]:.2e}, {int(deg[user])} friends)")
    print(f"  converged in {pr.iterations} iterations; the rank-vector "
          f"allgather is {pr.comm_fraction*100:.0f}% of its simulated cost")
    print()

    print("== what this analysis would cost at production scale ==")
    # Price the same traversals at a billion-user scale (2^30) via the
    # extrapolation mode.
    from repro.model import extrapolate_result

    target = 30
    for config in (BFSConfig.original_ppn1(), BFSConfig.granularity_variant(256)):
        eng = BFSEngine(graph, cluster, config)
        secs = sum(
            extrapolate_result(eng.run(int(s)), eng, target).seconds
            for s in seeds
        )
        label = "unoptimized (ppn=1)" if config.ppn == 1 else "paper-optimized"
        print(f"  {label:20s}: {format_time_ns(secs * 1e9)} simulated for "
              f"4 traversals of a {2**target:,}-user network")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
