#!/usr/bin/env python3
"""Compare 1-D hybrid BFS with 2-D partitioned BFS (Buluc-Madduri).

The paper's related work names the 2-D algorithm as the main alternative
line of attack on BFS communication and argues the two are orthogonal.
This example puts both engines on the same simulated cluster:

* communication *volume* per level — the 2-D grid exchanges within
  rows/columns only (~sqrt(p) peers), so pure top-down traffic drops;
* end-to-end *time* at paper scale — the 1-D hybrid still wins because
  direction switching eliminates most edge examinations outright.

Usage::

    python examples/two_d_partitioning.py [scale]
"""

from __future__ import annotations

import sys

from repro import BFSConfig, paper_cluster, rmat_graph
from repro.core import BFSEngine, Grid2D, TraversalMode, TwoDBFSEngine
from repro.graph.degree import sample_roots
from repro.model import extrapolate_result
from repro.util import format_bytes, format_table, format_time_ns

TARGET_SCALE = 29


def main(scale: int = 14) -> None:
    graph = rmat_graph(scale=scale, seed=2)
    cluster = paper_cluster(nodes=2)
    root = int(sample_roots(graph, 1, seed=4)[0])
    print(f"scale-{scale} R-MAT, 16 ranks on {cluster.nodes} nodes; "
          f"times priced at scale {TARGET_SCALE}\n")

    eng_2d = TwoDBFSEngine(graph, cluster, Grid2D(4, 4))
    res_2d = eng_2d.extrapolate(eng_2d.run(root), TARGET_SCALE)

    eng_td = BFSEngine(graph, cluster, BFSConfig(mode=TraversalMode.TOP_DOWN))
    res_td = extrapolate_result(eng_td.run(root), eng_td, TARGET_SCALE)

    eng_hy = BFSEngine(graph, cluster, BFSConfig.par_allgather_variant())
    res_hy = extrapolate_result(eng_hy.run(root), eng_hy, TARGET_SCALE)

    td_bytes = sum(
        float(lc.td_send_bytes.sum())
        for lc in res_td.counts.levels
        if lc.td_send_bytes is not None
    )
    hy_bytes = sum(
        float(lc.td_send_bytes.sum())
        for lc in res_hy.counts.levels
        if lc.td_send_bytes is not None
    ) + sum(
        lc.inq_part_words * 8.0 * res_hy.counts.num_ranks
        for lc in res_hy.counts.levels
    )
    rows = [
        ["1-D pure top-down", format_bytes(td_bytes),
         format_time_ns(res_td.seconds * 1e9)],
        ["2-D top-down (4x4 grid)", format_bytes(res_2d.total_comm_bytes),
         format_time_ns(res_2d.seconds * 1e9)],
        ["1-D hybrid + paper's optimizations", format_bytes(hy_bytes),
         format_time_ns(res_hy.seconds * 1e9)],
    ]
    print(format_table(["engine", "comm volume", "time"], rows))
    print()
    print(f"2-D cuts pure-top-down traffic by "
          f"{td_bytes / res_2d.total_comm_bytes:.1f}x (the SC'11 result);")
    print(f"the hybrid still finishes {res_2d.seconds / res_hy.seconds:.1f}x "
          f"faster end to end — the two techniques attack different costs,")
    print("which is why the paper calls them composable.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
