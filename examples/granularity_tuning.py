#!/usr/bin/env python3
"""Auto-tune the summary-bitmap granularity for a machine and scale.

Section III.C of the paper hand-tunes the ``in_queue_summary``
granularity (64 -> 256 gives +10.2% at scale 32).  This example turns
that into a tool:

1. it *measures* the summary zero-fractions per BFS level on a real
   (small) graph, showing the trade-off's raw material;
2. it sweeps granularities in the analytic mode at the target scale and
   recommends the best one for the given cluster.

Usage::

    python examples/granularity_tuning.py [target_scale] [nodes]
"""

from __future__ import annotations

import sys

from repro import (
    BFSConfig,
    Bitmap,
    SummaryBitmap,
    BFSEngine,
    paper_cluster,
    rmat_graph,
)
from repro.graph.degree import sample_roots
from repro.model.analytic import analytic_graph500
from repro.util import format_bytes, format_table


def measure_zero_fractions(scale: int = 14) -> None:
    """Show zero fractions of real per-level frontiers vs granularity."""
    graph = rmat_graph(scale=scale, seed=5)
    cluster = paper_cluster(nodes=1)
    engine = BFSEngine(graph, cluster, BFSConfig.original_ppn8())
    root = int(sample_roots(graph, 1, seed=3)[0])
    result = engine.run(root)

    # Reconstruct each level's in_queue from the recorded level structure.
    print(f"measured on a scale-{scale} run "
          f"({result.levels} levels, {result.visited:,} reached):\n")
    rows = []
    from repro.core.validate import compute_levels

    levels = compute_levels(graph, root, result.parent)
    import numpy as np

    for lvl in range(int(levels.max()) + 1):
        frontier = np.flatnonzero(levels == lvl)
        bitmap = Bitmap.from_indices(graph.num_vertices, frontier)
        row = [lvl, frontier.size]
        for g in (64, 256, 1024):
            row.append(
                f"{SummaryBitmap.build(bitmap, g).zero_fraction()*100:.0f}%"
            )
        rows.append(row)
    print(format_table(
        ["level", "frontier", "zeros g=64", "zeros g=256", "zeros g=1024"],
        rows,
        title="summary zero fraction per level (more zeros = more filtering)",
    ))
    print()


def tune(target_scale: int, nodes: int) -> None:
    cluster = paper_cluster(nodes=nodes)
    print(f"tuning for scale {target_scale} on {nodes} nodes "
          f"(in_queue = {format_bytes(2**target_scale / 8)}):\n")
    rows = []
    teps = {}
    for g in (64, 128, 256, 512, 1024, 2048, 4096):
        res = analytic_graph500(
            cluster, BFSConfig.granularity_variant(g), target_scale
        )
        teps[g] = res.teps
        rows.append([
            g,
            format_bytes(2**target_scale / g / 8),
            res.teps / 1e9,
        ])
    print(format_table(
        ["granularity", "summary size", "GTEPS"],
        rows,
        title="granularity sweep (analytic mode)",
    ))
    best = max(teps, key=teps.get)
    print(f"\nrecommended granularity: {best} "
          f"(+{(teps[best]/teps[64]-1)*100:.1f}% over the default 64)")


def main() -> None:
    target_scale = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    measure_zero_fractions()
    tune(target_scale, nodes)


if __name__ == "__main__":
    main()
