#!/usr/bin/env python3
"""Quickstart: run the paper's NUMA-optimized BFS end to end.

Generates a Graph500-style R-MAT graph, runs the hybrid BFS on a
simulated 4-node NUMA cluster under two configurations (the unoptimized
baseline and the paper's full optimization stack), validates the BFS
trees, and prints TEPS plus the per-phase profile.

Usage::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import (
    BFSConfig,
    paper_cluster,
    rmat_graph,
    run_graph500,
    validate_parent_tree,
)
from repro.model import predict_graph500
from repro.util import format_si, format_time_ns

# Performance comparisons are priced at this paper-like scale — tiny
# functional graphs are latency-dominated and would hide the NUMA story.
TARGET_SCALE = 31


def main(scale: int = 14) -> None:
    print(f"generating R-MAT graph, scale {scale} "
          f"({2**scale:,} vertices, ~{16 * 2**scale:,} edges)...")
    graph = rmat_graph(scale=scale, seed=1)
    cluster = paper_cluster(nodes=8)
    print(f"cluster: {cluster.nodes} nodes x {cluster.node.sockets} sockets "
          f"x {cluster.node.socket.cores} cores = {cluster.total_cores} cores")
    print()

    # 1. Functional run + Graph500 validation at the actual scale.
    baseline = run_graph500(
        graph, cluster, BFSConfig.original_ppn8(), num_roots=4, seed=7
    )
    sample = baseline.results[0]
    validate_parent_tree(graph, sample.root, sample.parent)
    print(f"functional check: BFS from root {sample.root} reached "
          f"{sample.visited:,} vertices in {sample.levels} levels "
          f"(all five Graph500 validation checks passed)")
    print()

    # 2. Performance story, priced at paper scale via extrapolation.
    print(f"performance at scale {TARGET_SCALE} "
          f"({2**TARGET_SCALE:,} vertices), {cluster.nodes} nodes:")
    for config in (
        BFSConfig.original_ppn1(),
        BFSConfig.original_ppn8(),
        BFSConfig.granularity_variant(256).named("Fully optimized"),
    ):
        pred = predict_graph500(
            graph, cluster, config, target_scale=TARGET_SCALE,
            num_roots=4, seed=7,
        )
        bd = pred.mean_breakdown()
        print(f"== {config.label} ==")
        print(f"  harmonic-mean TEPS : "
              f"{format_si(pred.harmonic_mean_teps, 'TEPS')}")
        print(f"  mean BFS time      : {format_time_ns(pred.mean_seconds * 1e9)}")
        print("  profile            : "
              f"top-down {format_time_ns(bd.td_compute + bd.td_comm)}, "
              f"bottom-up compute {format_time_ns(bd.bu_compute)}, "
              f"bottom-up comm {format_time_ns(bd.bu_comm)}, "
              f"switch {format_time_ns(bd.switch)}, "
              f"stall {format_time_ns(bd.stall)}")
        print(f"  comm share         : {bd.comm_fraction * 100:.0f}%")
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
