#!/usr/bin/env python3
"""Explore the cluster design space for Graph500-class BFS.

The paper argues that *fewer, fatter* NUMA nodes lighten the network
pressure of BFS.  This example uses the analytic prediction mode to
sweep hardware designs at a fixed total core count (1024 cores) and asks:
for a scale-32 traversal, how should the cores be packaged — many thin
nodes or few 8-socket NUMA boxes, one IB port or two?

Everything runs in milliseconds because no graph is materialized: the
level-profile model prices each design directly (see
repro/model/levelprofile.py).

Usage::

    python examples/cluster_design_space.py
"""

from __future__ import annotations

import dataclasses as dc

from repro import BFSConfig, CommConfig
from repro.machine.spec import ClusterSpec, IbSpec, NodeSpec, x7550_socket
from repro.model.analytic import analytic_graph500
from repro.util import format_table

SCALE = 32
TOTAL_CORES = 1024


def make_design(sockets_per_node: int, ib_ports: int) -> ClusterSpec:
    socket = x7550_socket()
    nodes = TOTAL_CORES // (sockets_per_node * socket.cores)
    node = NodeSpec(
        sockets=sockets_per_node,
        socket=socket,
        ib=dc.replace(IbSpec(), ports=ib_ports),
    )
    return ClusterSpec(nodes=nodes, node=node)


def best_config(cluster: ClusterSpec) -> BFSConfig:
    """The paper's full stack, adapted to the node's socket count."""
    if cluster.node.sockets == 1:
        return BFSConfig(ppn=1, comm=CommConfig(summary_granularity=256))
    return BFSConfig.granularity_variant(256)


def main() -> None:
    print(f"design space: {TOTAL_CORES} cores total, scale-{SCALE} R-MAT, "
          f"paper-optimized BFS on every design\n")
    rows = []
    results = {}
    for sockets in (1, 2, 4, 8):
        for ports in (1, 2):
            cluster = make_design(sockets, ports)
            res = analytic_graph500(cluster, best_config(cluster), SCALE)
            bd = res.timing.breakdown
            key = (sockets, ports)
            results[key] = res.teps
            rows.append(
                [
                    f"{cluster.nodes} nodes x {sockets} sockets",
                    ports,
                    res.teps / 1e9,
                    f"{bd.comm_fraction * 100:.0f}%",
                ]
            )
    print(format_table(
        ["design", "IB ports", "GTEPS", "comm share"],
        rows,
        title="1024-core design sweep",
    ))
    best = max(results, key=results.get)
    print(f"\nbest design: {best[0]} sockets per node, {best[1]} IB ports "
          f"-> {results[best]/1e9:.1f} GTEPS")
    thin = results[(1, 2)]
    fat = results[(8, 2)]
    print(f"fat 8-socket nodes vs thin 1-socket nodes (2 ports): "
          f"{fat/thin:.2f}x — {'fewer, fatter nodes win' if fat > thin else 'thin nodes win'}"
          f" (the paper's premise)")


if __name__ == "__main__":
    main()
