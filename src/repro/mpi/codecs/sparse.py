"""Sparse vertex-index codec for low-fill frontiers.

Early and late BFS levels touch a small fraction of the vertex space;
shipping the full bitmap wastes ``nbits/8`` bytes on mostly-zero words.
This codec sends the set-bit positions as a delta-compressed varint
list:

``varint(count) · varint(first position) · varint gaps``

At fill ratio *f* the average gap is ``1/f``, so each position costs
about ``max(1, log128(1/f))`` bytes — cheaper than the bitmap below
roughly 8 % fill (the break-even ``auto`` discovers from the closed
form below).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.codecs.base import EncodedFrontier, FrontierCodec, register_codec
from repro.mpi.codecs.varint import decode_varints, encode_varints
from repro.util import bitops

__all__ = ["SparseIndexCodec", "estimate_sparse_bytes"]


def estimate_sparse_bytes(nbits: int, set_bits: int) -> float:
    """Closed-form wire-byte estimate: count header plus per-gap varints.

    Gaps at fill *f* average ``1/f``; a gap of *g* costs
    ``ceil(log2(g+1) / 7)`` bytes.
    """
    if set_bits <= 0:
        return 2.0
    avg_gap = max(nbits / set_bits, 1.0)
    bytes_per_gap = max(1.0, math.ceil(math.log2(avg_gap + 1.0) / 7.0))
    return 3.0 + set_bits * bytes_per_gap


@register_codec
class SparseIndexCodec(FrontierCodec):
    """Delta-varint list of set-bit positions (see module docstring)."""

    name = "sparse-index"

    def encode(
        self,
        words: np.ndarray,
        *,
        nbits: int | None = None,
        visited: np.ndarray | None = None,
    ) -> EncodedFrontier:
        """List the set positions and delta-compress the gaps."""
        if words.dtype != bitops.WORD_DTYPE:
            raise CommunicationError("sparse codec expects uint64 words")
        nbits = words.size * 64 if nbits is None else nbits
        idx = bitops.nonzero_bit_indices(words, nbits)
        return EncodedFrontier(
            codec=self.name,
            payload=encode_positions(idx),
            nwords=int(words.size),
            nbits=int(nbits),
        )

    def decode(
        self,
        enc: EncodedFrontier,
        *,
        visited: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scatter the decoded positions back into a zeroed bitmap."""
        idx, _ = decode_positions(enc.payload)
        out = np.zeros(enc.nwords, dtype=bitops.WORD_DTYPE)
        if idx.size:
            if int(idx[-1]) >= enc.nwords * 64:
                raise CommunicationError("sparse payload position out of range")
            bitops.set_bits(out, idx)
        return out

    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Delegates to :func:`estimate_sparse_bytes` (ignores visited)."""
        return estimate_sparse_bytes(nbits, set_bits)


def encode_positions(idx: np.ndarray) -> np.ndarray:
    """Encode a sorted position list as count + first + gap varints."""
    count = np.array([idx.size], dtype=np.int64)
    if idx.size == 0:
        return encode_varints(count)
    deltas = np.empty(idx.size, dtype=np.int64)
    deltas[0] = idx[0]
    deltas[1:] = np.diff(idx)
    return np.concatenate((encode_varints(count), encode_varints(deltas)))


def decode_positions(payload: np.ndarray) -> tuple[np.ndarray, int]:
    """Decode a position list; returns ``(positions, bytes consumed)``."""
    (count,), used = decode_varints(payload, 1)
    if count == 0:
        return np.zeros(0, dtype=np.int64), used
    deltas, used2 = decode_varints(payload[used:], int(count))
    return np.cumsum(deltas), used + used2
