"""Vectorized LEB128 varint encoding for codec payloads.

All frontier codecs store counts, vertex positions and run tokens as
unsigned little-endian base-128 varints (the Graph500 compressed-frontier
formats of Lv et al. use the same 7-bit-group scheme).  Both directions
are numpy-vectorized: the encoder loops over the at most ten 7-bit byte
positions of a 64-bit value, never over individual values, and the
decoder reconstructs all values of a buffer with one masked
shift-accumulate per byte position.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError

__all__ = ["encode_varints", "decode_varints", "varint_size"]

#: Longest possible varint of a 64-bit value (ceil(64 / 7) bytes).
_MAX_VARINT_BYTES = 10


def varint_size(values: np.ndarray) -> np.ndarray:
    """Encoded size in bytes of each value (int64 array).

    A value occupies ``max(1, ceil(bits(v) / 7))`` bytes; the thresholds
    are compared vectorized instead of computing bit lengths.
    """
    values = np.asarray(values, dtype=np.uint64)
    sizes = np.ones(values.shape, dtype=np.int64)
    for k in range(1, _MAX_VARINT_BYTES):
        sizes += values >= np.uint64(1) << np.uint64(7 * k)
    return sizes


def encode_varints(values: np.ndarray) -> np.ndarray:
    """Encode non-negative integers as a concatenated varint byte stream."""
    values = np.asarray(values)
    if values.size and values.min() < 0:
        raise CommunicationError("varints encode non-negative values only")
    values = values.astype(np.uint64)
    sizes = varint_size(values)
    total = int(sizes.sum())
    out = np.zeros(total, dtype=np.uint8)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    for k in range(_MAX_VARINT_BYTES):
        mask = sizes > k
        if not mask.any():
            break
        chunk = (values[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)
        cont = (sizes[mask] > k + 1).astype(np.uint64) << np.uint64(7)
        out[offsets[mask] + k] = (chunk | cont).astype(np.uint8)
    return out


def decode_varints(
    buf: np.ndarray, count: int
) -> tuple[np.ndarray, int]:
    """Decode ``count`` varints from the head of a byte buffer.

    Returns ``(values, consumed)`` where ``values`` is an int64 array and
    ``consumed`` the number of bytes read.  Raises
    :class:`~repro.errors.CommunicationError` on truncated or oversized
    varints — codec payloads are produced by this module, so a malformed
    stream indicates corruption.
    """
    buf = np.asarray(buf, dtype=np.uint8)
    if count == 0:
        return np.zeros(0, dtype=np.int64), 0
    ends = np.flatnonzero((buf & 0x80) == 0)
    if ends.size < count:
        raise CommunicationError(
            f"varint stream truncated: {count} values expected, "
            f"{ends.size} terminators found"
        )
    ends = ends[:count]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > _MAX_VARINT_BYTES:
        raise CommunicationError("varint longer than 10 bytes")
    values = np.zeros(count, dtype=np.uint64)
    for k in range(int(lengths.max())):
        mask = lengths > k
        chunk = buf[starts[mask] + k].astype(np.uint64) & np.uint64(0x7F)
        values[mask] |= chunk << np.uint64(7 * k)
    return values.astype(np.int64), int(ends[-1]) + 1
