"""The identity codec: today's wire format, byte for byte.

``raw`` is the accounting oracle of the codec family — the bitmap words
travel unframed and untransformed, so a run under ``REPRO_CODEC=raw``
prices exactly like the pre-codec engine.  The class exists so the
registry is total (tests round-trip it like any other codec and ``auto``
can *choose* it when compression would not pay).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.codecs.base import EncodedFrontier, FrontierCodec, register_codec
from repro.util import bitops

__all__ = ["RawCodec"]


@register_codec
class RawCodec(FrontierCodec):
    """Identity wire format: payload is the word array itself."""

    name = "raw"

    @property
    def is_identity(self) -> bool:
        """Raw is the identity transform (engine skips encode/decode)."""
        return True

    def encode(
        self,
        words: np.ndarray,
        *,
        nbits: int | None = None,
        visited: np.ndarray | None = None,
    ) -> EncodedFrontier:
        """Wrap the words unchanged (no framing byte, no transform)."""
        if words.dtype != bitops.WORD_DTYPE:
            raise CommunicationError("raw codec expects uint64 words")
        nbits = words.size * 64 if nbits is None else nbits
        return EncodedFrontier(
            codec=self.name,
            payload=np.ascontiguousarray(words).view(np.uint8),
            nwords=int(words.size),
            nbits=int(nbits),
            header_bytes=0,
        )

    def decode(
        self,
        enc: EncodedFrontier,
        *,
        visited: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reinterpret the payload bytes as uint64 words."""
        if enc.payload.size != enc.nwords * 8:
            raise CommunicationError("raw payload has wrong size")
        return np.ascontiguousarray(enc.payload).view(bitops.WORD_DTYPE).copy()

    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Exactly the bitmap size, independent of fill."""
        return bitops.words_for_bits(nbits) * 8.0
