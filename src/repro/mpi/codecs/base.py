"""Frontier codec contract and registry.

A *frontier codec* is an interchangeable wire format for the bitmap
payloads of the bottom-up allgathers (``out_queue`` parts gathered into
``in_queue``, plus the summary).  Codecs mirror the kernel-backend
registry of :mod:`repro.core.kernels`: classes register under a short
name, :func:`resolve_codec` applies the precedence ``CommConfig.codec``
→ ``$REPRO_CODEC`` → :data:`DEFAULT_CODEC`.

The contract is **losslessness**: ``decode(encode(words)) == words`` for
any word array whose padding bits beyond ``nbits`` are zero (the engine's
word-aligned partition guarantees that).  Codecs never change what the
BFS computes — only the simulated bytes on the wire and the
encode/decode seconds charged by the
:class:`~repro.machine.costmodel.CodecCostModel` differ.  The
``visited`` argument carries the receiver-side common knowledge the
sieve codec exploits (the union of previously allgathered frontiers);
codecs that ignore it must accept and disregard it.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_CODEC",
    "ENV_VAR",
    "WIRE_HEADER_BYTES",
    "EncodedFrontier",
    "FrontierCodec",
    "available_codecs",
    "default_codec",
    "get_codec",
    "register_codec",
    "resolve_codec",
]

#: Codec used when neither the config nor the environment picks one.
DEFAULT_CODEC = "raw"

#: Environment variable consulted when the config does not pin a codec.
ENV_VAR = "REPRO_CODEC"

#: One codec-id byte prefixes every non-raw payload on the wire, so a
#: receiver can dispatch the decoder (and ``auto``'s per-level choice is
#: self-describing).  The raw path sends the bitmap words unframed —
#: today's behaviour, byte for byte.
WIRE_HEADER_BYTES = 1


@dataclass(frozen=True)
class EncodedFrontier:
    """One encoded bitmap payload plus the metadata a decoder needs.

    ``payload`` is the codec's byte stream (excluding the
    :data:`WIRE_HEADER_BYTES` framing); ``nwords``/``nbits`` describe the
    decoded shape, which the receiver knows from the partition and is
    therefore not charged as wire bytes.
    """

    codec: str
    payload: np.ndarray  # uint8
    nwords: int
    nbits: int
    header_bytes: int = WIRE_HEADER_BYTES

    @property
    def raw_nbytes(self) -> int:
        """Size of the un-encoded bitmap (the pre-codec payload)."""
        return self.nwords * 8

    @property
    def wire_nbytes(self) -> int:
        """Bytes this part occupies on the wire (payload + framing)."""
        return int(self.payload.size) + self.header_bytes


class FrontierCodec(abc.ABC):
    """One interchangeable wire format for frontier bitmap payloads.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`encode`/:meth:`decode` plus the :meth:`estimate_wire_bytes`
    closed form the ``auto`` mode scores candidates with.
    """

    name: ClassVar[str]

    @classmethod
    def from_config(cls, config=None) -> "FrontierCodec":
        """Instance configured from a :class:`BFSConfig` (no knobs yet)."""
        return cls()

    @property
    def is_identity(self) -> bool:
        """True for the raw codec (no transform, no framing byte)."""
        return False

    @abc.abstractmethod
    def encode(
        self,
        words: np.ndarray,
        *,
        nbits: int | None = None,
        visited: np.ndarray | None = None,
    ) -> EncodedFrontier:
        """Encode a uint64 bitmap part into a wire payload.

        ``nbits`` defaults to ``words.size * 64``; padding bits beyond it
        must be zero.  ``visited`` (same word length, may be ``None``) is
        the receiver-known mask sieve-style codecs may subtract.
        """

    @abc.abstractmethod
    def decode(
        self,
        enc: EncodedFrontier,
        *,
        visited: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reconstruct the exact ``nwords`` uint64 words of a payload.

        ``visited`` must be bit-identical to the mask the encoder saw —
        the engine guarantees this by deriving it from previously
        allgathered frontiers, which every rank observed.
        """

    @abc.abstractmethod
    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Closed-form wire-byte estimate from aggregate fill statistics.

        Used by the ``auto`` mode to score codecs without encoding; the
        estimate prices an *average* bit layout at the given fill ratio,
        not the exact payload.
        """


_REGISTRY: dict[str, type[FrontierCodec]] = {}
_SHARED: dict[str, FrontierCodec] = {}


def register_codec(cls: type[FrontierCodec]) -> type[FrontierCodec]:
    """Class decorator: register a codec under its ``name`` attribute."""
    if not getattr(cls, "name", None):
        raise ConfigError("frontier codec classes must set a non-empty name")
    _REGISTRY[cls.name] = cls
    _SHARED.pop(cls.name, None)
    return cls


def available_codecs() -> tuple[str, ...]:
    """Names of all registered frontier codecs, sorted."""
    return tuple(sorted(_REGISTRY))


def get_codec(name: str, config=None) -> FrontierCodec:
    """Codec instance by registry name.

    Instances are stateless and shared per name; an unknown name raises
    :class:`~repro.errors.ConfigError` listing the alternatives.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown frontier codec {name!r}; available: "
            f"{', '.join(available_codecs())}"
        )
    if config is not None:
        return cls.from_config(config)
    inst = _SHARED.get(name)
    if inst is None:
        inst = _SHARED[name] = cls()
    return inst


def _env_name() -> str:
    return os.environ.get(ENV_VAR) or DEFAULT_CODEC


def default_codec() -> FrontierCodec:
    """The process-default codec (``$REPRO_CODEC`` or the built-in)."""
    return get_codec(_env_name())


def resolve_codec(config=None) -> FrontierCodec:
    """Codec for one engine: ``config.comm.codec`` → env var → default.

    Mirrors :func:`repro.core.kernels.resolve_backend` so the CLI/env
    precedence rules are identical for both plug-in families.
    """
    comm = getattr(config, "comm", None)
    name = (getattr(comm, "codec", None)) or _env_name()
    return get_codec(name, config=config)
