"""Run-length codec over dense bitmap words.

Mid-BFS frontiers are dense: long stretches of all-zero words (untouched
vertex ranges) and, late in the traversal, all-one words.  This codec
run-length-encodes at *word* granularity — a token per maximal run of
equal-class words — and ships mixed words verbatim:

``varint(ntokens) · varint tokens · literal words``

where each token is ``(run_length << 2) | tag`` with tag ``0`` = zero
words, ``1`` = all-ones words, ``2`` = literal words (the run's words
follow, in order, in the trailing literal block).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.codecs.base import EncodedFrontier, FrontierCodec, register_codec
from repro.mpi.codecs.varint import decode_varints, encode_varints
from repro.util import bitops

__all__ = ["RleBitmapCodec", "estimate_rle_bytes"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_TAG_ZERO, _TAG_ONES, _TAG_LITERAL = 0, 1, 2


def estimate_rle_bytes(nbits: int, set_bits: int) -> float:
    """Closed-form wire-byte estimate at an average (Bernoulli) fill.

    Models each word as all-zero with probability ``(1-f)^64``, all-one
    with ``f^64`` and literal otherwise; run boundaries are approximated
    by the rarer class.  Exact for the extreme fills 0 and 1 (a single
    2-3 byte token) and pessimistic in between, which is what ``auto``
    needs — it must not pick RLE on a mid-fill bitmap.
    """
    nwords = bitops.words_for_bits(nbits)
    if nwords == 0:
        return 1.0
    fill = min(max(set_bits / max(nbits, 1), 0.0), 1.0)
    p_zero = (1.0 - fill) ** 64
    p_ones = fill**64
    lit_frac = max(1.0 - p_zero - p_ones, 0.0)
    runs = 2.0 * nwords * min(p_zero + p_ones, lit_frac) + 2.0
    return 1.0 + runs * 2.0 + lit_frac * nwords * 8.0


@register_codec
class RleBitmapCodec(FrontierCodec):
    """Word-granular run-length encoding (see module docstring)."""

    name = "rle-bitmap"

    def encode(
        self,
        words: np.ndarray,
        *,
        nbits: int | None = None,
        visited: np.ndarray | None = None,
    ) -> EncodedFrontier:
        """Tokenize maximal runs of zero/ones/literal words."""
        if words.dtype != bitops.WORD_DTYPE:
            raise CommunicationError("rle codec expects uint64 words")
        nbits = words.size * 64 if nbits is None else nbits
        payload = rle_encode_words(words)
        return EncodedFrontier(
            codec=self.name,
            payload=payload,
            nwords=int(words.size),
            nbits=int(nbits),
        )

    def decode(
        self,
        enc: EncodedFrontier,
        *,
        visited: np.ndarray | None = None,
    ) -> np.ndarray:
        """Expand the token stream back into exactly ``nwords`` words."""
        return rle_decode_words(enc.payload, enc.nwords)

    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Delegates to :func:`estimate_rle_bytes` (ignores ``visited``)."""
        return estimate_rle_bytes(nbits, set_bits)


def rle_encode_words(words: np.ndarray) -> np.ndarray:
    """Encode a uint64 word array as the RLE token stream (uint8)."""
    nwords = int(words.size)
    if nwords == 0:
        return encode_varints(np.array([0], dtype=np.int64))
    classes = np.full(nwords, _TAG_LITERAL, dtype=np.int64)
    classes[words == np.uint64(0)] = _TAG_ZERO
    classes[words == _ONES] = _TAG_ONES
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(classes)) + 1)
    ).astype(np.int64)
    lens = np.diff(np.concatenate((starts, [nwords])))
    tags = classes[starts]
    tokens = (lens << 2) | tags
    literal = words[np.repeat(tags == _TAG_LITERAL, lens)]
    return np.concatenate(
        (
            encode_varints(np.array([tokens.size], dtype=np.int64)),
            encode_varints(tokens),
            np.ascontiguousarray(literal).view(np.uint8),
        )
    )


def rle_decode_words(payload: np.ndarray, nwords: int) -> np.ndarray:
    """Decode an RLE token stream back into ``nwords`` uint64 words."""
    (ntokens,), used = decode_varints(payload, 1)
    tokens, used2 = decode_varints(payload[used:], int(ntokens))
    tags = tokens & 3
    lens = tokens >> 2
    if int(lens.sum()) != nwords:
        raise CommunicationError(
            f"rle payload decodes to {int(lens.sum())} words, "
            f"expected {nwords}"
        )
    out = np.zeros(nwords, dtype=bitops.WORD_DTYPE)
    classes = np.repeat(tags, lens)
    out[classes == _TAG_ONES] = _ONES
    lit_mask = classes == _TAG_LITERAL
    nlit = int(lit_mask.sum())
    lit_bytes = payload[used + used2 : used + used2 + nlit * 8]
    if lit_bytes.size != nlit * 8:
        raise CommunicationError("rle literal block truncated")
    out[lit_mask] = np.ascontiguousarray(lit_bytes).view(bitops.WORD_DTYPE)
    return out
