"""Sieve codec: subtract receiver-known visited bits before encoding.

Lv et al. (arXiv:1208.5542) observe that the bottom-up frontier never
contains a vertex that was in an *earlier* frontier, and every rank saw
those earlier frontiers — they were allgathered.  The union of previous
``in_queue`` bitmaps is therefore **common knowledge**, and the sender
can compact it out of the payload: only the bit positions the receiver
cannot predict are transmitted.  Late in the traversal most of the
vertex space is visited, so the compacted bitmap is a small fraction of
the raw one regardless of how compressible its contents are.

Wire format::

    varint(n_exceptional) · delta varints · tag byte · inner payload

The *exceptional list* carries set bits at visited positions, making the
codec lossless for arbitrary inputs (property tests exercise overlap);
in the engine the frontier/visited invariant keeps it empty.  The inner
payload is the compacted bitmap (frontier bits at unvisited positions,
in position order) encoded with whichever of RLE/sparse is smaller
(tag ``0``/``1``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.codecs.base import EncodedFrontier, FrontierCodec, register_codec
from repro.mpi.codecs.rle import (
    estimate_rle_bytes,
    rle_decode_words,
    rle_encode_words,
)
from repro.mpi.codecs.sparse import (
    decode_positions,
    encode_positions,
    estimate_sparse_bytes,
)
from repro.util import bitops

__all__ = ["SieveCodec"]

_INNER_RLE, _INNER_SPARSE = 0, 1


@register_codec
class SieveCodec(FrontierCodec):
    """Visited-bit sieve with RLE/sparse inner coding (module docstring)."""

    name = "sieve"

    def encode(
        self,
        words: np.ndarray,
        *,
        nbits: int | None = None,
        visited: np.ndarray | None = None,
    ) -> EncodedFrontier:
        """Compact the unvisited positions and encode the remainder."""
        if words.dtype != bitops.WORD_DTYPE:
            raise CommunicationError("sieve codec expects uint64 words")
        nbits = words.size * 64 if nbits is None else nbits
        frontier = bitops.bits_to_bool(words, nbits)
        if visited is None:
            mask = np.zeros(nbits, dtype=bool)
        else:
            if visited.size != words.size:
                raise CommunicationError(
                    "visited mask must match the bitmap word count"
                )
            mask = bitops.bits_to_bool(visited, nbits)
        exceptional = np.flatnonzero(frontier & mask).astype(np.int64)
        compact = frontier[~mask]
        compact_words = bitops.bool_to_bits(compact)
        inner_rle = rle_encode_words(compact_words)
        inner_sparse = encode_positions(
            np.flatnonzero(compact).astype(np.int64)
        )
        if inner_sparse.size < inner_rle.size:
            tag, inner = _INNER_SPARSE, inner_sparse
        else:
            tag, inner = _INNER_RLE, inner_rle
        payload = np.concatenate(
            (
                encode_positions(exceptional),
                np.array([tag], dtype=np.uint8),
                inner,
            )
        )
        return EncodedFrontier(
            codec=self.name,
            payload=payload,
            nwords=int(words.size),
            nbits=int(nbits),
        )

    def decode(
        self,
        enc: EncodedFrontier,
        *,
        visited: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scatter the compacted bits back over the unvisited positions."""
        nbits = enc.nbits
        if visited is None:
            mask = np.zeros(nbits, dtype=bool)
        else:
            if visited.size != enc.nwords:
                raise CommunicationError(
                    "visited mask must match the bitmap word count"
                )
            mask = bitops.bits_to_bool(visited, nbits)
        exceptional, used = decode_positions(enc.payload)
        tag = int(enc.payload[used])
        inner = enc.payload[used + 1 :]
        ncompact = int(nbits - mask.sum())
        if tag == _INNER_RLE:
            cwords = rle_decode_words(inner, bitops.words_for_bits(ncompact))
            compact = bitops.bits_to_bool(cwords, ncompact)
        elif tag == _INNER_SPARSE:
            idx, _ = decode_positions(inner)
            compact = np.zeros(ncompact, dtype=bool)
            if idx.size:
                if int(idx[-1]) >= ncompact:
                    raise CommunicationError(
                        "sieve payload position out of range"
                    )
                compact[idx] = True
        else:
            raise CommunicationError(f"unknown sieve inner tag {tag}")
        out = np.zeros(nbits, dtype=bool)
        out[~mask] = compact
        if exceptional.size:
            if int(exceptional[-1]) >= nbits:
                raise CommunicationError(
                    "sieve exceptional position out of range"
                )
            out[exceptional] = True
        words = bitops.bool_to_bits(out)
        if words.size < enc.nwords:
            words = np.concatenate(
                (
                    words,
                    np.zeros(
                        enc.nwords - words.size, dtype=bitops.WORD_DTYPE
                    ),
                )
            )
        return words

    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Inner estimate over the compacted space plus fixed framing."""
        unvisited = max(nbits - visited_bits, 1)
        inner_set = min(set_bits, unvisited)
        inner = min(
            estimate_rle_bytes(unvisited, inner_set),
            estimate_sparse_bytes(unvisited, inner_set),
        )
        return 3.0 + inner
