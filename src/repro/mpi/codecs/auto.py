"""Cost-model-aware per-level codec selection.

``auto`` is not a wire format: it is a chooser.  Once per allgather it
scores every concrete codec with

``encode_time(raw part) + estimated wire bytes x link ns/byte
+ decode_time(estimated wire bytes)``

using the closed-form :meth:`~repro.mpi.codecs.base.FrontierCodec.
estimate_wire_bytes` of each candidate, the machine's
:class:`~repro.machine.costmodel.CodecCostModel` throughputs, and the
marginal wire cost per payload byte of the *actual* allgather schedule
(measured by differencing :func:`~repro.mpi.collectives.allgather_time`
at the real and at zero payload).  ``raw`` is priced with zero
encode/decode cost, so ``auto`` never does worse than today's wire
format by its own model; ties break toward ``raw``.
"""

from __future__ import annotations

from repro.errors import CommunicationError
from repro.mpi.codecs.base import (
    EncodedFrontier,
    FrontierCodec,
    get_codec,
    register_codec,
)

__all__ = ["AutoCodec", "CANDIDATE_CODECS"]

#: Concrete codecs ``auto`` chooses among, in tie-break order (earlier
#: wins on equal score; ``raw`` first so "no benefit" means "no change").
CANDIDATE_CODECS = ("raw", "rle-bitmap", "sparse-index", "sieve")


@register_codec
class AutoCodec(FrontierCodec):
    """Per-level chooser over :data:`CANDIDATE_CODECS`.

    The engine calls :meth:`select` with the level's aggregate fill
    statistics and the priced link cost, then encodes with the returned
    concrete codec.  ``encode``/``decode`` are deliberately unusable —
    a payload is always stamped with the concrete codec that produced
    it, never with ``auto``.
    """

    name = "auto"

    def select(
        self,
        *,
        nbits: int,
        set_bits: int,
        visited_bits: int,
        ns_per_wire_byte: float,
        model,
    ) -> FrontierCodec:
        """Pick the cheapest codec for one allgather payload.

        ``nbits``/``set_bits``/``visited_bits`` are totals across all
        parts of the collective; ``ns_per_wire_byte`` is the marginal
        schedule cost of one payload byte; ``model`` is the
        :class:`~repro.machine.costmodel.CodecCostModel` to charge
        encode/decode against.
        """
        raw = get_codec("raw")
        raw_bytes = raw.estimate_wire_bytes(nbits, set_bits)
        best = raw
        best_score = raw_bytes * ns_per_wire_byte
        for name in CANDIDATE_CODECS[1:]:
            codec = get_codec(name)
            wire = codec.estimate_wire_bytes(nbits, set_bits, visited_bits)
            score = (
                model.encode_time_ns(raw_bytes)
                + wire * ns_per_wire_byte
                + model.decode_time_ns(wire)
            )
            if score < best_score:
                best, best_score = codec, score
        return best

    def encode(
        self,
        words,
        *,
        nbits: int | None = None,
        visited=None,
    ) -> EncodedFrontier:
        """Unusable: resolve to a concrete codec via :meth:`select`."""
        raise CommunicationError(
            "the auto codec cannot encode; call select() to obtain a "
            "concrete codec first"
        )

    def decode(self, enc: EncodedFrontier, *, visited=None):
        """Unusable: payloads are stamped with their concrete codec."""
        raise CommunicationError(
            "the auto codec cannot decode; payloads carry the concrete "
            "codec that produced them"
        )

    def estimate_wire_bytes(
        self, nbits: int, set_bits: int, visited_bits: int = 0
    ) -> float:
        """Best candidate estimate (what selection would achieve)."""
        return min(
            get_codec(name).estimate_wire_bytes(
                nbits, set_bits, visited_bits
            )
            for name in CANDIDATE_CODECS
        )
