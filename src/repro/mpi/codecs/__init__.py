"""Pluggable frontier codecs for the bottom-up allgather path.

The paper's Fig. 12 shows the two bottom-up allgathers dominating
runtime once NUMA binding is fixed; its follow-up line of work (Lv et
al., arXiv:1208.5542) cuts that volume with frontier compression and
visited-vertex sieving.  This package reproduces that layer as a
registry of interchangeable wire formats, mirroring the kernel-backend
registry of :mod:`repro.core.kernels`:

``raw``
    Today's behaviour — unframed bitmap words; the accounting oracle.
``rle-bitmap``
    Word-granular run-length encoding for near-empty/near-full bitmaps.
``sparse-index``
    Delta-varint list of set-bit positions for low-fill frontiers.
``sieve``
    Visited-bit subtraction (common knowledge from previous allgathers)
    with RLE/sparse inner coding.
``auto``
    Cost-model-aware per-level choice among the above.

Selection precedence: ``CommConfig.codec`` (explicit) → the
``REPRO_CODEC`` environment variable → :data:`DEFAULT_CODEC`.  Every
codec is lossless, so the BFS result and all priced event counts are
bit-identical across codecs — only simulated communication bytes and
seconds change.  See docs/COMMUNICATION.md.
"""

from __future__ import annotations

from repro.mpi.codecs.auto import CANDIDATE_CODECS, AutoCodec
from repro.mpi.codecs.base import (
    DEFAULT_CODEC,
    ENV_VAR,
    WIRE_HEADER_BYTES,
    EncodedFrontier,
    FrontierCodec,
    available_codecs,
    default_codec,
    get_codec,
    register_codec,
    resolve_codec,
)
from repro.mpi.codecs.raw import RawCodec
from repro.mpi.codecs.rle import RleBitmapCodec
from repro.mpi.codecs.sieve import SieveCodec
from repro.mpi.codecs.sparse import SparseIndexCodec
from repro.mpi.codecs.varint import decode_varints, encode_varints

__all__ = [
    "AutoCodec",
    "CANDIDATE_CODECS",
    "DEFAULT_CODEC",
    "ENV_VAR",
    "EncodedFrontier",
    "FrontierCodec",
    "RawCodec",
    "RleBitmapCodec",
    "SieveCodec",
    "SparseIndexCodec",
    "WIRE_HEADER_BYTES",
    "available_codecs",
    "decode_varints",
    "default_codec",
    "encode_varints",
    "get_codec",
    "register_codec",
    "resolve_codec",
]
