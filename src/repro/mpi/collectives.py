"""The allgather algorithm family (Figs. 5-7 of the paper).

Every algorithm is *functionally* an allgatherv: rank ``r`` contributes
``parts[r]`` and afterwards every rank can read the concatenation.  What
differs is the message schedule, and therefore the simulated time:

``RING`` / ``RECURSIVE_DOUBLING`` / ``DEFAULT``
    The classic algorithms Open MPI 1.5.5 selects by message size
    (Thakur & Gropp): recursive doubling for small payloads, ring for
    large ones.  With eight ranks per node most ring traffic is
    intra-node copies contending for the memory system.

``LEADER``
    Fig. 5a: gather to the node leader, allgather among leaders over
    InfiniBand, broadcast to the node's children.  The two intra-node
    steps move 1x and (np-1)/np x the *full* payload through one
    socket's memory controller — this is why Fig. 6 shows intra-node
    time dominating.

``SHARED_IN``
    Fig. 5b applied to ``in_queue`` only: the destination buffer is
    node-shared, so the broadcast step disappears; the gather step
    remains because each rank's contribution still lives in private
    memory.

``SHARED_ALL``
    Source slots are shared too (``out_queue`` lives in the shared
    space): leaders read the children's parts directly, only the
    inter-node step remains.

``PARALLEL_SHARED``
    Fig. 7: the ranks of a node each lead one subgroup (ranks with equal
    local index across nodes); each subgroup allgathers its slice of the
    data concurrently, so all eight flows drive the two IB ports at the
    Fig. 4 saturated rate.  Transmitted volume is unchanged (eq. 2).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.codecs import AutoCodec, FrontierCodec
from repro.mpi.sharedmem import NodeSharedBuffer
from repro.mpi.simcomm import CollectiveResult, SimComm
from repro.util import bitops

__all__ = [
    "AllgatherAlgorithm",
    "allgather",
    "allgather_channel_bytes",
    "allgather_time",
    "parallel_allgather_time",
    "alltoallv",
]

# Thakur-Gropp switchover: recursive doubling below, ring at or above.
_RING_THRESHOLD_BYTES = 512 * 1024


class AllgatherAlgorithm(enum.Enum):
    """The allgather algorithm menu (see module docstring)."""
    RING = "ring"
    RECURSIVE_DOUBLING = "recursive_doubling"
    DEFAULT = "default"
    LEADER = "leader"
    SHARED_IN = "shared_in"
    SHARED_ALL = "shared_all"
    PARALLEL_SHARED = "parallel_shared"
    # Kandalla et al. [21], the related-work comparator of Section III.B:
    # one leader per socket, but *every* leader still receives the full
    # payload, so the transmitted volume is ppn x that of Fig. 7.
    MULTI_LEADER = "multi_leader"
    # HierKNEM-style perfect overlap of the leader scheme's intra- and
    # inter-node steps (Ma et al. [25]).  The paper's Fig. 6 argument:
    # when the intra-node steps dominate, "overlapping will not help" —
    # only sharing removes them.
    LEADER_OVERLAPPED = "leader_overlapped"


def alltoallv(comm: SimComm, send: list[list[np.ndarray]]) -> CollectiveResult:
    """Re-exported convenience wrapper (see :meth:`SimComm.alltoallv`)."""
    return comm.alltoallv(send)


def _concatenate(parts: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint64)


def _deliver(
    comm: SimComm,
    full: np.ndarray,
    shared_buffers: list[NodeSharedBuffer] | None,
):
    """Write the gathered data to its destination.

    With shared buffers, each node's single copy receives the data; the
    engine hands every rank of the node the same view.  Without them the
    result is one logically-replicated read-only array (ranks never write
    to ``in_queue`` between allgathers, so a single backing array is
    functionally identical to per-rank private copies).
    """
    if shared_buffers is None:
        full.flags.writeable = False
        return full
    if len(shared_buffers) != comm.cluster.nodes:
        raise CommunicationError(
            f"need one shared buffer per node "
            f"({comm.cluster.nodes}), got {len(shared_buffers)}",
            collective="allgather",
        )
    for buf in shared_buffers:
        if buf.data.size != full.size:
            raise CommunicationError(
                f"shared buffer on node {buf.node} has {buf.data.size} words, "
                f"expected {full.size}"
            )
        buf.data[:] = full
    return shared_buffers


def _uniform_times(comm: SimComm, total: float, breakdown: dict) -> CollectiveResult:
    return CollectiveResult(
        data=None,
        rank_times=np.full(comm.num_ranks, total),
        breakdown=breakdown,
    )


def _ring_time(comm: SimComm, part_bytes: float) -> float:
    """Ring allgather over all ranks with node-major rank order."""
    np_ranks = comm.num_ranks
    if np_ranks == 1 or part_bytes == 0:
        return 0.0
    ppn = comm.mapping.ppn
    inter = (
        comm.slowest_node_inter_time(part_bytes, flows=1)
        if comm.cluster.nodes > 1
        else 0.0
    )
    intra = comm.shm_copy_time(part_bytes, max(1, ppn - 1)) if ppn > 1 else 0.0
    step = max(inter, intra)
    return (np_ranks - 1) * step


def _recursive_doubling_time(comm: SimComm, part_bytes: float) -> float:
    np_ranks = comm.num_ranks
    if np_ranks == 1 or part_bytes == 0:
        return 0.0
    if np_ranks & (np_ranks - 1):
        # Non-power-of-two rank counts fall back to ring (as MPICH does
        # with an extra fix-up phase we do not model).
        return _ring_time(comm, part_bytes)
    ppn = comm.mapping.ppn
    total = 0.0
    for k in range(int(np.log2(np_ranks))):
        nbytes = part_bytes * (1 << k)
        if (1 << k) < ppn:
            total += comm.shm_copy_time(nbytes, ppn)
        else:
            total += comm.slowest_node_inter_time(nbytes, flows=min(ppn, 8))
    return total


def _leader_steps(
    comm: SimComm,
    part_bytes: float,
    total_bytes: float,
    *,
    gather: bool,
    bcast: bool,
    parallel: bool,
    subgroups: int | None = None,
) -> dict[str, float]:
    """Per-step times of the leader-based family."""
    ppn = comm.mapping.ppn
    nodes = comm.cluster.nodes
    steps = {"intra_gather": 0.0, "inter": 0.0, "intra_bcast": 0.0}

    if gather and ppn > 1:
        steps["intra_gather"] = comm.shm_copy_time(part_bytes, ppn - 1)

    if nodes > 1:
        if parallel:
            # Fig. 7: concurrent subgroup rings (default: one per rank of
            # a node); each step moves the node block split across the
            # flows, all sharing the node's NICs at the saturated Fig. 4
            # rate.
            flows = ppn if subgroups is None else subgroups
            if flows < 1 or flows > ppn:
                raise CommunicationError(
                    f"subgroups must be in [1, ppn={ppn}], got {flows}"
                )
            block = part_bytes * ppn / flows
            step = comm.slowest_node_inter_time(block, flows=flows)
            steps["inter"] = (nodes - 1) * step
        else:
            node_block = part_bytes * ppn
            step = comm.slowest_node_inter_time(node_block, flows=1)
            steps["inter"] = (nodes - 1) * step

    if bcast and ppn > 1:
        steps["intra_bcast"] = comm.shm_copy_time(total_bytes, ppn - 1)
    return steps


def parallel_allgather_time(
    comm: SimComm,
    part_bytes: float,
    subgroups: int,
) -> float:
    """Inter-node time of the Fig. 7 scheme with a configurable subgroup
    count (the ablation knob): ``subgroups`` concurrent flows per node,
    each carrying ``1/subgroups`` of the node block per ring step.  With
    ``subgroups == 1`` this degenerates to the single-leader step; with
    ``subgroups == ppn`` it is the paper's parallel allgather."""
    if subgroups < 1 or subgroups > comm.mapping.ppn:
        raise CommunicationError(
            f"subgroups must be in [1, ppn={comm.mapping.ppn}]"
        )
    nodes = comm.cluster.nodes
    if nodes <= 1 or part_bytes <= 0:
        return 0.0
    block = part_bytes * comm.mapping.ppn / subgroups
    step = comm.slowest_node_inter_time(block, flows=subgroups)
    return (nodes - 1) * step


def allgather_time(
    comm: SimComm,
    algorithm: AllgatherAlgorithm,
    part_bytes: float,
    total_bytes: float | None = None,
    *,
    subgroups: int | None = None,
) -> tuple[float, dict[str, float]]:
    """Simulated time of an allgather without moving any data.

    This is the closed-form used both by :func:`allgather` during a
    functional run and by the paper-scale extrapolation in
    :mod:`repro.model`, which replays the same message schedule with the
    structure sizes of a larger graph.  When a frontier codec shrank the
    payload, callers pass the *wire* part/total bytes here and charge the
    encode/decode terms separately (see
    :meth:`SimComm.codec_model <repro.machine.costmodel.CodecCostModel>`).
    ``subgroups`` tunes the parallel-shared ring count (None = ppn).
    """
    if part_bytes < 0:
        raise CommunicationError("negative part size")
    if total_bytes is None:
        total_bytes = part_bytes * comm.num_ranks

    if algorithm is AllgatherAlgorithm.DEFAULT:
        algorithm = (
            AllgatherAlgorithm.RING
            if total_bytes >= _RING_THRESHOLD_BYTES
            else AllgatherAlgorithm.RECURSIVE_DOUBLING
        )

    if algorithm is AllgatherAlgorithm.RING:
        t = _ring_time(comm, part_bytes)
        return t, {"ring": t}
    if algorithm is AllgatherAlgorithm.RECURSIVE_DOUBLING:
        t = _recursive_doubling_time(comm, part_bytes)
        return t, {"recursive_doubling": t}
    if algorithm is AllgatherAlgorithm.LEADER:
        steps = _leader_steps(
            comm, part_bytes, total_bytes, gather=True, bcast=True, parallel=False
        )
    elif algorithm is AllgatherAlgorithm.SHARED_IN:
        steps = _leader_steps(
            comm, part_bytes, total_bytes, gather=True, bcast=False, parallel=False
        )
    elif algorithm is AllgatherAlgorithm.SHARED_ALL:
        steps = _leader_steps(
            comm, part_bytes, total_bytes, gather=False, bcast=False, parallel=False
        )
    elif algorithm is AllgatherAlgorithm.PARALLEL_SHARED:
        steps = _leader_steps(
            comm, part_bytes, total_bytes, gather=False, bcast=False, parallel=True
        )
    elif algorithm is AllgatherAlgorithm.LEADER_OVERLAPPED:
        plain = _leader_steps(
            comm, part_bytes, total_bytes, gather=True, bcast=True, parallel=False
        )
        intra = plain["intra_gather"] + plain["intra_bcast"]
        overlapped = max(intra, plain["inter"])
        steps = {
            "intra_gather": 0.0,
            "inter": 0.0,
            "intra_bcast": 0.0,
            "overlapped": overlapped,
        }
    elif algorithm is AllgatherAlgorithm.MULTI_LEADER:
        # Every per-socket leader receives the full payload: per ring
        # step all ppn flows of a node carry a full node block each.
        steps = {"intra_gather": 0.0, "inter": 0.0, "intra_bcast": 0.0}
        nodes = comm.cluster.nodes
        ppn = comm.mapping.ppn
        if nodes > 1 and part_bytes > 0:
            node_block = part_bytes * ppn
            steps["inter"] = (nodes - 1) * comm.slowest_node_inter_time(
                node_block, flows=min(ppn, 8)
            )
    else:  # pragma: no cover - exhaustive enum
        raise CommunicationError(f"unknown algorithm {algorithm!r}")
    return sum(steps.values()), steps


def allgather_channel_bytes(
    comm: SimComm,
    algorithm: AllgatherAlgorithm,
    part_bytes: float,
    total_bytes: float | None = None,
    *,
    subgroups: int | None = None,
) -> dict[str, float]:
    """Bytes each channel class carries during one allgather.

    Returns ``{"intra": ..., "inter": ...}`` — the aggregate payload that
    crosses shared-memory copies resp. InfiniBand links under the
    algorithm's message schedule.  Unlike :func:`allgather_time` this sums
    *volume*, not time, so it exposes the schedule redundancy the paper's
    eq. 2 reasons about (the leader broadcast re-moves the full payload on
    every node; multi-leader multiplies the inter-node volume by ppn).
    Callers pass wire (post-codec) sizes to see what compression saved.
    """
    if part_bytes < 0:
        raise CommunicationError("negative part size")
    np_ranks = comm.num_ranks
    ppn = comm.mapping.ppn
    nodes = comm.cluster.nodes
    if total_bytes is None:
        total_bytes = part_bytes * np_ranks
    out = {"intra": 0.0, "inter": 0.0}
    if np_ranks == 1 or total_bytes == 0:
        return out

    if algorithm is AllgatherAlgorithm.DEFAULT:
        algorithm = (
            AllgatherAlgorithm.RING
            if total_bytes >= _RING_THRESHOLD_BYTES
            else AllgatherAlgorithm.RECURSIVE_DOUBLING
        )
    if algorithm is AllgatherAlgorithm.RECURSIVE_DOUBLING and (
        np_ranks & (np_ranks - 1)
    ):
        algorithm = AllgatherAlgorithm.RING  # mirror the time model's fallback

    if algorithm is AllgatherAlgorithm.RING:
        # Per step every rank forwards one part; in node-major order each
        # node boundary is crossed exactly once per step.
        inter_sends = nodes if nodes > 1 else 0
        out["inter"] = (np_ranks - 1) * inter_sends * part_bytes
        out["intra"] = (np_ranks - 1) * (np_ranks - inter_sends) * part_bytes
        return out
    if algorithm is AllgatherAlgorithm.RECURSIVE_DOUBLING:
        # Doubling rounds below ppn stay on-node; each round every rank
        # exchanges its accumulated 2^k parts.
        out["intra"] = np_ranks * (ppn - 1) * part_bytes
        out["inter"] = np_ranks * (np_ranks - ppn) * part_bytes
        return out

    gather = algorithm in (
        AllgatherAlgorithm.LEADER,
        AllgatherAlgorithm.SHARED_IN,
        AllgatherAlgorithm.LEADER_OVERLAPPED,
    )
    bcast = algorithm in (
        AllgatherAlgorithm.LEADER,
        AllgatherAlgorithm.LEADER_OVERLAPPED,
    )
    if gather and ppn > 1:
        out["intra"] += nodes * (ppn - 1) * part_bytes
    if nodes > 1:
        # Leader-family inter step is a ring over node blocks: every node
        # forwards each of the other nodes' blocks once (eq. 2 volume);
        # multi-leader repeats that on all ppn per-socket leaders.
        inter = (nodes - 1) * nodes * part_bytes * ppn
        if algorithm is AllgatherAlgorithm.MULTI_LEADER:
            inter *= ppn
        out["inter"] = inter
    if bcast and ppn > 1:
        out["intra"] += nodes * (ppn - 1) * total_bytes
    return out


def allgather(
    comm: SimComm,
    parts: list[np.ndarray],
    algorithm: AllgatherAlgorithm = AllgatherAlgorithm.DEFAULT,
    shared_buffers: list[NodeSharedBuffer] | None = None,
    *,
    codec: FrontierCodec | None = None,
    visited_parts: list[np.ndarray] | None = None,
    subgroups: int | None = None,
) -> CollectiveResult:
    """Allgatherv of per-rank word arrays under a given algorithm.

    Returns a :class:`CollectiveResult` whose ``data`` is either the full
    concatenated (read-only) array or, when ``shared_buffers`` are passed,
    the list of filled per-node buffers.  ``breakdown`` holds per-step
    times for the leader-based family (Fig. 6).

    With a non-identity ``codec``, each rank's part is encoded before the
    (priced) transmission and decoded on arrival — the delivered data is
    the round-tripped decode, so a lossy codec would corrupt the run
    rather than silently fake its traffic.  ``visited_parts`` gives the
    sieve codec its common-knowledge mask (one word array per rank,
    aligned with ``parts``).  An :class:`~repro.mpi.codecs.AutoCodec`
    resolves to a concrete codec per call from observed frontier density
    and the machine's wire/CPU cost slopes; the identity choice is free.
    """
    if len(parts) != comm.num_ranks:
        raise CommunicationError(
            f"allgather expects {comm.num_ranks} parts, got {len(parts)}",
            collective="allgather",
        )
    if visited_parts is not None and len(visited_parts) != len(parts):
        raise CommunicationError(
            f"visited_parts must align with parts "
            f"({len(parts)}), got {len(visited_parts)}",
            collective="allgather",
        )
    shared_family = algorithm in (
        AllgatherAlgorithm.SHARED_IN,
        AllgatherAlgorithm.SHARED_ALL,
        AllgatherAlgorithm.PARALLEL_SHARED,
        AllgatherAlgorithm.MULTI_LEADER,
    )
    if shared_family and shared_buffers is None:
        raise CommunicationError(
            f"{algorithm.value} allgather requires node-shared destination "
            f"buffers",
            collective="allgather",
        )

    part_bytes = float(max((p.nbytes for p in parts), default=0))
    total_bytes = float(sum(p.nbytes for p in parts))

    chosen = codec
    if isinstance(codec, AutoCodec) and total_bytes > 0:
        t_full, _ = allgather_time(
            comm, algorithm, part_bytes, total_bytes, subgroups=subgroups
        )
        t_zero, _ = allgather_time(comm, algorithm, 0.0, 0.0, subgroups=subgroups)
        set_total = sum(int(bitops.popcount_words(p).sum()) for p in parts)
        vis_total = (
            sum(int(bitops.popcount_words(v).sum()) for v in visited_parts)
            if visited_parts is not None
            else 0
        )
        chosen = codec.select(
            nbits=int(total_bytes) * 8,
            set_bits=set_total,
            visited_bits=vis_total,
            ns_per_wire_byte=max(0.0, (t_full - t_zero) / total_bytes),
            model=comm.codec_model,
        )

    codec_name: str | None = None
    wire_part = part_bytes
    wire_total = total_bytes
    breakdown_extra: dict[str, float] = {}
    if chosen is not None and not chosen.is_identity and total_bytes > 0:
        codec_name = chosen.name
        encoded = []
        decoded = []
        for r, p in enumerate(parts):
            vp = visited_parts[r] if visited_parts is not None else None
            enc = chosen.encode(p, visited=vp)
            encoded.append(enc)
            decoded.append(chosen.decode(enc, visited=vp))
        wire_part = float(max(e.wire_nbytes for e in encoded))
        wire_total = float(sum(e.wire_nbytes for e in encoded))
        # Encode happens on every rank concurrently over its own part
        # (bounded by the largest); decode scans the full gathered
        # payload once per rank.
        breakdown_extra["codec_encode"] = comm.codec_model.encode_time_ns(part_bytes)
        breakdown_extra["codec_decode"] = comm.codec_model.decode_time_ns(wire_total)
        full = _concatenate(decoded)
    else:
        if chosen is not None:
            codec_name = chosen.name  # identity: recorded, never priced
        full = _concatenate(parts)

    t, breakdown = allgather_time(
        comm, algorithm, wire_part, wire_total, subgroups=subgroups
    )
    breakdown.update(breakdown_extra)
    t += sum(breakdown_extra.values())
    if comm.injector is not None:
        # Fault hooks, in wire order: a transient failure wastes the
        # whole priced attempt (raises; the engine retries and charges
        # the retransmission), and scheduled payload corruption flips
        # bits in the delivered words — caught downstream by the
        # engine's frontier checksums, never silently accepted.
        comm.injector.collective_attempt("allgather", wasted_ns=t)
        full = comm.injector.maybe_corrupt("allgather", full)
    data = _deliver(comm, full, shared_buffers if shared_family else None)
    result = _uniform_times(comm, t, breakdown)
    result.data = data
    result.raw_bytes = total_bytes
    result.wire_bytes = wire_total
    result.wire_part_bytes = wire_part
    result.codec = codec_name
    if comm.tracer.enabled:
        channels = allgather_channel_bytes(
            comm, algorithm, wire_part, wire_total, subgroups=subgroups
        )
        comm.tracer.comm_event(
            "allgather",
            nbytes=total_bytes,
            rank_times=result.rank_times,
            breakdown=breakdown,
            algorithm=algorithm.value,
            part_bytes=part_bytes,
            shared=shared_family,
            raw_bytes=total_bytes,
            wire_bytes=wire_total,
            codec=codec_name,
            intra_bytes=channels["intra"],
            inter_bytes=channels["inter"],
        )
    return result
