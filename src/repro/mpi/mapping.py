"""Process-to-hardware mapping and binding policies.

This encodes the execution policies the paper sweeps in Fig. 10:

* ``ppn=1, noflag``        — one rank per node, 64 OpenMP threads, memory
  first-touched on one socket (worst-case placement);
* ``ppn=1, interleave``    — one rank per node, ``numactl --interleave=all``;
* ``ppn=8, noflag``        — eight ranks per node, threads unbound so they
  drift across sockets while their memory stays where it was touched;
* ``ppn=8, bind-to-socket``— eight ranks per node, each bound to one socket
  (``mpirun --bind-to-socket --bysocket``): the paper's recommended NUMA
  mapping.

Ranks are laid out node-major (consecutive ranks share a node), matching
Open MPI's default ``--bysocket`` slot allocation on this platform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.memory import Placement
from repro.machine.spec import ClusterSpec

__all__ = ["BindingPolicy", "ProcessMapping", "RankLocation"]


class BindingPolicy(enum.Enum):
    """The mpirun/numactl policies of Fig. 10."""
    NOFLAG = "noflag"
    INTERLEAVE = "interleave"
    BIND_TO_SOCKET = "bind-to-socket"


@dataclass(frozen=True)
class RankLocation:
    """Where one rank runs and how its threads/memory behave."""

    rank: int
    node: int
    socket: int | None  # None when the rank is not bound to a socket
    threads: int
    threads_sockets: int
    private_placement: Placement


class ProcessMapping:
    """Maps ``nodes * ppn`` MPI ranks onto the cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        ppn: int,
        policy: BindingPolicy = BindingPolicy.BIND_TO_SOCKET,
    ) -> None:
        node = cluster.node
        if ppn < 1 or ppn > node.sockets:
            raise ConfigError(
                f"ppn must be in [1, {node.sockets}], got {ppn}"
            )
        if node.sockets % ppn != 0:
            raise ConfigError(
                f"ppn={ppn} must divide the socket count {node.sockets}"
            )
        if policy is BindingPolicy.BIND_TO_SOCKET and ppn == 1 and node.sockets > 1:
            raise ConfigError(
                "bind-to-socket with ppn=1 would idle all but one socket "
                "(the paper notes it 'only works when more than 8 processes "
                "are spawned'); use interleave or noflag for ppn=1"
            )
        self.cluster = cluster
        self.ppn = ppn
        self.policy = policy
        self.num_ranks = cluster.nodes * ppn
        self.threads_per_rank = node.cores // ppn
        self.sockets_per_rank = node.sockets // ppn

    # ---- topology queries -------------------------------------------------

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_index(self, rank: int) -> int:
        """Index of the rank among the ranks of its node (0..ppn-1)."""
        self._check_rank(rank)
        return rank % self.ppn

    def socket_of(self, rank: int) -> int | None:
        """Socket the rank is bound to, or None if unbound."""
        self._check_rank(rank)
        if self.policy is BindingPolicy.BIND_TO_SOCKET:
            return (rank % self.ppn) * self.sockets_per_rank
        return None

    def ranks_on_node(self, node: int) -> range:
        """Ranks hosted by ``node``."""
        if not 0 <= node < self.cluster.nodes:
            raise ConfigError(f"node {node} out of range")
        return range(node * self.ppn, (node + 1) * self.ppn)

    def leader_of_node(self, node: int) -> int:
        """The node's leader rank (lowest rank on the node)."""
        return self.ranks_on_node(node)[0]

    def is_leader(self, rank: int) -> bool:
        """True for the node's lowest rank."""
        return self.local_index(rank) == 0

    def subgroup_of(self, rank: int) -> list[int]:
        """Fig. 7 subgroup: the ranks with the same local index across all
        nodes (these perform one slice of the parallel allgather)."""
        k = self.local_index(rank)
        return [n * self.ppn + k for n in range(self.cluster.nodes)]

    # ---- placement resolution ---------------------------------------------

    def location(self, rank: int) -> RankLocation:
        """Full placement description of one rank under the policy."""
        self._check_rank(rank)
        if self.policy is BindingPolicy.BIND_TO_SOCKET:
            placement = Placement.LOCAL_SOCKET
            threads_sockets = self.sockets_per_rank
        elif self.policy is BindingPolicy.INTERLEAVE:
            placement = Placement.INTERLEAVED
            threads_sockets = self.cluster.node.sockets
        else:  # NOFLAG: first-touch on one socket, threads unbound
            placement = Placement.SINGLE_SOCKET
            threads_sockets = self.cluster.node.sockets
        return RankLocation(
            rank=rank,
            node=self.node_of(rank),
            socket=self.socket_of(rank),
            threads=self.threads_per_rank,
            threads_sockets=threads_sockets,
            private_placement=placement,
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ConfigError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessMapping(nodes={self.cluster.nodes}, ppn={self.ppn}, "
            f"policy={self.policy.value})"
        )
