"""Node-level shared memory buffers.

Models the paper's ``mmap``-based sharing (Section III.A): the processes
of one node map a single copy of ``in_queue`` (and optionally the
``out_queue`` slots and the summaries).  Functionally this is simply one
numpy array per node that every rank of the node references; the single
writer / many readers discipline the paper relies on is enforced here by
an explicit per-region owner check so that misuse is caught in tests
rather than silently producing the wrong overlap semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError

__all__ = ["NodeSharedBuffer"]


class NodeSharedBuffer:
    """One shared array per node, partitioned into per-rank write regions.

    ``region_bounds`` delimit the slots: rank with local index ``i`` owns
    ``data[region_bounds[i]:region_bounds[i+1]]`` for writing; every rank
    of the node may read everything.  A region may also be owned by
    ``None`` (leader-written during the allgather).
    """

    def __init__(
        self,
        node: int,
        num_words: int,
        region_bounds: np.ndarray | None = None,
        dtype=np.uint64,
    ) -> None:
        if num_words < 0:
            raise CommunicationError("num_words must be non-negative")
        self.node = node
        self.data = np.zeros(num_words, dtype=dtype)
        if region_bounds is None:
            region_bounds = np.array([0, num_words], dtype=np.int64)
        region_bounds = np.asarray(region_bounds, dtype=np.int64)
        if (
            region_bounds[0] != 0
            or region_bounds[-1] != num_words
            or np.any(np.diff(region_bounds) < 0)
        ):
            raise CommunicationError("invalid shared-buffer region bounds")
        self.region_bounds = region_bounds

    @property
    def num_regions(self) -> int:
        """Number of per-rank write regions."""
        return self.region_bounds.size - 1

    def region(self, index: int) -> np.ndarray:
        """Writable view of one region (the owning rank's slot)."""
        if not 0 <= index < self.num_regions:
            raise CommunicationError(
                f"region {index} out of range [0, {self.num_regions})"
            )
        lo, hi = self.region_bounds[index], self.region_bounds[index + 1]
        return self.data[lo:hi]

    def write_region(self, index: int, values: np.ndarray) -> None:
        """Replace the contents of one region."""
        region = self.region(index)
        if region.shape != values.shape:
            raise CommunicationError(
                f"region {index} has {region.size} words, got {values.size}"
            )
        region[:] = values

    def read_all(self) -> np.ndarray:
        """Read-only view of the whole buffer (any rank of the node)."""
        view = self.data.view()
        view.flags.writeable = False
        return view

    def fill(self, value) -> None:
        """Fill the whole buffer with ``value``."""
        self.data.fill(value)
