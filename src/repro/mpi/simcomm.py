"""The simulated communicator.

``SimComm`` owns the channel timing primitives (shared-memory copies
inside a node, InfiniBand transfers between nodes) and the functional
implementations of the small collectives the BFS engine needs besides
allgather (``alltoallv`` for the top-down queue exchange, ``allreduce``
for frontier counts and termination detection, ``barrier`` for stall
accounting).  The allgather family lives in
:mod:`repro.mpi.collectives`.

Ranks execute bulk-synchronously in one Python process, so a collective
receives every rank's contribution at once, moves the real bytes, and
returns both the received data and the simulated per-rank durations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CommunicationError
from repro.machine.costmodel import CodecCostModel
from repro.machine.memory import MemoryModel
from repro.machine.network import NetworkModel
from repro.machine.spec import ClusterSpec
from repro.mpi.mapping import ProcessMapping
from repro.obs.tracer import NULL_TRACER

__all__ = ["SimComm", "CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective.

    ``raw_bytes`` is the pre-codec logical payload (the sum of every
    rank's contribution); ``wire_bytes`` is that payload as transmitted —
    after the frontier codec shrank it and, for alltoallv, minus free
    self-messages.  The message schedule may carry *multiples* of
    ``wire_bytes`` (e.g. the leader broadcast re-moves the gathered data
    on every node); the per-channel split of that carried volume lives in
    the comm event's ``intra_bytes``/``inter_bytes`` attributes.
    """

    data: object
    rank_times: np.ndarray  # ns per rank
    breakdown: dict[str, float] = field(default_factory=dict)
    raw_bytes: float = 0.0
    wire_bytes: float = 0.0
    wire_part_bytes: float = 0.0
    codec: str | None = None

    @property
    def max_time(self) -> float:
        """Slowest rank's time (the collective's completion)."""
        return float(self.rank_times.max()) if self.rank_times.size else 0.0


class SimComm:
    """Communicator over the ranks of a :class:`ProcessMapping`."""

    def __init__(
        self,
        cluster: ClusterSpec,
        mapping: ProcessMapping,
        tracer=None,
    ) -> None:
        if mapping.cluster is not cluster and mapping.cluster != cluster:
            raise CommunicationError("mapping belongs to a different cluster")
        self.cluster = cluster
        self.mapping = mapping
        self.network = NetworkModel(cluster)
        self.memory = MemoryModel(cluster.node)
        # Encode/decode throughputs charged when a frontier codec is
        # active (repro.mpi.codecs); the allgather path and the pricer
        # both read this so functional events and assembled timings agree.
        self.codec_model = CodecCostModel()
        self.num_ranks = mapping.num_ranks
        # Telemetry sink: every collective emits one CommEvent with its
        # per-rank simulated durations; the default null tracer makes
        # that a no-op guarded by a single attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Fault injector (repro.faults): consulted by every collective
        # before delivering data and by the channel models for link
        # degradation.  None (the default) keeps the hot path unchanged —
        # each hook is a single attribute check.
        self.injector = None

    # ---- channel primitives ------------------------------------------------

    def same_node(self, r1: int, r2: int) -> bool:
        """True when two ranks share a node."""
        return self.mapping.node_of(r1) == self.mapping.node_of(r2)

    def shm_copy_time(self, nbytes: float, concurrent_flows: int = 1) -> float:
        """Time (ns) for one rank to copy ``nbytes`` within its node while
        ``concurrent_flows`` copies contend for the memory system."""
        if nbytes < 0:
            raise CommunicationError("negative byte count")
        if nbytes == 0:
            return 0.0
        bw = self.memory.copy_bandwidth(concurrent_flows)
        return self.cluster.node.shm_latency_ns + nbytes / bw * 1e9

    def inter_node_time(
        self, nbytes: float, flows: int = 1, node_index: int | None = None
    ) -> float:
        """Time (ns) to move ``nbytes`` out of ``node_index`` while
        ``flows`` streams share its NICs."""
        if nbytes < 0:
            raise CommunicationError("negative byte count")
        if nbytes == 0:
            return 0.0
        return self.network.transfer_time(nbytes, flows=flows, node_index=node_index)

    def _rank_topology(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memoized per-rank topology arrays for the pricing hot path:
        owning node per rank, the rank×rank same-node mask, and each
        rank's *static* network derating (the injector's dynamic link
        derating is applied by the caller — it can change run to run)."""
        cached = getattr(self, "_rank_topo", None)
        if cached is None:
            nodes = np.array(
                [self.mapping.node_of(r) for r in range(self.num_ranks)],
                dtype=np.int64,
            )
            same = nodes[:, None] == nodes[None, :]
            base = np.array(
                [self.cluster.network_derating(int(n)) for n in nodes],
                dtype=np.float64,
            )
            cached = (nodes, same, base)
            self._rank_topo = cached
        return cached

    def node_derating(self, node_index: int) -> float:
        """Combined network derating of one node: the cluster's own weak
        link times any injected degradation."""
        factor = self.cluster.network_derating(node_index)
        if self.injector is not None:
            factor *= self.injector.link_derating(node_index)
        return factor

    def slowest_node_inter_time(self, nbytes: float, flows: int = 1) -> float:
        """Inter-node step time bounded by the slowest (possibly derated)
        node — a bulk step completes when its worst channel does."""
        if nbytes <= 0:
            return 0.0
        worst = min(
            (self.node_derating(n) for n in range(self.cluster.nodes)),
            default=1.0,
        )
        bw = self.network.flow_bandwidth(flows) * worst
        return self.cluster.node.ib.message_latency_ns + nbytes / bw * 1e9

    # ---- small collectives ---------------------------------------------------

    def barrier(self, clocks: np.ndarray) -> np.ndarray:
        """Stall times that align every rank to the latest clock."""
        clocks = np.asarray(clocks, dtype=np.float64)
        if clocks.shape != (self.num_ranks,):
            raise CommunicationError(
                f"barrier expects {self.num_ranks} clocks, got {clocks.shape}",
                collective="barrier",
            )
        stalls = clocks.max() - clocks
        if self.tracer.enabled:
            self.tracer.comm_event(
                "barrier",
                rank_times=stalls,
                breakdown={"stall": float(stalls.max(initial=0.0))},
            )
        return stalls

    def allreduce_time(self) -> float:
        """Latency of a small-payload allreduce: log2(np) rounds, each at
        the latency of the slowest channel class in use."""
        rounds = max(1, math.ceil(math.log2(max(2, self.num_ranks))))
        if self.cluster.nodes > 1:
            per_round = self.cluster.node.ib.message_latency_ns
        else:
            per_round = self.cluster.node.shm_latency_ns
        return rounds * per_round

    def allreduce_sum(self, values: np.ndarray) -> CollectiveResult:
        """Sum a per-rank scalar (or vector) across all ranks."""
        values = np.asarray(values)
        if values.shape[0] != self.num_ranks:
            raise CommunicationError(
                f"allreduce expects one value per rank ({self.num_ranks})",
                collective="allreduce_sum",
            )
        if self.injector is not None:
            self.injector.collective_attempt(
                "allreduce", wasted_ns=self.allreduce_time()
            )
        total = values.sum(axis=0)
        t = self.allreduce_time()
        result = CollectiveResult(
            data=total,
            rank_times=np.full(self.num_ranks, t),
            breakdown={"allreduce": t},
        )
        if self.tracer.enabled:
            self.tracer.comm_event(
                "allreduce_sum",
                nbytes=float(values.nbytes),
                rank_times=result.rank_times,
                breakdown=result.breakdown,
            )
        return result

    def allreduce_max(self, values: np.ndarray) -> CollectiveResult:
        """Elementwise maximum across all ranks."""
        values = np.asarray(values)
        if values.shape[0] != self.num_ranks:
            raise CommunicationError(
                f"allreduce expects one value per rank ({self.num_ranks})",
                collective="allreduce_max",
            )
        if self.injector is not None:
            self.injector.collective_attempt(
                "allreduce", wasted_ns=self.allreduce_time()
            )
        total = values.max(axis=0)
        t = self.allreduce_time()
        result = CollectiveResult(
            data=total,
            rank_times=np.full(self.num_ranks, t),
            breakdown={"allreduce": t},
        )
        if self.tracer.enabled:
            self.tracer.comm_event(
                "allreduce_max",
                nbytes=float(values.nbytes),
                rank_times=result.rank_times,
                breakdown=result.breakdown,
            )
        return result

    # ---- alltoallv ------------------------------------------------------------

    def alltoallv_time(self, send_bytes: np.ndarray) -> np.ndarray:
        """Per-rank time of an alltoallv given its byte matrix.

        ``send_bytes[i, j]`` is the payload rank ``i`` sends to rank ``j``;
        self-messages are free (local pointer hand-off).  A rank's time is
        the maximum of its send side and its receive side.
        """
        np_ranks = self.num_ranks
        send_bytes = np.asarray(send_bytes, dtype=np.float64)
        if send_bytes.shape != (np_ranks, np_ranks):
            raise CommunicationError(
                f"alltoallv expects a {np_ranks}x{np_ranks} byte matrix",
                collective="alltoallv",
            )
        ppn = self.mapping.ppn
        ib_lat = self.cluster.node.ib.message_latency_ns
        shm_lat = self.cluster.node.shm_latency_ns
        inter_bw = self.network.flow_bandwidth(max(1, ppn))
        intra_bw = self.memory.copy_bandwidth(max(1, ppn))

        nodes, same_node, derate = self._rank_topology()
        nonzero = send_bytes > 0
        np.fill_diagonal(nonzero, False)
        if self.injector is not None:
            derate = derate * np.array(
                [self.injector.link_derating(int(n)) for n in nodes]
            )

        intra_mask = nonzero & same_node
        inter_mask = nonzero & ~same_node
        send_t = (
            intra_mask.sum(axis=1) * shm_lat
            + (send_bytes * intra_mask).sum(axis=1) / intra_bw * 1e9
            + inter_mask.sum(axis=1) * ib_lat
            + (send_bytes * inter_mask).sum(axis=1) / (inter_bw * derate) * 1e9
        )
        recv_t = (
            nonzero.sum(axis=0) * min(ib_lat, shm_lat)
            + (send_bytes * intra_mask).sum(axis=0) / intra_bw * 1e9
            + (send_bytes * inter_mask).sum(axis=0) / inter_bw * 1e9
        )
        return np.maximum(send_t, recv_t)

    def alltoallv(self, send: list[list[np.ndarray]]) -> CollectiveResult:
        """Exchange variable-size arrays between all rank pairs.

        ``send[i][j]`` is the array rank ``i`` sends to rank ``j``; the
        result's ``data[j][i]`` is what rank ``j`` received from rank ``i``
        (the same array object — messages are not mutated in transit).
        Used by the top-down phase to route discovered (vertex, parent)
        pairs to their owners.
        """
        np_ranks = self.num_ranks
        if len(send) != np_ranks or any(len(row) != np_ranks for row in send):
            raise CommunicationError(
                f"alltoallv expects a {np_ranks}x{np_ranks} send matrix",
                collective="alltoallv",
            )
        recv: list[list[np.ndarray]] = [
            [send[i][j] for i in range(np_ranks)] for j in range(np_ranks)
        ]
        send_bytes = np.array(
            [[send[i][j].nbytes for j in range(np_ranks)] for i in range(np_ranks)],
            dtype=np.float64,
        )
        times = self.alltoallv_time(send_bytes)
        if self.injector is not None:
            # A scheduled transient failure wastes the whole attempt:
            # the raise carries the priced duration so the engine can
            # charge the retransmission before retrying.
            self.injector.collective_attempt(
                "alltoallv", wasted_ns=float(times.max(initial=0.0))
            )
        result = CollectiveResult(
            data=recv,
            rank_times=times,
            breakdown={"alltoallv": float(times.max(initial=0.0))},
            raw_bytes=float(send_bytes.sum()),
            wire_bytes=float(send_bytes.sum() - np.trace(send_bytes)),
        )
        if self.tracer.enabled:
            nodes = np.array(
                [self.mapping.node_of(r) for r in range(np_ranks)],
                dtype=np.int64,
            )
            same_node = nodes[:, None] == nodes[None, :]
            self_mask = np.eye(np_ranks, dtype=bool)
            intra = float(send_bytes[same_node & ~self_mask].sum())
            inter = float(send_bytes[~same_node].sum())
            self.tracer.comm_event(
                "alltoallv",
                nbytes=float(send_bytes.sum()),
                rank_times=times,
                breakdown=result.breakdown,
                # Pre-share payload vs. bytes on an actual channel:
                # self-messages are pointer hand-offs and never hit a
                # wire, so wire_bytes excludes the diagonal.
                raw_bytes=float(send_bytes.sum()),
                wire_bytes=intra + inter,
                self_bytes=float(send_bytes[self_mask].sum()),
                intra_bytes=intra,
                inter_bytes=inter,
            )
        return result
