"""Simulated MPI runtime.

Functionally faithful rank-to-rank communication (the collectives really
move bytes between per-rank numpy buffers and return bit-identical results
to real MPI semantics) plus message-level timing charged against the
machine model: intra-node transfers go through the shared-memory copy
model, inter-node transfers through the InfiniBand model with the Fig. 4
concurrency curve.

The runtime implements the paper's full menu of allgather algorithms:

* ``ring`` / ``recursive doubling`` (the Open MPI 1.5.5 defaults selected
  by message size, after Thakur & Gropp);
* ``leader-based`` (gather -> leaders allgather -> broadcast, Fig. 5a);
* ``shared in_queue`` (no broadcast step, Fig. 5b);
* ``shared all`` (no gather step either);
* ``parallel subgroup`` allgather (Fig. 7).
"""

from repro.mpi.mapping import BindingPolicy, ProcessMapping
from repro.mpi.p2p import ANY, Message, MessageLedger
from repro.mpi.schedule import ScheduleStep, explain_allgather
from repro.mpi.subcomm import SubComm, split
from repro.mpi.sharedmem import NodeSharedBuffer
from repro.mpi.simcomm import SimComm, CollectiveResult
from repro.mpi.codecs import (
    EncodedFrontier,
    FrontierCodec,
    available_codecs,
    get_codec,
    resolve_codec,
)
from repro.mpi.collectives import (
    AllgatherAlgorithm,
    allgather,
    allgather_channel_bytes,
    allgather_time,
    parallel_allgather_time,
    alltoallv,
)

__all__ = [
    "BindingPolicy",
    "ProcessMapping",
    "ANY",
    "Message",
    "MessageLedger",
    "ScheduleStep",
    "explain_allgather",
    "SubComm",
    "split",
    "NodeSharedBuffer",
    "SimComm",
    "CollectiveResult",
    "EncodedFrontier",
    "FrontierCodec",
    "available_codecs",
    "get_codec",
    "resolve_codec",
    "AllgatherAlgorithm",
    "allgather",
    "allgather_channel_bytes",
    "allgather_time",
    "parallel_allgather_time",
    "alltoallv",
]
