"""Tag-matched point-to-point messaging (the MPI send/recv layer).

The BFS engine itself uses bulk collectives, but a complete MPI substrate
needs point-to-point semantics — and some consumers (custom exchange
patterns, the 2-D engine's fold phase, user experiments) are most natural
as send/recv.  Because ranks execute bulk-synchronously in one process,
the layer is superstep-structured, like BSP or MPI with non-blocking
sends completed at a barrier:

1. during a superstep every rank may ``send()`` any number of messages;
2. ``exchange()`` ends the superstep: it prices all posted traffic on the
   machine model (the same alltoallv cost as :meth:`SimComm.alltoallv`)
   and makes every message receivable;
3. ``recv()`` retrieves messages with MPI-style matching: FIFO per
   (source, destination, tag) channel, wildcards for source and tag.

Misuse is caught loudly: receiving a message that was never delivered
raises (the deadlock analogue), and ``assert_drained()`` reports messages
nobody received (the lost-message analogue).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.simcomm import CollectiveResult, SimComm

__all__ = ["ANY", "Message", "MessageLedger"]

# MPI_ANY_SOURCE / MPI_ANY_TAG analogue.
ANY = -1


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    tag: int
    payload: np.ndarray


class MessageLedger:
    """Superstep-structured point-to-point messaging over a SimComm."""

    def __init__(self, comm: SimComm) -> None:
        self.comm = comm
        self._outbox: list[Message] = []
        # Delivered messages: (src, dst, tag) -> FIFO of payloads.
        self._delivered: dict[tuple[int, int, int], deque[Message]] = {}
        self._superstep = 0

    # ---- sending -------------------------------------------------------------

    def send(
        self, src: int, dst: int, payload: np.ndarray, tag: int = 0
    ) -> None:
        """Post a message for delivery at the next ``exchange()``."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        if tag < 0:
            raise CommunicationError("tags must be non-negative")
        self._outbox.append(
            Message(src=src, dst=dst, tag=tag, payload=np.asarray(payload))
        )

    # ---- superstep boundary ----------------------------------------------------

    def exchange(self) -> CollectiveResult:
        """Deliver all posted messages; returns the superstep's timing."""
        n = self.comm.num_ranks
        send_bytes = np.zeros((n, n), dtype=np.float64)
        for msg in self._outbox:
            send_bytes[msg.src, msg.dst] += msg.payload.nbytes
            self._delivered.setdefault(
                (msg.src, msg.dst, msg.tag), deque()
            ).append(msg)
        times = self.comm.alltoallv_time(send_bytes)
        delivered = len(self._outbox)
        self._outbox = []
        self._superstep += 1
        return CollectiveResult(
            data=delivered,
            rank_times=times,
            breakdown={"p2p_exchange": float(times.max(initial=0.0))},
        )

    # ---- receiving ----------------------------------------------------------

    def recv(self, dst: int, src: int = ANY, tag: int = ANY) -> Message:
        """Retrieve one delivered message for rank ``dst``.

        Matching is FIFO within a (src, dst, tag) channel; ``ANY`` matches
        any source and/or tag (lowest source, then lowest tag, wins when
        several channels qualify, keeping the semantics deterministic).
        Raises if no matching message was delivered — the sequential
        analogue of a deadlocked ``MPI_Recv``.
        """
        self._check_rank(dst, "destination")
        keys = sorted(
            key
            for key, queue in self._delivered.items()
            if queue
            and key[1] == dst
            and (src == ANY or key[0] == src)
            and (tag == ANY or key[2] == tag)
        )
        if not keys:
            raise CommunicationError(
                f"rank {dst} has no delivered message matching "
                f"src={'ANY' if src == ANY else src}, "
                f"tag={'ANY' if tag == ANY else tag} "
                f"(deadlock: was exchange() called?)"
            )
        queue = self._delivered[keys[0]]
        msg = queue.popleft()
        return msg

    def probe(self, dst: int, src: int = ANY, tag: int = ANY) -> bool:
        """True if a matching message is waiting for ``dst``."""
        return any(
            queue
            and key[1] == dst
            and (src == ANY or key[0] == src)
            and (tag == ANY or key[2] == tag)
            for key, queue in self._delivered.items()
        )

    def recv_all(self, dst: int, tag: int = ANY) -> list[Message]:
        """All waiting messages for ``dst`` (ordered by source, FIFO)."""
        out = []
        while self.probe(dst, tag=tag):
            out.append(self.recv(dst, tag=tag))
        return out

    # ---- hygiene ---------------------------------------------------------------

    def assert_drained(self) -> None:
        """Raise if any delivered message was never received, or if sends
        are still posted without an ``exchange()``."""
        leftovers = [
            (key, len(queue))
            for key, queue in self._delivered.items()
            if queue
        ]
        if self._outbox:
            raise CommunicationError(
                f"{len(self._outbox)} messages posted but never exchanged"
            )
        if leftovers:
            detail = ", ".join(
                f"src={k[0]}->dst={k[1]} tag={k[2]} x{count}"
                for k, count in leftovers[:5]
            )
            raise CommunicationError(
                f"{sum(c for _, c in leftovers)} delivered messages were "
                f"never received ({detail}...)"
            )

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.comm.num_ranks:
            raise CommunicationError(
                f"{what} rank {rank} out of range [0, {self.comm.num_ranks})"
            )
