"""Human-readable schedules of the allgather algorithms (Figs. 5 and 7).

Figures 5a, 5b and 7 of the paper are *mechanism* diagrams; this module
reproduces them as step-by-step textual schedules computed from the same
cost functions the simulator charges, so the diagrams can be checked
against the implementation (``repro-experiment`` prints them via the
fig06 bench, and ``tests/test_schedule.py`` pins the structure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.mpi.collectives import AllgatherAlgorithm, allgather_time
from repro.mpi.simcomm import SimComm
from repro.util.formatting import format_bytes, format_time_ns

__all__ = ["ScheduleStep", "explain_allgather"]


@dataclass(frozen=True)
class ScheduleStep:
    """One step of a collective schedule."""

    name: str
    channel: str  # "intra-node" | "inter-node" | "none"
    description: str
    bytes_moved_per_node: float
    time_ns: float

    def render(self) -> str:
        """One-line rendering of the step."""
        t = format_time_ns(self.time_ns)
        vol = (
            format_bytes(self.bytes_moved_per_node)
            if self.bytes_moved_per_node
            else "-"
        )
        return f"{self.name:14s} [{self.channel:10s}] {t:>10s} {vol:>10s}  {self.description}"


def explain_allgather(
    comm: SimComm,
    algorithm: AllgatherAlgorithm,
    part_bytes: float,
    total_bytes: float | None = None,
    *,
    codec: str | None = None,
    wire_part_bytes: float | None = None,
    wire_total_bytes: float | None = None,
    subgroups: int | None = None,
) -> list[ScheduleStep]:
    """The step structure of one allgather on one payload.

    With a non-raw ``codec``, the transmission steps are priced at the
    given wire sizes (defaulting to the raw sizes when the caller has no
    measurement) and the schedule is bracketed by the codec's encode and
    decode steps, mirroring what :func:`repro.mpi.collectives.allgather`
    charges during a functional run.
    """
    if part_bytes < 0:
        raise CommunicationError("negative part size")
    if total_bytes is None:
        total_bytes = part_bytes * comm.num_ranks
    encoded = codec not in (None, "raw")
    tx_part = part_bytes
    tx_total = total_bytes
    if encoded:
        tx_part = part_bytes if wire_part_bytes is None else wire_part_bytes
        tx_total = total_bytes if wire_total_bytes is None else wire_total_bytes
    ppn = comm.mapping.ppn
    nodes = comm.cluster.nodes
    total_t, breakdown = allgather_time(
        comm, algorithm, tx_part, tx_total, subgroups=subgroups
    )

    steps: list[ScheduleStep] = []
    if encoded:
        enc_t = comm.codec_model.encode_time_ns(part_bytes)
        dec_t = comm.codec_model.decode_time_ns(tx_total)
        total_t += enc_t + dec_t
        ratio = total_bytes / tx_total if tx_total else 0.0
        steps.append(
            ScheduleStep(
                "codec encode",
                "none",
                f"every rank encodes its part with the '{codec}' frontier "
                f"codec ({format_bytes(part_bytes)} -> "
                f"{format_bytes(tx_part)} per part, {ratio:.1f}x overall)",
                0.0,
                enc_t,
            )
        )
    def _finish(steps: list[ScheduleStep]) -> list[ScheduleStep]:
        """Append the decode step (when encoded) and check the total."""
        if encoded:
            steps.append(
                ScheduleStep(
                    "codec decode",
                    "none",
                    f"every rank decodes the gathered '{codec}' payload "
                    f"back to the full bitmap "
                    f"({format_bytes(tx_total)} -> {format_bytes(total_bytes)})",
                    0.0,
                    dec_t,
                )
            )
        assert abs(sum(s.time_ns for s in steps) - total_t) < 1e-6
        return steps

    if set(breakdown) == {"ring"}:
        steps.append(
            ScheduleStep(
                "ring",
                "both",
                f"{comm.num_ranks - 1} steps; every rank forwards its "
                f"current block to its successor (node-major order: "
                f"{ppn - 1} intra copies + 1 inter flow per node per step)",
                tx_total - tx_part,
                breakdown["ring"],
            )
        )
        return _finish(steps)
    if set(breakdown) == {"recursive_doubling"}:
        steps.append(
            ScheduleStep(
                "recursive-dbl",
                "both",
                f"log2({comm.num_ranks}) rounds of pairwise exchange, "
                f"payload doubling each round",
                tx_total - tx_part,
                breakdown["recursive_doubling"],
            )
        )
        return _finish(steps)

    if algorithm is AllgatherAlgorithm.LEADER_OVERLAPPED:
        steps.append(
            ScheduleStep(
                "overlapped",
                "both",
                "leader scheme with perfectly overlapped intra/inter "
                "steps (HierKNEM-style): completes when the slower side "
                "does — the intra side, at large payloads (Fig. 6)",
                tx_total * (ppn - 1) + tx_part * (ppn - 1),
                breakdown["overlapped"],
            )
        )
        return _finish(steps)

    # The leader-based family (Figs. 5a, 5b, 7).
    gather = breakdown.get("intra_gather", 0.0)
    inter = breakdown.get("inter", 0.0)
    bcast = breakdown.get("intra_bcast", 0.0)
    if algorithm is AllgatherAlgorithm.MULTI_LEADER:
        steps.append(
            ScheduleStep(
                "inter",
                "inter-node",
                f"every per-socket leader allgathers the FULL payload "
                f"({ppn} flows per node, each carrying whole node blocks "
                f"— {ppn}x the volume of Fig. 7)",
                (tx_total - tx_total / nodes) * ppn if nodes > 1 else 0,
                inter,
            )
        )
        return _finish(steps)

    if gather > 0:
        steps.append(
            ScheduleStep(
                "step 1 gather",
                "intra-node",
                f"{ppn - 1} children copy their parts to the node leader "
                f"(Fig. 5 STEP 1)",
                tx_part * (ppn - 1),
                gather,
            )
        )
    else:
        steps.append(
            ScheduleStep(
                "step 1 gather",
                "none",
                "eliminated: out_queue slots live in node-shared memory, "
                "the leader reads them directly (Fig. 5b / 'Share all')",
                0.0,
                0.0,
            )
        )
    if algorithm is AllgatherAlgorithm.PARALLEL_SHARED:
        groups = ppn if subgroups is None else subgroups
        steps.append(
            ScheduleStep(
                "step 2 inter",
                "inter-node",
                f"{groups} subgroups allgather 1/{groups} of the data "
                f"each, concurrently saturating the IB ports (Fig. 7)",
                tx_total - tx_total / nodes if nodes > 1 else 0,
                inter,
            )
        )
    else:
        steps.append(
            ScheduleStep(
                "step 2 inter",
                "inter-node",
                "node leaders allgather node blocks over InfiniBand "
                "(Fig. 5 STEP 2; one flow per node)",
                tx_total - tx_total / nodes if nodes > 1 else 0,
                inter,
            )
        )
    if bcast > 0:
        steps.append(
            ScheduleStep(
                "step 3 bcast",
                "intra-node",
                f"the leader broadcasts the full result to {ppn - 1} "
                f"children (Fig. 5a STEP 3)",
                tx_total * (ppn - 1),
                bcast,
            )
        )
    else:
        steps.append(
            ScheduleStep(
                "step 3 bcast",
                "none",
                "eliminated: the destination in_queue is node-shared, "
                "every rank reads the result in place (Fig. 5b)",
                0.0,
                0.0,
            )
        )
    return _finish(steps)
