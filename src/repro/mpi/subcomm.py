"""Sub-communicators (the ``MPI_Comm_split`` analogue).

The paper's parallel allgather works on *subgroups* (ranks with equal
local index across nodes, Fig. 7) and the 2-D engine communicates within
grid rows/columns.  ``split`` expresses those fibers as first-class
communicators: each :class:`SubComm` translates between local and global
ranks and provides functional, priced collectives over its members,
embedded into the parent's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.simcomm import CollectiveResult, SimComm

__all__ = ["SubComm", "split"]


@dataclass(frozen=True)
class SubComm:
    """A communicator over an ordered subset of a parent's ranks."""

    parent: SimComm
    color: int
    members: tuple[int, ...]  # global ranks, in local-rank order

    def __post_init__(self) -> None:
        if not self.members:
            raise CommunicationError("a subcommunicator needs members")
        seen = set()
        for rank in self.members:
            if not 0 <= rank < self.parent.num_ranks:
                raise CommunicationError(f"rank {rank} not in parent")
            if rank in seen:
                raise CommunicationError(f"duplicate member {rank}")
            seen.add(rank)

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.members)

    def local_rank(self, global_rank: int) -> int:
        """This member's rank within the subcommunicator."""
        try:
            return self.members.index(global_rank)
        except ValueError:
            raise CommunicationError(
                f"rank {global_rank} is not a member of color {self.color}"
            ) from None

    def global_rank(self, local_rank: int) -> int:
        """The parent rank of a subcommunicator member."""
        if not 0 <= local_rank < self.size:
            raise CommunicationError(
                f"local rank {local_rank} out of range [0, {self.size})"
            )
        return self.members[local_rank]

    # ---- collectives ---------------------------------------------------------

    def _embed(self, local_bytes: np.ndarray) -> np.ndarray:
        """Embed a local byte matrix into the parent rank space."""
        n = self.parent.num_ranks
        full = np.zeros((n, n), dtype=np.float64)
        idx = np.asarray(self.members, dtype=np.int64)
        full[np.ix_(idx, idx)] = local_bytes
        return full

    def alltoallv_time(self, send_bytes: np.ndarray) -> np.ndarray:
        """Per-member times of an alltoallv within the subcommunicator."""
        send_bytes = np.asarray(send_bytes, dtype=np.float64)
        if send_bytes.shape != (self.size, self.size):
            raise CommunicationError(
                f"expected a {self.size}x{self.size} matrix"
            )
        times = self.parent.alltoallv_time(self._embed(send_bytes))
        return times[np.asarray(self.members, dtype=np.int64)]

    def allgatherv(self, parts: list[np.ndarray]) -> CollectiveResult:
        """Functional allgather over the members.

        Every member contributes ``parts[local_rank]`` and receives the
        concatenation; the cost is the pairwise exchange of parts within
        the subgroup (the generic allgather volume ``m * (k - 1)``),
        priced on the parent's channels.
        """
        if len(parts) != self.size:
            raise CommunicationError(
                f"expected {self.size} parts, got {len(parts)}"
            )
        full = (
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=np.uint64)
        )
        k = self.size
        send = np.zeros((k, k), dtype=np.float64)
        for i, part in enumerate(parts):
            send[i, :] = part.nbytes
            send[i, i] = 0.0
        times = self.alltoallv_time(send)
        return CollectiveResult(
            data=full,
            rank_times=times,
            breakdown={"subcomm_allgatherv": float(times.max(initial=0.0))},
        )


def split(
    comm: SimComm, colors: list[int], keys: list[int] | None = None
) -> dict[int, SubComm]:
    """Partition a communicator's ranks by color (``MPI_Comm_split``).

    ``colors[r]`` selects rank ``r``'s subcommunicator; within one color,
    members are ordered by ``keys[r]`` (global rank breaking ties), as in
    MPI.  Returns one :class:`SubComm` per color.
    """
    if len(colors) != comm.num_ranks:
        raise CommunicationError(
            f"expected one color per rank ({comm.num_ranks})"
        )
    if keys is None:
        keys = list(range(comm.num_ranks))
    elif len(keys) != comm.num_ranks:
        raise CommunicationError("expected one key per rank")
    out: dict[int, SubComm] = {}
    for color in sorted(set(colors)):
        members = sorted(
            (r for r in range(comm.num_ranks) if colors[r] == color),
            key=lambda r: (keys[r], r),
        )
        out[color] = SubComm(
            parent=comm, color=color, members=tuple(members)
        )
    return out
