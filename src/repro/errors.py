"""Exception types used across the :mod:`repro` package.

Keeping a small, explicit hierarchy makes failures easy to catch at API
boundaries: configuration problems raise :class:`ConfigError`, malformed
graphs raise :class:`GraphError`, violations detected by the Graph500
validator raise :class:`ValidationError`, and internal simulator invariant
breaks raise :class:`SimulationError`.

Every error can carry *structured context* — keyword arguments such as
``rank=``, ``level=``, ``collective=`` or ``attempt=`` passed at the
raise site — exposed as the ``context`` dict and folded into
:meth:`ReproError.to_dict` so tooling (the chaos report, CI artifacts)
can consume failures without parsing message strings.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "ValidationError",
    "SimulationError",
    "CommunicationError",
    "FaultError",
    "CheckpointError",
    "ServeError",
    "ServeOverloadError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    ``context`` keyword arguments (``rank``, ``level``, ``collective``,
    ``attempt``, ...) attach machine-readable detail to the failure;
    ``None`` values are dropped so call sites can pass what they know.
    """

    def __init__(self, message: str = "", **context) -> None:
        super().__init__(message)
        self.context: dict = {
            key: value for key, value in context.items() if value is not None
        }

    def to_dict(self) -> dict:
        """The error as a plain JSON-serializable dict (for reports)."""
        # The bare message: context is carried structurally, not baked
        # into the string twice.
        out: dict = {
            "type": type(self).__name__,
            "message": Exception.__str__(self),
        }
        if self.context:
            out["context"] = dict(self.context)
        cause = self.__cause__
        if isinstance(cause, ReproError):
            out["cause"] = cause.to_dict()
        elif cause is not None:
            out["cause"] = {
                "type": type(cause).__name__,
                "message": str(cause),
            }
        return out

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(
            f"{key}={value!r}" for key, value in self.context.items()
        )
        return f"{base} [{detail}]"


class ConfigError(ReproError, ValueError):
    """An invalid configuration value (machine spec, BFS config, mapping)."""


class GraphError(ReproError, ValueError):
    """A malformed graph or an operation on an incompatible graph."""


class ValidationError(ReproError):
    """A BFS result failed Graph500-style validation."""


class SimulationError(ReproError, RuntimeError):
    """An internal invariant of the simulator was violated."""


class CommunicationError(SimulationError):
    """A simulated MPI operation was used incorrectly (mismatched sizes,
    unknown rank, message left undelivered, ...)."""


class FaultError(SimulationError):
    """An injected fault could not be recovered from.

    Raised when the fault-tolerant engine exhausts its retry or rollback
    budget, or a fault strikes with no checkpoint to fall back to.  The
    structured ``context`` (``kind``, ``rank``, ``level``, ``collective``,
    ``attempt``) feeds the chaos report's typed failure records.
    """


class CheckpointError(ReproError):
    """A BFS checkpoint could not be captured, stored or restored."""


class ServeError(ReproError):
    """A request-layer failure in the serving stack (:mod:`repro.serve`)."""


class ServeOverloadError(ServeError):
    """A query was refused by admission control rather than served.

    The structured ``reason`` context says which mechanism refused it:
    ``queue_full`` (bounded admission queue), ``shed`` (evicted by a
    drop-oldest policy), ``circuit_open`` (the breaker is fast-failing
    this (graph, config) fingerprint), ``replay_exhausted`` (the query
    was already replayed once across a dispatcher restart), or
    ``shutdown`` (the scheduler drained it while stopping).
    """


class DeadlineExceededError(ServeError):
    """A query's deadline expired before it could be (fully) served.

    Raised both at batch pickup (the query aged out in the admission
    queue) and cooperatively between BFS levels when a whole in-flight
    batch is past its latest deadline (see
    :class:`repro.serve.resilience.CancelToken`).
    """
