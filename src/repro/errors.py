"""Exception types used across the :mod:`repro` package.

Keeping a small, explicit hierarchy makes failures easy to catch at API
boundaries: configuration problems raise :class:`ConfigError`, malformed
graphs raise :class:`GraphError`, violations detected by the Graph500
validator raise :class:`ValidationError`, and internal simulator invariant
breaks raise :class:`SimulationError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "ValidationError",
    "SimulationError",
    "CommunicationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value (machine spec, BFS config, mapping)."""


class GraphError(ReproError, ValueError):
    """A malformed graph or an operation on an incompatible graph."""


class ValidationError(ReproError):
    """A BFS result failed Graph500-style validation."""


class SimulationError(ReproError, RuntimeError):
    """An internal invariant of the simulator was violated."""


class CommunicationError(SimulationError):
    """A simulated MPI operation was used incorrectly (mismatched sizes,
    unknown rank, message left undelivered, ...)."""
