"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.graph.rmat import rmat_graph
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec, paper_cluster
from repro.util.formatting import format_table

__all__ = [
    "ExperimentSettings",
    "ExperimentResult",
    "cached_rmat_graph",
    "cluster_for",
    "paper_scale_for_nodes",
]

# The paper's weak-scaling pairing: nodes -> graph scale (IV.C-D).
_PAPER_SCALES = {1: 28, 2: 29, 4: 30, 8: 31, 16: 32}


def paper_scale_for_nodes(nodes: int) -> int:
    """Graph scale the paper pairs with a node count (28 at 1 node up to
    32 at 16 nodes)."""
    if nodes not in _PAPER_SCALES:
        raise ValueError(f"the paper evaluates 1/2/4/8/16 nodes, not {nodes}")
    return _PAPER_SCALES[nodes]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``scale_offset`` is how far below the paper's graph scale the
    *functional* runs execute before being re-priced at paper scale
    (DESIGN.md §2); the default keeps every experiment comfortably inside
    laptop memory.  ``num_roots`` trades Graph500 fidelity (64 roots) for
    runtime.
    """

    scale_offset: int = 15
    num_roots: int = 3
    seed: int = 4
    graph_seed: int = 2
    include_weak_node: bool = True

    def measured_scale(self, paper_scale: int) -> int:
        """Functional-run scale for a paper scale (floor at 13)."""
        scale = paper_scale - self.scale_offset
        # 128 ranks need >= 2^13 vertices for word-aligned parts.
        return max(scale, 13)

    def quick(self) -> "ExperimentSettings":
        """Fastest settings (2 roots, deeper offset)."""
        return replace(self, num_roots=2, scale_offset=16)


@dataclass
class ExperimentResult:
    """Rows/series of one reproduced table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    # Key quantities for EXPERIMENTS.md: name -> (paper value, measured).
    claims: dict[str, tuple[str, str]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    # Terminal bar charts of the figure's shape (rendered verbatim).
    charts: list[str] = field(default_factory=list)

    def add_claim(self, name: str, paper: str, measured: str) -> None:
        """Record one paper-vs-measured claim."""
        self.claims[name] = (paper, measured)

    def to_csv(self) -> str:
        """The rows as CSV text (headers first)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_text(self) -> str:
        """Render the table, charts and claims as plain text."""
        parts = [format_table(self.headers, self.rows, title=self.title)]
        for chart in self.charts:
            parts.append("")
            parts.append(chart)
        if self.claims:
            parts.append("")
            parts.append("paper-vs-measured:")
            for name, (paper, measured) in self.claims.items():
                parts.append(f"  {name}: paper {paper} | measured {measured}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


@lru_cache(maxsize=8)
def cached_rmat_graph(scale: int, seed: int) -> Graph:
    """Graphs are reused across experiments within one process."""
    return rmat_graph(scale=scale, seed=seed)


def cluster_for(nodes: int, settings: ExperimentSettings) -> ClusterSpec:
    """The paper's platform at ``nodes`` nodes; the one degraded-IB node
    (IV.A) is present only in the full 16-node configuration, as in the
    paper."""
    weak = settings.include_weak_node and nodes == 16
    return paper_cluster(nodes=nodes, weak_node=weak)


def evaluate_variant(nodes: int, config, settings: ExperimentSettings):
    """Weak-scaling evaluation of one configuration at ``nodes`` nodes:
    functional runs at the reduced scale, priced at the paper's scale for
    that node count.  Returns a
    :class:`repro.model.predict.PredictedGraph500`."""
    from repro.model.predict import predict_graph500

    paper_scale = paper_scale_for_nodes(nodes)
    scale = settings.measured_scale(paper_scale)
    graph = cached_rmat_graph(scale, settings.graph_seed)
    cluster = cluster_for(nodes, settings)
    return predict_graph500(
        graph,
        cluster,
        config,
        target_scale=paper_scale,
        num_roots=settings.num_roots,
        seed=settings.seed,
    )
