"""Fig. 10 — execution policies on a single node (scale 28).

Sweeps the ``mpirun``/``numactl`` policy space of the paper: the bound
one-process-per-socket mapping must win, interleaving must beat naive
first-touch, and unbound multi-process must be the worst.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
)
from repro.mpi.mapping import BindingPolicy

EXPERIMENT_ID = "fig10"
TITLE = "Fig. 10: execution policies on one node (scale 28)"
NODES = 1

POLICIES = {
    "ppn=1.noflag": BFSConfig(ppn=1, binding=BindingPolicy.NOFLAG),
    "ppn=1.interleave": BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
    "ppn=8.noflag": BFSConfig(binding=BindingPolicy.NOFLAG),
    "ppn=8.bind-to-socket": BFSConfig(binding=BindingPolicy.BIND_TO_SOCKET),
}


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 10 (single-node execution policies)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["policy", "GTEPS", "relative to best"],
    )
    teps = {
        name: evaluate_variant(NODES, cfg, settings).harmonic_mean_teps
        for name, cfg in POLICIES.items()
    }
    best = max(teps.values())
    for name, value in teps.items():
        res.rows.append([name, value / 1e9, value / best])

    bind = teps["ppn=8.bind-to-socket"]
    res.add_claim(
        "bind-to-socket vs ppn=1.interleave",
        "1.74x",
        f"{bind / teps['ppn=1.interleave']:.2f}x",
    )
    res.add_claim(
        "bind-to-socket vs ppn=8.noflag",
        "2.08x",
        f"{bind / teps['ppn=8.noflag']:.2f}x",
    )
    res.add_claim(
        "interleave beats ppn=1.noflag",
        "interleave > noflag",
        f"{teps['ppn=1.interleave'] / teps['ppn=1.noflag']:.2f}x "
        f"({'holds' if teps['ppn=1.interleave'] > teps['ppn=1.noflag'] else 'VIOLATED'})",
    )
    res.add_claim(
        "bind-to-socket is best",
        "best of all policies",
        "holds" if bind == best else "VIOLATED",
    )
    return res
