"""Fig. 3 — BFS speedup on 1 core, 8 cores and 64 cores.

The paper's motivating measurement: with all accesses local, 8 cores are
~6.98x one core; but adding the other 7 sockets (64 cores, interleaved
memory) only brings ~2.77x more because of the NUMA effect — while socket
binding recovers ~6.31x (II.D.3).  We reproduce it by pricing the same
BFS computation on four machine shapes and comparing *computation* time
(communication is out of scope for this figure).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    cached_rmat_graph,
)
from repro.graph.degree import sample_roots
from repro.machine.spec import ClusterSpec, NodeSpec, x7550_socket
from repro.model.extrapolate import extrapolate_result
from repro.mpi.mapping import BindingPolicy

EXPERIMENT_ID = "fig03"
TITLE = "Fig. 3: BFS speedup vs core count (NUMA effect)"
PAPER_SCALE = 28


def _single_node_cluster(sockets: int, cores: int) -> ClusterSpec:
    socket = dataclasses.replace(x7550_socket(), cores=cores)
    node = NodeSpec(sockets=sockets, socket=socket)
    return ClusterSpec(nodes=1, node=node)


def _compute_seconds(
    graph, cluster, config, roots, target_scale
) -> float:
    """Mean computation time (compute + stall, no communication) priced
    at the paper scale."""
    engine = BFSEngine(graph, cluster, config)
    totals = []
    for root in roots:
        res = engine.run(int(root))
        pred = extrapolate_result(res, engine, target_scale)
        bd = pred.timing.breakdown
        totals.append(
            (bd.td_compute + bd.bu_compute + bd.stall + bd.switch) / 1e9
        )
    return float(np.mean(totals))


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 3 (core-count speedups under NUMA)."""
    settings = settings or ExperimentSettings()
    scale = settings.measured_scale(PAPER_SCALE)
    graph = cached_rmat_graph(scale, settings.graph_seed)
    roots = sample_roots(graph, settings.num_roots, seed=settings.seed)

    cases = {
        "1 core (local)": (
            _single_node_cluster(1, 1),
            BFSConfig(ppn=1, binding=BindingPolicy.BIND_TO_SOCKET),
        ),
        "8 cores (1 socket, local)": (
            _single_node_cluster(1, 8),
            BFSConfig(ppn=1, binding=BindingPolicy.BIND_TO_SOCKET),
        ),
        "64 cores (8 sockets, interleave)": (
            _single_node_cluster(8, 8),
            BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
        ),
        "64 cores (8 sockets, bind-to-socket)": (
            _single_node_cluster(8, 8),
            BFSConfig.original_ppn8(),
        ),
    }
    seconds = {
        name: _compute_seconds(graph, cluster, cfg, roots, PAPER_SCALE)
        for name, (cluster, cfg) in cases.items()
    }
    t1 = seconds["1 core (local)"]
    t8 = seconds["8 cores (1 socket, local)"]
    t64i = seconds["64 cores (8 sockets, interleave)"]
    t64b = seconds["64 cores (8 sockets, bind-to-socket)"]

    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["configuration", "compute time [s]", "speedup vs 1 core"],
    )
    for name in cases:
        res.rows.append([name, seconds[name], t1 / seconds[name]])
    res.add_claim("8 cores vs 1 core", "6.98x", f"{t1 / t8:.2f}x")
    res.add_claim("64 cores (interleave) vs 8 cores", "2.77x", f"{t8 / t64i:.2f}x")
    res.add_claim("64 cores (bind) vs 8 cores", "6.31x", f"{t8 / t64b:.2f}x")
    return res
