"""Fig. 14 — proportion of bottom-up communication in total time
(1 -> 8 nodes, no 16-node column because of the weak node).

The scalability argument: the optimizations cut the 8-node proportion
from ~54% to ~18%, with the remaining non-BU categories (top-down, stall,
switch) staying below ~20% even in the optimized build.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
    paper_scale_for_nodes,
)

EXPERIMENT_ID = "fig14"
TITLE = "Fig. 14: bottom-up communication proportion per optimization"
NODE_COUNTS = (1, 2, 4, 8)

VARIANTS = {
    "Original.ppn=8": BFSConfig.original_ppn8(),
    "Share in_queue": BFSConfig.share_in_queue_variant(),
    "Share all": BFSConfig.share_all_variant(),
    "Par allgather": BFSConfig.par_allgather_variant(),
}


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 14 (comm proportion per optimization)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["nodes", "scale"] + list(VARIANTS),
    )
    props: dict[int, dict[str, float]] = {}
    misc_fraction_8 = None
    for nodes in NODE_COUNTS:
        row: dict[str, float] = {}
        for name, cfg in VARIANTS.items():
            pred = evaluate_variant(nodes, cfg, settings)
            bd = pred.mean_breakdown()
            row[name] = bd.comm_fraction
            if nodes == 8 and name == "Par allgather":
                misc_fraction_8 = (
                    bd.td_compute + bd.td_comm + bd.switch + bd.stall
                ) / bd.total
        props[nodes] = row
        res.rows.append(
            [nodes, paper_scale_for_nodes(nodes)]
            + [f"{row[name] * 100:.0f}%" for name in VARIANTS]
        )
    res.add_claim(
        "proportion at 8 nodes, unoptimized -> all optimizations",
        "54% -> 18%",
        f"{props[8]['Original.ppn=8'] * 100:.0f}% -> "
        f"{props[8]['Par allgather'] * 100:.0f}%",
    )
    if misc_fraction_8 is not None:
        res.add_claim(
            "top-down + stall + switch stay small (optimized, 8 nodes)",
            "< 20%",
            f"{misc_fraction_8 * 100:.0f}%",
        )
    return res
