"""Fig. 9 — overview of all optimizations (16 nodes, scale 32).

The headline figure: the full stack from ``Original.ppn=1`` to the tuned
granularity.  The first five bars come from functional runs re-priced at
scale 32; the granularity bar applies the analytic-mode multiplier for
the best tested granularity, because the summary's zero-block trade-off
only exists at paper-scale frontier densities (see
:mod:`repro.model.levelprofile`).
"""

from __future__ import annotations

from repro.core.config import BFSConfig, paper_variants
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    cluster_for,
    evaluate_variant,
)
from repro.model.analytic import analytic_graph500

EXPERIMENT_ID = "fig09"
TITLE = "Fig. 9: overview of all optimizations (16 nodes, scale 32)"
NODES = 16
BEST_GRANULARITY = 256


def granularity_multiplier(settings: ExperimentSettings) -> float:
    """Analytic-mode speedup of the best granularity over the default 64
    on top of the 'Par allgather' stack."""
    cluster = cluster_for(NODES, settings)
    base = analytic_graph500(
        cluster, BFSConfig.par_allgather_variant(), 32
    ).seconds
    best = analytic_graph500(
        cluster, BFSConfig.granularity_variant(BEST_GRANULARITY), 32
    ).seconds
    return base / best


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 9 (the optimization-stack overview)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["variant", "GTEPS", "speedup vs Original.ppn=1"],
    )
    teps = {}
    for name, cfg in paper_variants(BEST_GRANULARITY).items():
        if name == "Granularity":
            continue
        pred = evaluate_variant(NODES, cfg, settings)
        teps[name] = pred.harmonic_mean_teps
    teps["Granularity"] = teps["Par allgather"] * granularity_multiplier(
        settings
    )

    base = teps["Original.ppn=1"]
    for name, value in teps.items():
        res.rows.append([name, value / 1e9, value / base])
    from repro.util import bar_chart

    res.charts.append(
        bar_chart(
            list(teps),
            [v / 1e9 for v in teps.values()],
            unit="GTEPS",
            title="Fig. 9 shape:",
        )
    )

    res.add_claim(
        "NUMA mapping alone (ppn=8 vs ppn=1)",
        "1.53x",
        f"{teps['Original.ppn=8'] / base:.2f}x",
    )
    res.add_claim(
        "Share in_queue over Original.ppn=8",
        "+34.1%",
        f"+{(teps['Share in_queue'] / teps['Original.ppn=8'] - 1) * 100:.1f}%",
    )
    res.add_claim(
        "Share all (additional)",
        "+6.5%",
        f"+{(teps['Share all'] / teps['Share in_queue'] - 1) * 100:.1f}%",
    )
    res.add_claim(
        "Par allgather (additional)",
        "+4.6%",
        f"+{(teps['Par allgather'] / teps['Share all'] - 1) * 100:.1f}%",
    )
    res.add_claim(
        "Granularity (additional)",
        "+14.8%",
        f"+{(teps['Granularity'] / teps['Par allgather'] - 1) * 100:.1f}%",
    )
    res.add_claim(
        "overall speedup", "2.44x", f"{teps['Granularity'] / base:.2f}x"
    )
    res.add_claim(
        "final performance", "39.2 GTEPS",
        f"{teps['Granularity'] / 1e9:.1f} GTEPS",
    )
    return res
