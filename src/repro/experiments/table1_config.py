"""Table I — node configuration.

Renders the machine model's defaults in the layout of the paper's table,
so any recalibration of the specs is immediately visible next to the
published values.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.machine.spec import paper_cluster
from repro.util.formatting import format_bytes, format_si

EXPERIMENT_ID = "table1"
TITLE = "Table I: node configuration (model defaults vs paper)"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Table I (node configuration)."""
    cluster = paper_cluster()
    node = cluster.node
    sock = node.socket
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["item", "paper (Table I)", "model"],
    )
    rows = [
        ["CPUs per node", "8x Intel Xeon X7550", f"{node.sockets} sockets"],
        ["cores per CPU", "8 @ 2.0 GHz", f"{sock.cores} @ {sock.frequency_hz/1e9:.1f} GHz"],
        ["L1D per core", "32 KB", format_bytes(sock.caches[0].capacity_bytes, 0)],
        ["L2 per core", "256 KB", format_bytes(sock.caches[1].capacity_bytes, 0)],
        ["L3 per CPU (shared)", "18 MB", format_bytes(sock.caches[2].capacity_bytes, 0)],
        ["QPI", "4x 6.4 GT/s", f"{node.qpi.links_per_socket} coherence links x "
                                f"{format_si(node.qpi.link_bandwidth, 'B/s')}"],
        ["memory bandwidth per CPU", "17.1 GB/s", format_si(sock.dram_bandwidth, "B/s")],
        ["memory per node", "256 GB", format_bytes(node.dram_total, 0)],
        ["network", "2x 40 Gb/s InfiniBand",
         f"{node.ib.ports} ports x {format_si(node.ib.port_bandwidth * 8, 'b/s')}"
         " effective data rate"],
        ["nodes / total cores", "16 / 1024", f"{cluster.nodes} / {cluster.total_cores}"],
    ]
    res.rows = rows
    res.add_claim("total cores", "1024", str(cluster.total_cores))
    res.add_claim(
        "per-CPU memory bandwidth", "17.1 GB/s",
        format_si(sock.dram_bandwidth, "B/s"),
    )
    return res
