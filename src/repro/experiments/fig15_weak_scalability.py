"""Fig. 15 — weak scalability of all implementations (1 -> 16 nodes).

TEPS under weak scaling: the communication optimizations keep the curve
rising to 16 nodes where the unoptimized ppn=8 build flattens; the
16-node point of every curve is dented by the one weak-IB node, as the
paper observes.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
    paper_scale_for_nodes,
)
from repro.mpi.mapping import BindingPolicy

EXPERIMENT_ID = "fig15"
TITLE = "Fig. 15: weak scalability (TEPS, scales 28-32)"
NODE_COUNTS = (1, 2, 4, 8, 16)

VARIANTS = {
    "Original.ppn=1": BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
    "Original.ppn=8": BFSConfig.original_ppn8(),
    "Share in_queue": BFSConfig.share_in_queue_variant(),
    "Share all": BFSConfig.share_all_variant(),
    "Par allgather": BFSConfig.par_allgather_variant(),
}


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 15 (weak scalability of all variants)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["nodes", "scale"] + [f"{v} [GTEPS]" for v in VARIANTS],
    )
    series: dict[str, dict[int, float]] = {name: {} for name in VARIANTS}
    for nodes in NODE_COUNTS:
        row = [nodes, paper_scale_for_nodes(nodes)]
        for name, cfg in VARIANTS.items():
            teps = evaluate_variant(nodes, cfg, settings).harmonic_mean_teps
            series[name][nodes] = teps
            row.append(teps / 1e9)
        res.rows.append(row)

    opt = series["Par allgather"]
    orig = series["Original.ppn=8"]
    res.add_claim(
        "optimized scales better than Original.ppn=8 (8 nodes)",
        "higher TEPS growth",
        f"{opt[8] / orig[8]:.2f}x at 8 nodes",
    )
    res.add_claim(
        "optimized TEPS rises through 8 nodes",
        "monotone 1..8",
        "holds"
        if opt[1] < opt[2] < opt[4] < opt[8]
        else "VIOLATED",
    )
    scaling_8_16 = opt[16] / opt[8]
    res.add_claim(
        "8 -> 16 nodes scaling dented by the weak node",
        "inferior scalability at 16 nodes",
        f"{scaling_8_16:.2f}x (vs {opt[8]/opt[4]:.2f}x for 4 -> 8)",
    )
    return res
