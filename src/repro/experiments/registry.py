"""Registry mapping experiment ids to their runner modules."""

from __future__ import annotations

from repro.experiments import (
    ext_modern,
    fig03_numa_speedup,
    fig04_network_bw,
    fig06_leader_allgather,
    fig09_overview,
    fig10_binding,
    fig11_breakdown,
    fig12_comm_weak_scaling,
    fig13_comm_reduction,
    fig14_comm_proportion,
    fig15_weak_scalability,
    fig16_granularity,
    table1_config,
    text_claims,
)
from repro.experiments.common import ExperimentResult, ExperimentSettings

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

_MODULES = (
    table1_config,
    fig03_numa_speedup,
    fig04_network_bw,
    fig06_leader_allgather,
    fig09_overview,
    fig10_binding,
    fig11_breakdown,
    fig12_comm_weak_scaling,
    fig13_comm_reduction,
    fig14_comm_proportion,
    fig15_weak_scalability,
    fig16_granularity,
    text_claims,
    ext_modern,
)

EXPERIMENTS = {mod.EXPERIMENT_ID: mod for mod in _MODULES}


def get_experiment(experiment_id: str):
    """The runner module for an experiment id (``fig09``, ``table1``...)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, settings: ExperimentSettings | None = None
) -> ExperimentResult:
    """Run one experiment and return its result table."""
    return get_experiment(experiment_id).run(settings)
