"""Registry mapping experiment ids to their runner modules."""

from __future__ import annotations

import time

from repro.experiments import (
    ext_modern,
    fig03_numa_speedup,
    fig04_network_bw,
    fig06_leader_allgather,
    fig09_overview,
    fig10_binding,
    fig11_breakdown,
    fig12_comm_weak_scaling,
    fig13_comm_reduction,
    fig14_comm_proportion,
    fig15_weak_scalability,
    fig16_granularity,
    table1_config,
    text_claims,
)
from repro.experiments.common import ExperimentResult, ExperimentSettings

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "reference_engine",
    "run_experiment",
    "traced_reference_run",
]

_MODULES = (
    table1_config,
    fig03_numa_speedup,
    fig04_network_bw,
    fig06_leader_allgather,
    fig09_overview,
    fig10_binding,
    fig11_breakdown,
    fig12_comm_weak_scaling,
    fig13_comm_reduction,
    fig14_comm_proportion,
    fig15_weak_scalability,
    fig16_granularity,
    text_claims,
    ext_modern,
)

EXPERIMENTS = {mod.EXPERIMENT_ID: mod for mod in _MODULES}


def get_experiment(experiment_id: str):
    """The runner module for an experiment id (``fig09``, ``table1``...)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, settings: ExperimentSettings | None = None
) -> ExperimentResult:
    """Run one experiment and return its result table.

    Every run records its wall-clock seconds into the process-wide
    metrics registry (``experiment.wall_seconds{experiment=...}``) —
    the source of the CLI's end-of-run summary and of the telemetry
    block the benchmark harness attaches to ``BENCH_*.json``.
    """
    from repro.obs.metrics import default_registry

    module = get_experiment(experiment_id)
    registry = default_registry()
    start = time.perf_counter()
    result = module.run(settings)
    elapsed = time.perf_counter() - start
    registry.histogram(
        "experiment.wall_seconds", experiment=experiment_id
    ).observe(elapsed)
    registry.counter(
        "experiment.runs_total", experiment=experiment_id
    ).inc()
    return result


def reference_engine(
    experiment_id: str,
    settings: ExperimentSettings | None = None,
    tracer=None,
    metrics=None,
    hostprof=None,
):
    """The engine + root for an experiment's reference BFS run.

    Builds the graph and cluster the experiment's weak-scaling point
    implies (its ``NODES`` attribute, default 2, at the settings'
    measured scale) configured with the paper's full optimization stack.
    Returns ``(engine, root)`` so callers that need the machine model
    after the run (``repro-perf drift`` re-prices the recorded counts on
    it) can keep the engine.
    """
    import numpy as np

    from repro.core.config import BFSConfig
    from repro.core.engine import BFSEngine
    from repro.experiments.common import (
        cached_rmat_graph,
        cluster_for,
        paper_scale_for_nodes,
    )

    settings = settings or ExperimentSettings()
    nodes = getattr(get_experiment(experiment_id), "NODES", 2)
    if nodes not in (1, 2, 4, 8, 16):
        nodes = 2
    scale = settings.measured_scale(paper_scale_for_nodes(nodes))
    graph = cached_rmat_graph(scale, settings.graph_seed)
    cluster = cluster_for(nodes, settings)
    engine = BFSEngine(
        graph,
        cluster,
        BFSConfig.granularity_variant(),
        tracer=tracer,
        metrics=metrics,
        hostprof=hostprof,
    )
    root = int(np.argmax(graph.degrees()))
    return engine, root


def traced_reference_run(
    experiment_id: str,
    settings: ExperimentSettings | None = None,
    tracer=None,
    metrics=None,
):
    """One fully-instrumented BFS run representative of an experiment.

    Used by ``repro-experiment --trace-out``: executes one traversal of
    the :func:`reference_engine` configuration with the given
    tracer/metrics attached.  Returns the
    :class:`~repro.core.engine.BFSResult`, whose ``telemetry`` feeds the
    Chrome trace / JSONL exporters.
    """
    engine, root = reference_engine(
        experiment_id, settings, tracer=tracer, metrics=metrics
    )
    return engine.run(root)
