"""``repro-experiment`` console entry point.

Usage::

    repro-experiment list
    repro-experiment fig09 [--roots N] [--offset K] [--quick]
    repro-experiment all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce a table/figure of 'Evaluation and Optimization of "
            "Breadth-First Search on NUMA Cluster' (CLUSTER 2012)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig09), 'all', or 'list'",
    )
    parser.add_argument(
        "--roots", type=int, default=3, help="BFS roots per evaluation"
    )
    parser.add_argument(
        "--offset",
        type=int,
        default=15,
        help="functional runs execute at paper_scale - offset",
    )
    parser.add_argument(
        "--seed", type=int, default=4, help="root sampling seed"
    )
    parser.add_argument(
        "--no-weak-node",
        action="store_true",
        help="model all 16 nodes with healthy InfiniBand",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fastest settings (2 roots)"
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the result rows as CSV to PATH "
        "(the experiment id is appended when running several)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        for eid, mod in EXPERIMENTS.items():
            print(f"{eid:12s} {mod.TITLE}")
        return 0
    settings = ExperimentSettings(
        scale_offset=args.offset,
        num_roots=args.roots,
        seed=args.seed,
        include_weak_node=not args.no_weak_node,
    )
    if args.quick:
        settings = settings.quick()
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in ids:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid!r}; try 'list'", file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = run_experiment(eid, settings)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        if args.csv:
            path = args.csv if len(ids) == 1 else f"{args.csv}.{eid}.csv"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.to_csv())
            print(f"[csv written to {path}]")
        print(f"[{eid} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
