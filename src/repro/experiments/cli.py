"""``repro-experiment`` console entry point.

Usage::

    repro-experiment list
    repro-experiment fig09 [--roots N] [--offset K] [--quick]
    repro-experiment fig09 --trace-out /tmp/t.json --metrics-out /tmp/m.json
    repro-experiment fig09 --kernel reference
    repro-experiment all

``--trace-out`` additionally executes one fully-instrumented BFS run
representative of the experiment and writes its simulated timeline as
Chrome trace-event JSON (one track per simulated rank — open it at
https://ui.perfetto.dev), plus a ``<PATH>.events.jsonl`` span/collective
event log next to it.  When several experiments run (``all``), each
experiment writes to its own file, named by
:func:`trace_output_path`: ``PATH.<experiment>.json`` (and
``PATH.<experiment>.json.events.jsonl``) — experiments never clobber
each other's traces.  ``--attribution`` prints the per-level /
whole-run performance attribution (the Fig. 11-style compute/comm
breakdown; see ``repro-perf attribute``) of that same instrumented
run.  ``--metrics-out`` dumps the process-wide metrics registry
(experiment wall-clocks, run counters, communication volumes) as JSON.
``--ledger`` appends one ``repro.run/v1`` record per experiment to the
persistent run ledger (``repro-ledger`` reads it back);
``--host-profile`` / ``--host-profile-out`` report the *host* cost
(per-phase wall seconds, tracemalloc peaks, collapsed stacks) of the
same reference run.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "trace_output_path"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce a table/figure of 'Evaluation and Optimization of "
            "Breadth-First Search on NUMA Cluster' (CLUSTER 2012)"
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="list",
        help="experiment id (e.g. fig09), 'all', or 'list' (the default "
        "— so '--kernel list' works without naming an experiment)",
    )
    parser.add_argument(
        "--roots", type=int, default=3, help="BFS roots per evaluation"
    )
    parser.add_argument(
        "--offset",
        type=int,
        default=15,
        help="functional runs execute at paper_scale - offset",
    )
    parser.add_argument(
        "--seed", type=int, default=4, help="root sampling seed"
    )
    parser.add_argument(
        "--no-weak-node",
        action="store_true",
        help="model all 16 nodes with healthy InfiniBand",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fastest settings (2 roots)"
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the result rows as CSV to PATH "
        "(the experiment id is appended when running several)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="run one instrumented BFS per experiment and write its "
        "simulated timeline as Chrome trace-event JSON to PATH "
        "(Perfetto-loadable; the experiment id is appended when "
        "running several); a .events.jsonl log is written next to it",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="print the per-level / whole-run performance attribution "
        "(compute vs. each communication component, critical rank, "
        "stragglers) of one instrumented reference run per experiment; "
        "shares the run with --trace-out when both are given",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the Graph500 parent-tree validation on one reference "
        "BFS run per experiment (the five checks of repro.core.validate); "
        "shares the run with --trace-out/--attribution when given. "
        "A validation failure exits non-zero with a typed error",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry (wall-clocks, counters, "
        "histograms) as JSON to PATH at exit",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="append one repro.run/v1 record per experiment (headline "
        "metrics + attribution of the instrumented reference run) to "
        "the run ledger at .repro/ledger (or $REPRO_LEDGER_DIR); "
        "shares the run with --trace-out/--attribution/--validate",
    )
    parser.add_argument(
        "--host-profile",
        action="store_true",
        help="profile the *host* cost of the reference run (per-phase "
        "wall seconds + tracemalloc peaks) and print the table; "
        "see docs/OBSERVABILITY.md",
    )
    parser.add_argument(
        "--host-profile-out",
        metavar="PATH",
        help="also write the host profile as JSON to PATH and the "
        "flamegraph-compatible collapsed stacks to PATH.collapsed",
    )
    parser.add_argument(
        "--kernel",
        metavar="BACKEND",
        help="BFS kernel backend for every engine this process builds "
        "(exported as $REPRO_KERNEL; see 'repro-experiment list' docs "
        "and docs/PERFORMANCE.md). Backends are bit-identical on all "
        "reproduced numbers — this only changes speed. Use "
        "'--kernel list' to print every registered backend with its "
        "availability",
    )
    parser.add_argument(
        "--codec",
        metavar="CODEC",
        help="frontier codec for every allgather this process simulates "
        "(exported as $REPRO_CODEC; see docs/COMMUNICATION.md). Codecs "
        "are lossless — functional results are bit-identical to raw; "
        "only the simulated wire bytes and communication time change",
    )
    return parser


def trace_output_path(path: str, eid: str, many: bool) -> str:
    """Where ``--trace-out PATH`` writes experiment ``eid``'s trace.

    A single experiment writes to ``PATH`` verbatim; when several run
    (``repro-experiment all``) each gets ``PATH.<experiment>.json`` so
    no experiment clobbers another's trace.  The JSONL event log always
    lands next to the trace as ``<trace>.events.jsonl``.
    """
    return path if not many else f"{path}.{eid}.json"


def _reference_run(
    eid: str, settings, registry, instrumented: bool, hostprof=None
):
    """One reference BFS run for ``eid`` (traced when ``instrumented``).

    Returns ``(engine, root, result)`` so callers can validate the
    parent tree against the engine's graph as well as export the trace.
    """
    from repro.experiments.registry import reference_engine

    tracer = None
    if instrumented:
        from repro.obs.tracer import SpanTracer

        tracer = SpanTracer(metrics=registry)
    engine, root = reference_engine(
        eid, settings, tracer=tracer, metrics=registry, hostprof=hostprof
    )
    if hostprof is not None:
        with hostprof:
            result = engine.run(root)
    else:
        result = engine.run(root)
    return engine, root, result


def _write_trace(path: str, result) -> None:
    """Export an instrumented run's trace + event log."""
    from repro.obs.export import write_chrome_trace, write_events_jsonl

    write_chrome_trace(path, result)
    events_path = f"{path}.events.jsonl"
    write_events_jsonl(events_path, result.telemetry)
    print(
        f"[trace written to {path} ({result.counts.num_ranks} rank tracks, "
        f"{result.levels} levels); events to {events_path}]"
    )


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.kernel:
        import os

        from repro.core.kernels import DEFAULT_BACKEND, available_backends

        if args.kernel == "list":
            detail = available_backends(detail=True)
            width = max(len(name) for name in detail)
            print(f"{'backend':<{width}}  available  note")
            for name, (ok, reason) in detail.items():
                note = "default" if name == DEFAULT_BACKEND else (reason or "")
                row = f"{name:<{width}}  {'yes' if ok else 'no':<9}  {note}"
                print(row.rstrip())
            return 0
        if args.kernel not in available_backends():
            print(
                f"unknown kernel backend {args.kernel!r}; available: "
                f"{', '.join(available_backends())} "
                f"(or '--kernel list' for availability)",
                file=sys.stderr,
            )
            return 2
        os.environ["REPRO_KERNEL"] = args.kernel
    if args.codec:
        import os

        from repro.mpi.codecs import available_codecs

        if args.codec not in available_codecs():
            print(
                f"unknown frontier codec {args.codec!r}; available: "
                f"{', '.join(available_codecs())}",
                file=sys.stderr,
            )
            return 2
        os.environ["REPRO_CODEC"] = args.codec
    if args.experiment == "list":
        for eid, mod in EXPERIMENTS.items():
            print(f"{eid:12s} {mod.TITLE}")
        return 0
    settings = ExperimentSettings(
        scale_offset=args.offset,
        num_roots=args.roots,
        seed=args.seed,
        include_weak_node=not args.no_weak_node,
    )
    if args.quick:
        settings = settings.quick()

    from repro.obs.metrics import default_registry

    registry = default_registry()
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    many = len(ids) > 1
    for eid in ids:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid!r}; try 'list'", file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = run_experiment(eid, settings)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        if args.csv:
            path = args.csv if not many else f"{args.csv}.{eid}.csv"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.to_csv())
            print(f"[csv written to {path}]")
        want_hostprof = bool(args.host_profile or args.host_profile_out)
        if (
            args.trace_out
            or args.attribution
            or args.validate
            or args.ledger
            or want_hostprof
        ):
            hostprof = None
            if want_hostprof:
                from repro.obs.hostprof import HostProfiler

                hostprof = HostProfiler()
            engine, ref_root, traced = _reference_run(
                eid, settings, registry,
                instrumented=bool(
                    args.trace_out or args.attribution or args.ledger
                ),
                hostprof=hostprof,
            )
            if args.trace_out:
                _write_trace(trace_output_path(args.trace_out, eid, many), traced)
            if args.attribution:
                print(traced.telemetry.attribution.to_text())
            if hostprof is not None:
                _report_host_profile(hostprof, args.host_profile_out, eid, many)
            if args.ledger:
                from repro.obs.ledger import default_ledger, record_for_result

                ledger = default_ledger()
                record = record_for_result(
                    "experiment", eid, traced, engine,
                    extra_metrics={"experiment_wall_seconds": elapsed},
                )
                ledger.append(record)
                print(
                    f"[ledger: appended {record.kind}/{record.name} "
                    f"@{record.fingerprint} to {ledger.path}]"
                )
            if args.validate:
                import json

                from repro.core.validate import validate_parent_tree
                from repro.errors import ValidationError

                try:
                    validate_parent_tree(engine.graph, ref_root, traced.parent)
                except ValidationError as exc:
                    print(
                        f"[validation FAILED for {eid}: "
                        f"{json.dumps(exc.to_dict(), sort_keys=True)}]",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"[validated: reference-run parent tree passes the "
                    f"Graph500 checks ({traced.visited} vertices reached, "
                    f"{traced.levels} levels)]"
                )
        print(f"[{eid} completed in {elapsed:.1f}s]")
        print()

    if many:
        _print_wall_clock_summary(registry, ids)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(registry.to_json())
        print(f"[metrics written to {args.metrics_out}]")
    return 0


def _report_host_profile(hostprof, out: str | None, eid: str, many: bool) -> None:
    """Print (and optionally export) one reference run's host profile."""
    profile = hostprof.report()
    print(profile.to_text())
    if out:
        import json

        path = out if not many else f"{out}.{eid}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(profile.as_dict(), fh, indent=2, sort_keys=True)
        collapsed_path = f"{path}.collapsed"
        hostprof.write_collapsed(collapsed_path)
        print(
            f"[host profile written to {path}; collapsed stacks to "
            f"{collapsed_path} (flamegraph.pl / speedscope.app)]"
        )


def _print_wall_clock_summary(registry, ids: list[str]) -> None:
    """Per-experiment wall-clock lines, sourced from the metrics
    registry's ``experiment.wall_seconds`` histograms."""
    snapshot = registry.as_dict()["histograms"]
    total = 0.0
    print("wall-clock summary:")
    for eid in ids:
        summ = snapshot.get(
            f"experiment.wall_seconds{{experiment={eid}}}"
        )
        if summ is None:
            continue
        total += summ["sum"]
        print(
            f"  {eid:12s} {summ['sum']:7.1f}s"
            + (f"  ({summ['count']} runs)" if summ["count"] > 1 else "")
        )
    print(f"  {'total':12s} {total:7.1f}s")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
