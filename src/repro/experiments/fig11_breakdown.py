"""Fig. 11 — execution-time breakdown and computation speedups (1 node).

The per-phase profile of the "Original" implementation at scale 28 under
the two interesting policies: binding speeds up both computation phases;
the paper reports a 1.58x bottom-up computation speedup attributable
purely to the removal of remote memory accesses.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
)
from repro.mpi.mapping import BindingPolicy

EXPERIMENT_ID = "fig11"
TITLE = "Fig. 11: time breakdown on one node (scale 28)"
NODES = 1


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 11 (per-phase time breakdown)."""
    settings = settings or ExperimentSettings()
    cases = {
        "ppn=1.interleave": BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
        "ppn=8.bind-to-socket": BFSConfig(),
    }
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "policy",
            "top-down comp [ms]",
            "top-down comm [ms]",
            "bottom-up comp [ms]",
            "bottom-up comm [ms]",
            "switch [ms]",
            "stall [ms]",
            "total [ms]",
        ],
    )
    breakdowns = {}
    for name, cfg in cases.items():
        pred = evaluate_variant(NODES, cfg, settings)
        bd = pred.mean_breakdown()
        breakdowns[name] = bd
        res.rows.append(
            [
                name,
                bd.td_compute / 1e6,
                bd.td_comm / 1e6,
                bd.bu_compute / 1e6,
                bd.bu_comm / 1e6,
                bd.switch / 1e6,
                bd.stall / 1e6,
                bd.total / 1e6,
            ]
        )
    interleave = breakdowns["ppn=1.interleave"]
    bind = breakdowns["ppn=8.bind-to-socket"]
    res.add_claim(
        "bottom-up computation speedup from binding",
        "1.58x",
        f"{interleave.bu_compute / bind.bu_compute:.2f}x",
    )
    res.add_claim(
        "top-down computation speedup from binding",
        "speeds up (Fig. 11 bars)",
        f"{interleave.td_compute / bind.td_compute:.2f}x",
    )
    res.add_claim(
        "communication proportion on one node (ppn=8)",
        "~12%",
        f"{bind.comm_fraction * 100:.0f}%",
    )
    return res
