"""EXPERIMENTS.md generator.

Runs the complete experiment registry and renders a markdown report with
one section per table/figure: the reproduced rows and the
paper-vs-measured claim list.  ``python -m repro.experiments.report``
regenerates the repository's EXPERIMENTS.md.
"""

from __future__ import annotations

import datetime
import platform
import sys
import time
from pathlib import Path

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["render_markdown", "generate_report"]

_PREAMBLE = """\
# EXPERIMENTS — paper vs. reproduction

Reproduction of every table and figure in the evaluation of *Evaluation
and Optimization of Breadth-First Search on NUMA Cluster* (Cui et al.,
IEEE CLUSTER 2012).  This file is **generated** by
`python -m repro.experiments.report`; the numbers below come from the
machine-model simulation described in DESIGN.md (the paper's 1024-core
NUMA testbed is the one dependency we cannot run).

Reading guide:

* Absolute numbers are *simulated* — the model is calibrated against the
  hardware facts of Table I plus published Nehalem-EX measurements, so
  they land in the paper's bands but are not measurements of the
  original testbed.
* The reproduction criterion (DESIGN.md §4) is **shape**: who wins, by
  roughly what factor, where the crossovers and peaks fall.
* Functional BFS runs execute at `paper scale - offset` and are
  re-priced at the paper's scale (count extrapolation); the granularity
  figure uses the analytic level-profile mode.  Both modes are
  cross-validated in `benchmarks/bench_ablation.py`.
"""


def _result_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "---|" * len(result.headers))
    for row in result.rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    for chart in result.charts:
        lines.append("")
        lines.append("```")
        lines.append(chart)
        lines.append("```")
    if result.claims:
        lines.append("")
        lines.append("| claim | paper | measured |")
        lines.append("|---|---|---|")
        for name, (paper, measured) in result.claims.items():
            lines.append(f"| {name} | {paper} | {measured} |")
    for note in result.notes:
        lines.append("")
        lines.append(f"*Note: {note}*")
    lines.append("")
    return "\n".join(lines)


#: Experiments whose section can carry a trace-derived attribution
#: appendix: the paper's breakdown figures.
ATTRIBUTION_EXPERIMENTS = ("fig11", "fig12", "fig14")


def _attribution_markdown(eid: str, settings: ExperimentSettings) -> str:
    """A fenced attribution block from one instrumented reference run."""
    from repro.experiments.registry import traced_reference_run
    from repro.obs.tracer import SpanTracer

    result = traced_reference_run(eid, settings, tracer=SpanTracer())
    return "\n".join(
        [
            "### Trace attribution (instrumented reference run)",
            "",
            "```",
            result.telemetry.attribution.to_text(),
            "```",
            "",
        ]
    )


def render_markdown(
    results: dict[str, ExperimentResult],
    settings: ExperimentSettings,
    elapsed_s: float,
    attribution: bool = False,
) -> str:
    """Render all experiment results as the EXPERIMENTS.md document.

    ``attribution=True`` appends a trace-derived breakdown section to
    the paper's breakdown figures (fig11/fig12/fig14); off by default so
    the committed EXPERIMENTS.md stays byte-stable across this option.
    """
    parts = [_PREAMBLE]
    parts.append(
        f"Generated {datetime.date.today().isoformat()} on Python "
        f"{platform.python_version()} "
        f"(settings: scale offset {settings.scale_offset}, "
        f"{settings.num_roots} roots per evaluation, "
        f"weak 16th node {'on' if settings.include_weak_node else 'off'}; "
        f"total runtime {elapsed_s:.0f} s).\n"
    )
    for eid in EXPERIMENTS:
        parts.append(_result_markdown(results[eid]))
        if attribution and eid in ATTRIBUTION_EXPERIMENTS:
            parts.append(_attribution_markdown(eid, settings))
    return "\n".join(parts)


def generate_report(
    path: str | Path = "EXPERIMENTS.md",
    settings: ExperimentSettings | None = None,
    attribution: bool = False,
) -> Path:
    """Run every experiment and write the markdown report to ``path``."""
    settings = settings or ExperimentSettings()
    start = time.perf_counter()
    results = {}
    from repro.obs.log import get_logger

    log = get_logger("experiments.report")
    for eid in EXPERIMENTS:
        log.info("running %s", eid)
        results[eid] = run_experiment(eid, settings)
    elapsed = time.perf_counter() - start
    text = render_markdown(results, settings, elapsed, attribution=attribution)
    out = Path(path)
    out.write_text(text, encoding="utf-8")
    log.info("wrote %s (%.0f s)", out, elapsed)
    return out


if __name__ == "__main__":  # pragma: no cover
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate_report(target)
