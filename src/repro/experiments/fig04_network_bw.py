"""Fig. 4 — inter-node bandwidth vs processes per node.

The OSU-style measurement the paper uses to motivate the parallel
allgather: one process per node drives only about half of the dual-port
InfiniBand peak; eight concurrent processes saturate it.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.machine.network import NetworkModel
from repro.machine.spec import paper_cluster
from repro.util.formatting import format_si

EXPERIMENT_ID = "fig04"
TITLE = "Fig. 4: bandwidth between two nodes vs processes per node"

MESSAGE_BYTES = 4 << 20  # large messages, as in the OSU bandwidth test


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 4 (node bandwidth vs processes per node)."""
    cluster = paper_cluster(nodes=2)
    net = NetworkModel(cluster)
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["ppn", "aggregate bandwidth", "fraction of peak"],
    )
    peak = net.osu_bandwidth(8, MESSAGE_BYTES)
    for ppn in (1, 2, 4, 8):
        bw = net.osu_bandwidth(ppn, MESSAGE_BYTES)
        res.rows.append([ppn, format_si(bw, "B/s"), bw / peak])

    # OSU-style message-size sweep (small messages are latency-bound).
    sweep_rows = []
    for size_kb in (1, 16, 256, 4096):
        row = [f"{size_kb} KiB"]
        for ppn in (1, 8):
            bw = net.osu_bandwidth(ppn, size_kb * 1024)
            row.append(format_si(bw, "B/s"))
        sweep_rows.append(row)
    from repro.util.formatting import format_table

    res.notes.append(
        "message-size sweep (aggregate bandwidth): "
        + "; ".join(
            f"{r[0]}: 1ppn {r[1]}, 8ppn {r[2]}" for r in sweep_rows
        )
    )
    one = net.osu_bandwidth(1, MESSAGE_BYTES)
    res.add_claim(
        "1 ppn reaches about half of peak",
        "~0.5",
        f"{one / peak:.2f}",
    )
    res.add_claim(
        "8 ppn saturates both IB ports",
        "highest bandwidth at 8 ppn",
        f"{format_si(peak, 'B/s')} at 8 ppn (monotone in ppn)",
    )
    return res
