"""Extension experiment: do the paper's optimizations still matter on
modern hardware?

The paper's levers are all NUMA- and network-shape dependent: sharing
pays off when intra-node copies are expensive relative to the wire, and
the parallel allgather pays off when one process cannot saturate the
NICs.  This experiment reruns the optimization stack on a loosely
EPYC-generation cluster (fast fabric, huge caches, hugepages, HDR-class
network) and compares the gain structure with the X7550 platform.
Expected shape: the *NUMA mapping* lever shrinks but survives; the
*sharing* levers shrink drastically; the algorithmic lever (hybrid
direction switching) is timeless.
"""

from __future__ import annotations

from repro.core.config import BFSConfig, CommConfig, TraversalMode
from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.machine.presets import modern_cluster
from repro.machine.spec import paper_cluster
from repro.model.analytic import analytic_graph500

EXPERIMENT_ID = "ext_modern"
TITLE = "Extension: the optimization stack on 2012 vs modern hardware"
SCALE = 32
NODES = 16


def _stack(cluster, ppn_full: int) -> dict[str, float]:
    return {
        "ppn=1": analytic_graph500(
            cluster, BFSConfig.original_ppn1(), SCALE
        ).teps,
        "bound ppn": analytic_graph500(
            cluster, BFSConfig(ppn=ppn_full), SCALE
        ).teps,
        "full stack": analytic_graph500(
            cluster,
            BFSConfig(
                ppn=ppn_full,
                comm=CommConfig.parallel(summary_granularity=256),
            ),
            SCALE,
        ).teps,
        "pure top-down": analytic_graph500(
            cluster, BFSConfig(ppn=ppn_full, mode=TraversalMode.TOP_DOWN),
            SCALE,
        ).teps,
    }


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Run the modern-hardware extension experiment."""
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "platform",
            "ppn=1 [GTEPS]",
            "bound ppn [GTEPS]",
            "full stack [GTEPS]",
            "NUMA gain",
            "comm-opt gain",
            "hybrid vs top-down",
        ],
    )
    platforms = {
        "16x 8-socket X7550 (the paper)": (paper_cluster(nodes=NODES), 8),
        "16x modern dual-socket": (modern_cluster(nodes=NODES), 2),
    }
    gains = {}
    for name, (cluster, ppn) in platforms.items():
        teps = _stack(cluster, ppn)
        numa_gain = teps["bound ppn"] / teps["ppn=1"]
        comm_gain = teps["full stack"] / teps["bound ppn"]
        hybrid_gain = teps["full stack"] / teps["pure top-down"]
        gains[name] = (numa_gain, comm_gain)
        res.rows.append(
            [
                name,
                teps["ppn=1"] / 1e9,
                teps["bound ppn"] / 1e9,
                teps["full stack"] / 1e9,
                f"{numa_gain:.2f}x",
                f"{comm_gain:.2f}x",
                f"{hybrid_gain:.1f}x",
            ]
        )
    old = gains["16x 8-socket X7550 (the paper)"]
    new = gains["16x modern dual-socket"]
    res.add_claim(
        "NUMA + comm levers shrink on modern fabric",
        "platform-dependent levers",
        f"NUMA {old[0]:.2f}x -> {new[0]:.2f}x, "
        f"comm-opt {old[1]:.2f}x -> {new[1]:.2f}x "
        f"({'holds' if old[0] * old[1] > new[0] * new[1] else 'VIOLATED'})",
    )
    res.add_claim(
        "the hybrid algorithm's advantage is timeless",
        "direction switching always wins",
        "holds (see last column)",
    )
    res.notes.append(
        "extension beyond the paper; modern platform numbers use the "
        "loosely-EPYC preset in repro/machine/presets.py"
    )
    return res
