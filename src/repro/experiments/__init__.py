"""One experiment module per table/figure of the paper's evaluation.

Each experiment exposes ``run(settings) -> ExperimentResult`` producing
the same rows/series the paper reports, plus the qualitative claims the
reproduction is held to (DESIGN.md §4).  ``repro.experiments.registry``
maps experiment ids (``fig09``, ``table1``, ...) to their runners;
``benchmarks/`` wraps each in a pytest-benchmark harness and the
``repro-experiment`` console script runs them standalone.
"""

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
