"""Fig. 13 — reduction of the average bottom-up communication phase by
the communication optimizations (1 -> 16 nodes).

Every added optimization must cut the absolute communication time;
"Share in_queue" is the largest single cut (~half), and the total
reduction at 8 nodes is ~4.07x.  The 16-node column includes the paper's
one weak-IB node, which is why the paper declares it less meaningful.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import BFSConfig, CommConfig, TraversalMode
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
    paper_scale_for_nodes,
)

EXPERIMENT_ID = "fig13"
TITLE = "Fig. 13: bottom-up communication phase time per optimization"
NODE_COUNTS = (1, 2, 4, 8, 16)

VARIANTS = {
    "Original.ppn=8": BFSConfig.original_ppn8(),
    "Share in_queue": BFSConfig.share_in_queue_variant(),
    "Share all": BFSConfig.share_all_variant(),
    "Par allgather": BFSConfig.par_allgather_variant(),
}


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 13 (comm reduction per optimization)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["nodes", "scale"] + [f"{v} [ms]" for v in VARIANTS],
    )
    table: dict[int, dict[str, float]] = {}
    for nodes in NODE_COUNTS:
        row: dict[str, float] = {}
        for name, cfg in VARIANTS.items():
            pred = evaluate_variant(nodes, cfg, settings)
            row[name] = pred.mean_bu_comm_per_level()
        table[nodes] = row
        res.rows.append(
            [nodes, paper_scale_for_nodes(nodes)]
            + [row[name] / 1e6 for name in VARIANTS]
        )

    at8 = table[8]
    res.add_claim(
        "total communication reduction at 8 nodes",
        "4.07x",
        f"{at8['Original.ppn=8'] / at8['Par allgather']:.2f}x",
    )
    res.add_claim(
        "Share in_queue cuts about half",
        "~2x",
        f"{at8['Original.ppn=8'] / at8['Share in_queue']:.2f}x",
    )
    ordered = all(
        at8[a] > at8[b]
        for a, b in zip(list(VARIANTS), list(VARIANTS)[1:])
    )
    res.add_claim(
        "each optimization reduces comm time (8 nodes)",
        "monotone",
        "holds" if ordered else "VIOLATED",
    )

    # PR-3 layer: the frontier codec's wire-byte cut on top of the full
    # paper stack at 16 nodes.  Measured on the paper's all-bottom-up
    # traversal (every level performs the two allgathers, which is why
    # Fig. 12 shows them dominating); the hybrid extension already skips
    # the sparse levels where compression pays.
    codec_wire = {}
    for codec in ("raw", "auto"):
        cfg = replace(
            BFSConfig.par_allgather_variant(),
            mode=TraversalMode.BOTTOM_UP,
            comm=CommConfig.parallel(codec=codec),
        )
        pred = evaluate_variant(16, cfg, settings)
        codec_wire[codec] = pred.mean_allgather_bytes()["wire"]
    reduction = 1.0 - codec_wire["auto"] / max(codec_wire["raw"], 1.0)
    res.add_claim(
        "frontier codec 'auto' allgather wire-byte cut (16 nodes, "
        "bottom-up traversal)",
        ">=30% (Lv et al. compression+sieve)",
        f"{reduction * 100:.0f}%",
    )
    res.notes.append(
        "codec rows use the all-bottom-up traversal; see "
        "docs/COMMUNICATION.md"
    )
    return res
