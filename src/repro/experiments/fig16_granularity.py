"""Fig. 16 — performance vs summary-bitmap granularity (16 nodes,
scale 32).

Uses the analytic level-profile mode: the granularity trade-off operates
at frontier densities (~0.1-1%) that exist in a scale-32 ramp but not in
a laptop-scale one (see :mod:`repro.model.levelprofile`).  The expected
shape is an interior maximum — the paper finds granularity 256 best
(+10.2% over 64) with performance dropping back below the baseline for
very coarse blocks.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    cluster_for,
)
from repro.model.analytic import analytic_graph500

EXPERIMENT_ID = "fig16"
TITLE = "Fig. 16: granularity of in_queue_summary (16 nodes, scale 32)"
GRANULARITIES = (64, 128, 256, 512, 1024, 2048, 4096)
NODES = 16
SCALE = 32


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 16 (summary granularity sweep)."""
    settings = settings or ExperimentSettings()
    cluster = cluster_for(NODES, settings)
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["granularity", "GTEPS", "relative to g=64"],
    )
    teps = {}
    for g in GRANULARITIES:
        r = analytic_graph500(cluster, BFSConfig.granularity_variant(g), SCALE)
        teps[g] = r.teps
    for g in GRANULARITIES:
        res.rows.append([g, teps[g] / 1e9, teps[g] / teps[64]])
    from repro.util import bar_chart

    res.charts.append(
        bar_chart(
            [str(g) for g in GRANULARITIES],
            [teps[g] / 1e9 for g in GRANULARITIES],
            unit="GTEPS",
            title="Fig. 16 shape:",
        )
    )

    best = max(teps, key=teps.get)
    res.add_claim("best granularity", "256", str(best))
    res.add_claim(
        "gain of best granularity over 64",
        "+10.2%",
        f"+{(teps[best] / teps[64] - 1) * 100:.1f}%",
    )
    res.add_claim(
        "very coarse granularity hurts",
        "large g below g=64",
        f"g=4096 at {teps[4096] / teps[64]:.2f}x of g=64 "
        f"({'holds' if teps[4096] < teps[64] else 'VIOLATED'})",
    )
    interior = best not in (GRANULARITIES[0], GRANULARITIES[-1])
    res.add_claim(
        "interior maximum",
        "peak between 64 and 4096",
        "holds" if interior else "VIOLATED",
    )
    return res
