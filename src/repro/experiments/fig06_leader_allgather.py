"""Fig. 6 — default vs leader-based allgather, 64/512 MB on 128 ranks.

Reproduces the measurement motivating the sharing optimization: with one
process per socket, the *intra-node* steps of a leader-based allgather
(gather + broadcast) cost more than the inter-node step, so overlap alone
cannot hide them — only sharing can remove them (Section III.A).
Payloads are exactly the size of ``in_queue`` at scales 29 and 32.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.machine.spec import MB, paper_cluster
from repro.mpi.collectives import AllgatherAlgorithm, allgather_time
from repro.mpi.mapping import ProcessMapping
from repro.mpi.simcomm import SimComm
from repro.util.formatting import format_time_ns

EXPERIMENT_ID = "fig06"
TITLE = "Fig. 6: default vs leader-based allgather (16 nodes x 8 ppn)"

PAYLOADS = {"64 MB (scale 29)": 64 * MB, "512 MB (scale 32)": 512 * MB}


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 6 (default vs leader-based allgather)."""
    cluster = paper_cluster(nodes=16)
    mapping = ProcessMapping(cluster, ppn=8)
    comm = SimComm(cluster, mapping)
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "payload",
            "algorithm",
            "step1 gather",
            "step2 inter",
            "step3 bcast",
            "total",
            "normalized to default",
        ],
    )
    intra_vs_inter = {}
    for name, total_bytes in PAYLOADS.items():
        part = total_bytes / comm.num_ranks
        t_default, _ = allgather_time(
            comm, AllgatherAlgorithm.DEFAULT, part, total_bytes
        )
        t_leader, steps = allgather_time(
            comm, AllgatherAlgorithm.LEADER, part, total_bytes
        )
        res.rows.append(
            [name, "Open MPI default (ring)", "-", "-", "-",
             format_time_ns(t_default), 1.0]
        )
        res.rows.append(
            [
                name,
                "leader-based",
                format_time_ns(steps["intra_gather"]),
                format_time_ns(steps["inter"]),
                format_time_ns(steps["intra_bcast"]),
                format_time_ns(t_leader),
                t_leader / t_default,
            ]
        )
        intra_vs_inter[name] = (
            steps["intra_gather"] + steps["intra_bcast"],
            steps["inter"],
        )
    for name, (intra, inter) in intra_vs_inter.items():
        res.add_claim(
            f"intra-node dominates inter-node ({name})",
            "intra > inter",
            f"intra {format_time_ns(intra)} vs inter {format_time_ns(inter)}"
            f" ({'holds' if intra > inter else 'VIOLATED'})",
        )

    # The paper's overlap argument: "even the best way to overlap intra-
    # and inter-node communication cannot hide the extra intra-node cost"
    # — a perfectly-overlapped leader scheme still loses to sharing.
    part = 512 * MB / comm.num_ranks
    t_overlap, _ = allgather_time(
        comm, AllgatherAlgorithm.LEADER_OVERLAPPED, part, 512 * MB
    )
    t_shared, _ = allgather_time(
        comm, AllgatherAlgorithm.SHARED_IN, part, 512 * MB
    )
    res.add_claim(
        "perfect overlap cannot match sharing (512 MB)",
        "overlapping will not help",
        f"overlapped {format_time_ns(t_overlap)} vs shared "
        f"{format_time_ns(t_shared)} "
        f"({'holds' if t_overlap > t_shared else 'VIOLATED'})",
    )
    return res
