"""Fig. 12 — communication cost of the "Original" implementation under
weak scaling (1 -> 8 nodes, scales 28 -> 31).

Two series of bars (absolute time of one bottom-up communication phase
for ``ppn=1.interleave`` and ``ppn=8.bind``) plus the proportion curve
for ``ppn=8``: the cost grows exponentially with weak scaling, ppn=8
costs ~2.34x more than ppn=1 at 8 nodes, and the proportion reaches ~54%.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    evaluate_variant,
    paper_scale_for_nodes,
)
from repro.mpi.mapping import BindingPolicy

EXPERIMENT_ID = "fig12"
TITLE = "Fig. 12: communication cost under weak scaling (Original)"
NODE_COUNTS = (1, 2, 4, 8)


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce Fig. 12 (communication cost under weak scaling)."""
    settings = settings or ExperimentSettings()
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "nodes",
            "scale",
            "ppn=1 comm/phase [ms]",
            "ppn=8 comm/phase [ms]",
            "ppn8/ppn1",
            "ppn=8 comm proportion",
            "allgather raw [MB]",
            "allgather wire [MB]",
        ],
    )
    ratios = {}
    proportions = {}
    for nodes in NODE_COUNTS:
        ppn1 = evaluate_variant(
            nodes,
            BFSConfig(ppn=1, binding=BindingPolicy.INTERLEAVE),
            settings,
        )
        ppn8 = evaluate_variant(nodes, BFSConfig(), settings)
        c1 = ppn1.mean_bu_comm_per_level()
        c8 = ppn8.mean_bu_comm_per_level()
        prop = ppn8.mean_breakdown().comm_fraction
        ratios[nodes] = c8 / c1 if c1 else float("inf")
        proportions[nodes] = prop
        agb = ppn8.mean_allgather_bytes()
        res.rows.append(
            [
                nodes,
                paper_scale_for_nodes(nodes),
                c1 / 1e6,
                c8 / 1e6,
                ratios[nodes],
                f"{prop * 100:.0f}%",
                agb["raw"] / 1e6,
                agb["wire"] / 1e6,
            ]
        )
    res.add_claim(
        "ppn=8 comm vs ppn=1 comm at 8 nodes",
        "2.34x",
        f"{ratios[8]:.2f}x",
    )
    res.add_claim(
        "comm proportion growth (1 -> 8 nodes)",
        "12% -> 54%",
        f"{proportions[1] * 100:.0f}% -> {proportions[8] * 100:.0f}%",
    )
    monotone = all(
        proportions[a] <= proportions[b] + 1e-9
        for a, b in zip(NODE_COUNTS, NODE_COUNTS[1:])
    )
    res.add_claim(
        "proportion grows with node count",
        "monotone",
        "holds" if monotone else "VIOLATED",
    )
    return res
