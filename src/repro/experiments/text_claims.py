"""Section II.A text claim — the hybrid algorithm against its pure
parents on one 64-core node.

"the *hybrid* approach is 27.3 times faster than the top-down approach
and 4.7 times faster than the bottom-up approach" (scale 28, Graph500
method).  Evaluated in the analytic mode: pure top-down pays the full
edge mass of every level plus the pair exchange; pure bottom-up pays the
giant unvisited scans of the early, near-empty-frontier levels."""

from __future__ import annotations

from repro.core.config import BFSConfig, TraversalMode
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    cluster_for,
)
from repro.model.analytic import analytic_graph500

EXPERIMENT_ID = "text_hybrid"
TITLE = "Text II.A: hybrid vs pure top-down / bottom-up (1 node, scale 28)"
NODES = 1
SCALE = 28


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Reproduce the Section II.A hybrid-vs-pure speedup claims."""
    settings = settings or ExperimentSettings()
    cluster = cluster_for(NODES, settings)
    res = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["algorithm", "time [s]", "GTEPS", "hybrid speedup over it"],
    )
    results = {
        "hybrid": analytic_graph500(
            cluster, BFSConfig.original_ppn8(), SCALE
        ),
        "pure top-down": analytic_graph500(
            cluster, BFSConfig(mode=TraversalMode.TOP_DOWN), SCALE
        ),
        "pure bottom-up": analytic_graph500(
            cluster, BFSConfig(mode=TraversalMode.BOTTOM_UP), SCALE
        ),
    }
    hybrid_s = results["hybrid"].seconds
    for name, r in results.items():
        res.rows.append(
            [name, r.seconds, r.teps / 1e9, r.seconds / hybrid_s]
        )
    res.add_claim(
        "hybrid vs pure top-down",
        "27.3x",
        f"{results['pure top-down'].seconds / hybrid_s:.1f}x",
    )
    res.add_claim(
        "hybrid vs pure bottom-up",
        "4.7x",
        f"{results['pure bottom-up'].seconds / hybrid_s:.1f}x",
    )
    return res
