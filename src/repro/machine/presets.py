"""Additional hardware presets beyond the paper's platform.

The machine model is parameterized, so other 2010s-era (and later)
cluster designs are one constructor away.  These presets back the
design-space example and the sensitivity tooling; their numbers are
round, documented approximations — the point is *relative* behaviour
under the same BFS workload, not microarchitectural fidelity.
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.spec import (
    CacheLevel,
    ClusterSpec,
    IbSpec,
    KB,
    MB,
    NodeSpec,
    QpiSpec,
    SocketSpec,
    x7550_socket,
)

__all__ = [
    "commodity_dual_socket_node",
    "commodity_cluster",
    "quad_socket_node",
    "quad_socket_cluster",
    "fat_memory_node",
    "modern_epyc_like_node",
    "modern_cluster",
]


def commodity_dual_socket_node() -> NodeSpec:
    """A 2012-era dual-socket Xeon node (the common cluster brick)."""
    return NodeSpec(
        sockets=2,
        socket=x7550_socket(),
        ib=replace(IbSpec(), ports=1),
        dram_per_socket=16 * 1024 * MB,
    )


def commodity_cluster(nodes: int = 64) -> ClusterSpec:
    """Many thin dual-socket nodes behind single-port InfiniBand."""
    return ClusterSpec(nodes=nodes, node=commodity_dual_socket_node())


def quad_socket_node() -> NodeSpec:
    """A 4-socket NUMA node (the T2K-class machine of the paper's [44])."""
    return NodeSpec(sockets=4, socket=x7550_socket())


def quad_socket_cluster(nodes: int = 32) -> ClusterSpec:
    """Cluster of 4-socket nodes."""
    return ClusterSpec(nodes=nodes, node=quad_socket_node())


def fat_memory_node() -> NodeSpec:
    """The paper's 8-socket node with all DDR3 channels populated
    (double the per-socket bandwidth of Table I's half-populated config)."""
    socket = replace(x7550_socket(), dram_bandwidth=34.2e9)
    return NodeSpec(sockets=8, socket=socket)


def modern_epyc_like_node() -> NodeSpec:
    """A loosely EPYC-generation dual-socket node: far more cores and
    cache, much faster memory and network, lower remote penalties.

    Used to ask "would the paper's optimizations still matter?" — the
    sharing levers shrink as intra-node fabrics improve, while the
    direction-optimized algorithm keeps its advantage.
    """
    socket = SocketSpec(
        cores=64,
        frequency_hz=2.45e9,
        caches=(
            CacheLevel("L1D", 32 * KB, 1.6),
            CacheLevel("L2", 1024 * KB, 4.0),
            CacheLevel("L3", 256 * MB, 12.0, shared=True),
        ),
        dram_latency_ns=95.0,
        dram_bandwidth=200e9,
        mlp=10.0,
        tlb_penalty_ns=25.0,  # hugepages by default
        tlb_coverage_bytes=64 * MB,
    )
    qpi = QpiSpec(
        link_bandwidth=50e9,
        hop_latency_ns=50.0,
        links_per_socket=4,
        congestion_per_socket=0.2,
        shared_congestion=1.1,
    )
    ib = IbSpec(
        ports=2,
        port_bandwidth=25e9,  # HDR-class
        message_latency_ns=900.0,
    )
    return NodeSpec(sockets=2, socket=socket, qpi=qpi, ib=ib,
                    dram_per_socket=512 * 1024 * MB)


def modern_cluster(nodes: int = 16) -> ClusterSpec:
    """Cluster of modern dual-socket nodes."""
    return ClusterSpec(nodes=nodes, node=modern_epyc_like_node())
