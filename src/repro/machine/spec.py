"""Hardware specifications (Table I of the paper) as frozen dataclasses.

Default values describe one node of the paper's "thousand-core" platform:

* eight Intel Xeon X7550 sockets — 8 cores @ 2.0 GHz each, 32 KB private
  L1D, 256 KB private L2, 18 MB shared L3 per socket;
* four 6.4 GT/s QPI links per socket (Fig. 2 topology);
* per-socket memory bandwidth of 17.1 GB/s (only half the raw DDR3
  bandwidth is reachable through the Intel SMB, per Table I footnote);
* two 40 Gb/s InfiniBand ports per node, one 36-port switch.

Latency numbers are not in the paper; they are taken from published
measurements of Nehalem-EX systems (Molka et al., PACT'09, cited by the
paper as [35]) and are documented per field.  All latencies are in
nanoseconds, bandwidths in bytes/second, capacities in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

__all__ = [
    "CacheLevel",
    "SocketSpec",
    "QpiSpec",
    "IbSpec",
    "NodeSpec",
    "ClusterSpec",
    "x7550_socket",
    "x7550_node",
    "paper_cluster",
    "GB",
    "MB",
    "KB",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-chip cache hierarchy."""

    name: str
    capacity_bytes: int
    latency_ns: float
    line_bytes: int = 64
    shared: bool = False  # shared by all cores of the socket (L3)?

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.latency_ns <= 0:
            raise ConfigError(f"cache {self.name}: non-positive capacity/latency")
        if self.line_bytes <= 0:
            raise ConfigError(f"cache {self.name}: non-positive line size")


@dataclass(frozen=True)
class SocketSpec:
    """One CPU socket with its attached local memory."""

    cores: int = 8
    frequency_hz: float = 2.0e9
    caches: tuple[CacheLevel, ...] = ()
    # Local DRAM access latency, including the SMB buffer on this platform.
    dram_latency_ns: float = 220.0
    # Sustainable local memory bandwidth (Table I: 17.1 GB/s per CPU).
    dram_bandwidth: float = 17.1e9
    # Memory-level parallelism: outstanding misses a core keeps in flight
    # during the pointer-heavy BFS inner loop (Nehalem has 10 line-fill
    # buffers; irregular code sustains roughly half).
    mlp: float = 4.0
    # Page-walk penalty added to DRAM accesses into structures too large
    # for the TLB to cover (BFS's random reads into multi-GB graphs and
    # bitmaps miss the TLB almost every time with 4 KB pages).
    tlb_penalty_ns: float = 110.0
    tlb_coverage_bytes: int = 4 * 1024 * 1024
    # Fraction of each cache level one structure can effectively occupy:
    # during BFS the graph stream and the bitmap misses continuously evict
    # everything else, so a structure that nominally "fits" a cache only
    # keeps a slice of it resident.  This is the mechanism behind the
    # paper's granularity optimization (a smaller summary survives cache
    # pressure better, Fig. 16).
    cache_usable_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("socket must have at least one core")
        if self.frequency_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigError("socket frequency/bandwidth must be positive")
        if self.dram_latency_ns <= 0 or self.mlp <= 0:
            raise ConfigError("socket latency/mlp must be positive")
        caps = [c.capacity_bytes for c in self.caches]
        if caps != sorted(caps):
            raise ConfigError("cache levels must be ordered smallest first")

    @property
    def llc(self) -> CacheLevel:
        """Last-level cache."""
        if not self.caches:
            raise ConfigError("socket has no caches")
        return self.caches[-1]


@dataclass(frozen=True)
class QpiSpec:
    """Cross-socket interconnect of one node."""

    # 6.4 GT/s full-width QPI: 12.8 GB/s raw per direction; ~85% payload.
    link_bandwidth: float = 10.8e9
    # Extra latency added per QPI hop on the coherent-read path.
    hop_latency_ns: float = 105.0
    # Links per socket used for coherence traffic (Fig. 2: four QPI per
    # socket, one of which leads to the IOH on commodity boards).
    links_per_socket: int = 3
    # Loaded-latency inflation of the per-hop cost when a rank's threads
    # span k sockets and hammer the links with random misses:
    # multiplier = 1 + congestion_per_socket * (k - 1).  Calibrated so the
    # 64-thread interleaved policy reproduces the Fig. 3 NUMA penalty.
    congestion_per_socket: float = 0.55
    # Milder fixed inflation for node-shared structures read by bound
    # ranks (their miss traffic is summary-filtered and far lighter).
    shared_congestion: float = 1.2
    # Extra queueing when ALL pages sit on one socket (the noflag
    # first-touch placement): every miss of every thread funnels into a
    # single memory controller.
    single_socket_congestion: float = 1.6

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.hop_latency_ns <= 0:
            raise ConfigError("QPI bandwidth/latency must be positive")
        if self.links_per_socket < 1:
            raise ConfigError("QPI needs at least one link per socket")
        if self.congestion_per_socket < 0 or self.shared_congestion < 1:
            raise ConfigError("invalid QPI congestion parameters")


@dataclass(frozen=True)
class IbSpec:
    """InfiniBand NICs of one node.

    ``bw_vs_flows`` holds the Fig. 4 concurrency curve: fraction of the
    peak node bandwidth achieved when ``k`` processes of the node
    communicate simultaneously.  One process cannot saturate two ports
    (it achieves about half of peak); eight processes do.
    """

    ports: int = 2
    # 40 Gb/s QDR: 32 Gb/s data rate after 8b/10b = 4 GB/s; ~80% achievable.
    port_bandwidth: float = 3.2e9
    message_latency_ns: float = 1500.0
    bw_vs_flows: tuple[tuple[int, float], ...] = (
        (1, 0.50),
        (2, 0.74),
        (4, 0.90),
        (8, 1.00),
    )

    def __post_init__(self) -> None:
        if self.ports < 1 or self.port_bandwidth <= 0:
            raise ConfigError("IB ports/bandwidth must be positive")
        if self.message_latency_ns < 0:
            raise ConfigError("IB latency must be non-negative")
        ks = [k for k, _ in self.bw_vs_flows]
        fs = [f for _, f in self.bw_vs_flows]
        if ks != sorted(ks) or len(set(ks)) != len(ks) or ks[0] < 1:
            raise ConfigError("bw_vs_flows must have increasing flow counts >= 1")
        if any(not 0 < f <= 1 for f in fs) or fs != sorted(fs):
            raise ConfigError("bw_vs_flows fractions must be in (0,1], increasing")

    @property
    def peak_bandwidth(self) -> float:
        """All ports combined, fully saturated."""
        return self.ports * self.port_bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """One NUMA node: ``sockets`` identical sockets plus QPI and IB."""

    sockets: int = 8
    socket: SocketSpec = field(default_factory=SocketSpec)
    qpi: QpiSpec = field(default_factory=QpiSpec)
    ib: IbSpec = field(default_factory=IbSpec)
    # Per-socket memory capacity (Table I: 32 GB per CPU, 256 GB total).
    dram_per_socket: int = 32 * GB
    # Software overhead of a shared-memory pipe per message (MPI stack).
    shm_latency_ns: float = 600.0

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigError("node must have at least one socket")
        if self.dram_per_socket <= 0:
            raise ConfigError("dram_per_socket must be positive")

    @property
    def cores(self) -> int:
        """Cores per node."""
        return self.sockets * self.socket.cores

    @property
    def dram_total(self) -> int:
        """DRAM capacity per node."""
        return self.sockets * self.dram_per_socket

    @property
    def total_dram_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth of all sockets."""
        return self.sockets * self.socket.dram_bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of identical nodes behind one switch.

    ``weak_nodes`` maps node index -> network derating factor in (0, 1];
    the paper notes one of the 16 nodes had degraded InfiniBand
    performance, which shows in Figs. 13/15 at 16 nodes.
    """

    nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    weak_nodes: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError("cluster must have at least one node")
        for idx, factor in self.weak_nodes.items():
            if not 0 <= idx < self.nodes:
                raise ConfigError(f"weak node index {idx} out of range")
            if not 0 < factor <= 1:
                raise ConfigError(f"weak node factor {factor} not in (0, 1]")

    @property
    def total_cores(self) -> int:
        """Cores in the whole cluster."""
        return self.nodes * self.node.cores

    @property
    def total_sockets(self) -> int:
        """Sockets in the whole cluster."""
        return self.nodes * self.node.sockets

    def network_derating(self, node_index: int) -> float:
        """Fraction of nominal IB bandwidth node ``node_index`` achieves."""
        return self.weak_nodes.get(node_index, 1.0)

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        """Same hardware, different node count (weak nodes outside the new
        range are dropped)."""
        weak = {i: f for i, f in self.weak_nodes.items() if i < nodes}
        return replace(self, nodes=nodes, weak_nodes=weak)


def x7550_socket() -> SocketSpec:
    """Intel Xeon X7550 (Nehalem-EX) socket per Table I."""
    return SocketSpec(
        cores=8,
        frequency_hz=2.0e9,
        caches=(
            CacheLevel("L1D", 32 * KB, 2.0),
            CacheLevel("L2", 256 * KB, 5.0),
            CacheLevel("L3", 18 * MB, 25.0, shared=True),
        ),
        dram_latency_ns=220.0,
        dram_bandwidth=17.1e9,
        mlp=4.0,
    )


def x7550_node() -> NodeSpec:
    """Eight-socket X7550 node per Table I / Fig. 2."""
    return NodeSpec(sockets=8, socket=x7550_socket())


def paper_cluster(nodes: int = 16, weak_node: bool = False) -> ClusterSpec:
    """The paper's 16-node platform; ``weak_node=True`` adds the one node
    with degraded InfiniBand noted in Section IV.A."""
    weak = {nodes - 1: 0.7} if weak_node and nodes > 1 else {}
    return ClusterSpec(nodes=nodes, node=x7550_node(), weak_nodes=weak)
