"""Analytic model of the paper's hardware: a cluster of multi-socket NUMA
nodes (Table I: 16 nodes x 8 Intel X7550 sockets, QPI interconnect, dual
40 Gb/s InfiniBand ports per node).

The model is the substitution for the physical testbed (see DESIGN.md §2):
it charges simulated nanoseconds for the access classes that drive every
effect the paper evaluates — random latency-bound reads with cache-capacity
dependent hit rates, per-socket memory bandwidth caps, QPI hop latency,
shared-memory copy contention, and an InfiniBand node bandwidth that grows
with the number of concurrently communicating processes (Fig. 4).
"""

from repro.machine.spec import (
    CacheLevel,
    SocketSpec,
    QpiSpec,
    IbSpec,
    NodeSpec,
    ClusterSpec,
    x7550_socket,
    x7550_node,
    paper_cluster,
)
from repro.machine.caches import CacheModel
from repro.machine.interconnect import QpiTopology
from repro.machine.network import NetworkModel
from repro.machine.memory import (
    Placement,
    StructureAccess,
    MemoryModel,
)
from repro.machine.costmodel import (
    CostModel,
    ComputeContext,
    AccessCounts,
)

__all__ = [
    "CacheLevel",
    "SocketSpec",
    "QpiSpec",
    "IbSpec",
    "NodeSpec",
    "ClusterSpec",
    "x7550_socket",
    "x7550_node",
    "paper_cluster",
    "CacheModel",
    "QpiTopology",
    "NetworkModel",
    "Placement",
    "StructureAccess",
    "MemoryModel",
    "CostModel",
    "ComputeContext",
    "AccessCounts",
]
