"""QPI interconnect topology of one node (Fig. 2 of the paper).

The eight X7550 sockets are connected gluelessly over QPI.  We model the
coherence fabric as a 3-D hypercube: socket ``i`` links to ``i ^ 1``,
``i ^ 2`` and ``i ^ 4`` (three coherence links per socket, the fourth QPI
goes to the I/O hub).  For node sizes that are not powers of two the
topology falls back to a ring with one chord, which keeps diameters small
without pretending to more fidelity than the paper gives us.

The quantity the cost model consumes is the *average remote hop count*
and the resulting remote-access latency.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ConfigError
from repro.machine.spec import NodeSpec, QpiSpec

__all__ = ["QpiTopology"]


def _hypercube_links(sockets: int) -> list[tuple[int, int]]:
    dims = sockets.bit_length() - 1
    links = []
    for i in range(sockets):
        for d in range(dims):
            j = i ^ (1 << d)
            if j < sockets and i < j:
                links.append((i, j))
    return links


def _ring_with_chords(sockets: int) -> list[tuple[int, int]]:
    links = [(i, (i + 1) % sockets) for i in range(sockets)]
    # One chord per socket to the opposite side keeps the diameter ~n/4.
    half = sockets // 2
    if half >= 2:
        links += [(i, (i + half) % sockets) for i in range(half)]
    normalized = {(min(a, b), max(a, b)) for a, b in links if a != b}
    return sorted(normalized)


class QpiTopology:
    """Shortest-path hop counts between the sockets of one node."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node
        self.sockets = node.sockets
        self.qpi: QpiSpec = node.qpi
        if self.sockets == 1:
            links: list[tuple[int, int]] = []
        elif self.sockets & (self.sockets - 1) == 0:
            links = _hypercube_links(self.sockets)
        else:
            links = _ring_with_chords(self.sockets)
        self.links = links
        self._hops = self._all_pairs_hops()

    def _all_pairs_hops(self) -> np.ndarray:
        n = self.sockets
        inf = n + 1
        hops = np.full((n, n), inf, dtype=np.int64)
        np.fill_diagonal(hops, 0)
        for a, b in self.links:
            hops[a, b] = hops[b, a] = 1
        # Floyd-Warshall is fine for <= 8 sockets.
        for k, i, j in itertools.product(range(n), repeat=3):
            via = hops[i, k] + hops[k, j]
            if via < hops[i, j]:
                hops[i, j] = via
        if n > 1 and hops.max() > n:
            raise ConfigError("QPI topology is disconnected")
        return hops

    def hops(self, src_socket: int, dst_socket: int) -> int:
        """QPI hops between two sockets of the node."""
        if not (0 <= src_socket < self.sockets and 0 <= dst_socket < self.sockets):
            raise ConfigError("socket index out of range")
        return int(self._hops[src_socket, dst_socket])

    def mean_remote_hops(self) -> float:
        """Average hop count from a socket to the *other* sockets."""
        if self.sockets == 1:
            return 0.0
        total = self._hops.sum()
        return float(total) / (self.sockets * (self.sockets - 1))

    def remote_dram_latency(self, hops: float | None = None) -> float:
        """Latency of a DRAM access served by another socket's memory."""
        if hops is None:
            hops = self.mean_remote_hops()
        return self.node.socket.dram_latency_ns + hops * self.qpi.hop_latency_ns

    def remote_llc_latency(self, hops: float | None = None) -> float:
        """Cache-to-cache transfer from a remote L3.

        Molka et al. (the paper's [35]) measure this *below* local DRAM
        latency on Nehalem — the property the paper's shared-``in_queue``
        argument (II.D, reason d) relies on.
        """
        if hops is None:
            hops = self.mean_remote_hops()
        llc = self.node.socket.llc.latency_ns
        return llc + hops * self.qpi.hop_latency_ns

    def cross_socket_bandwidth(self) -> float:
        """Sustainable bandwidth of one socket's QPI traffic."""
        return self.qpi.links_per_socket * self.qpi.link_bandwidth
