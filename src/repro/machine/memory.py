"""Data-placement policies and their effective memory behaviour.

This module captures the lever of the paper's NUMA experiments (Fig. 10):
where a structure's pages live relative to the threads that access it.

* ``LOCAL_SOCKET`` — pages on the accessing rank's own socket
  (``ppn=8 --bind-to-socket``: the graph partition, private bitmaps);
* ``INTERLEAVED`` — pages round-robined over all sockets of the node
  (``numactl --interleave=all``);
* ``SINGLE_SOCKET`` — all pages on one socket while threads run
  everywhere (first-touch of a non-bound multi-threaded run: the
  ``noflag`` policies);
* ``NODE_SHARED`` — one copy per node in shared memory, interleaved over
  the sockets and read by every rank of the node (the paper's shared
  ``in_queue``); cooperative L3 caching applies.

For each placement the model yields the local-DRAM fraction seen by an
accessing thread, the DRAM bandwidth reachable for streaming, and how many
sockets' L3 capacity effectively caches the structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.caches import CacheModel
from repro.machine.interconnect import QpiTopology
from repro.machine.spec import NodeSpec

__all__ = ["Placement", "StructureAccess", "EffectiveMemory", "MemoryModel"]


class Placement(enum.Enum):
    """Where a structure's pages live relative to its readers."""
    LOCAL_SOCKET = "local_socket"
    INTERLEAVED = "interleaved"
    SINGLE_SOCKET = "single_socket"
    NODE_SHARED = "node_shared"


@dataclass(frozen=True)
class StructureAccess:
    """A structure accessed with uniform random single-word reads."""

    name: str
    size_bytes: float
    placement: Placement

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigError(f"structure {self.name}: negative size")


@dataclass(frozen=True)
class EffectiveMemory:
    """Resolved behaviour of one placement."""

    local_dram_fraction: float
    # DRAM bandwidth available to ONE rank streaming through the structure.
    stream_bandwidth: float
    shared_sockets: int
    # Loaded-latency multiplier on the QPI hop cost of remote DRAM reads.
    remote_congestion: float = 1.0


class MemoryModel:
    """Maps placements to effective latencies and bandwidths on a node."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node
        self.topology = QpiTopology(node)
        self.caches = CacheModel(node, self.topology)

    def effective(
        self, placement: Placement, threads_sockets: int = 1
    ) -> EffectiveMemory:
        """Resolve a placement for a rank whose threads span
        ``threads_sockets`` sockets (1 for a bound rank, ``node.sockets``
        for an unbound/one-per-node rank)."""
        s = self.node.sockets
        if not 1 <= threads_sockets <= s:
            raise ConfigError(
                f"threads_sockets must be in [1, {s}], got {threads_sockets}"
            )
        sock_bw = self.node.socket.dram_bandwidth
        qpi = self.node.qpi
        qpi_bw = self.topology.cross_socket_bandwidth()
        spread_congestion = 1.0 + qpi.congestion_per_socket * (threads_sockets - 1)

        if placement is Placement.LOCAL_SOCKET:
            return EffectiveMemory(
                local_dram_fraction=1.0,
                stream_bandwidth=sock_bw,
                shared_sockets=1,
            )
        if placement is Placement.INTERLEAVED:
            # 1/s of pages are local to any given accessing socket; the
            # rest arrives over QPI, capped by the socket's QPI links.
            local_frac = 1.0 / s
            remote_bw = min((s - 1) * sock_bw / s * threads_sockets, qpi_bw)
            bw = sock_bw / s * threads_sockets + remote_bw
            return EffectiveMemory(
                local_dram_fraction=local_frac,
                stream_bandwidth=bw,
                shared_sockets=1,
                remote_congestion=spread_congestion,
            )
        if placement is Placement.SINGLE_SOCKET:
            # All pages on one socket: only its memory controller serves
            # traffic; threads on other sockets see remote latency, and
            # the single controller's queue inflates it further.
            local_frac = 1.0 / threads_sockets if threads_sockets > 1 else 1.0
            congestion = spread_congestion * (
                qpi.single_socket_congestion if threads_sockets > 1 else 1.0
            )
            return EffectiveMemory(
                local_dram_fraction=local_frac,
                stream_bandwidth=sock_bw,
                shared_sockets=1,
                remote_congestion=congestion,
            )
        if placement is Placement.NODE_SHARED:
            # One interleaved copy per node, read by all ranks; the L3s of
            # all sockets cooperatively cache it (paper II.D reasons b-d).
            local_frac = 1.0 / s
            remote_bw = min((s - 1) * sock_bw / s * threads_sockets, qpi_bw)
            bw = sock_bw / s * threads_sockets + remote_bw
            return EffectiveMemory(
                local_dram_fraction=local_frac,
                stream_bandwidth=bw,
                shared_sockets=s,
                remote_congestion=max(qpi.shared_congestion, spread_congestion),
            )
        raise ConfigError(f"unknown placement {placement!r}")

    def access_latency(
        self, structure: StructureAccess, threads_sockets: int = 1
    ) -> float:
        """Average random-read latency into ``structure``."""
        eff = self.effective(structure.placement, threads_sockets)
        bd = self.caches.access_latency(
            structure.size_bytes,
            local_dram_fraction=eff.local_dram_fraction,
            shared_sockets=eff.shared_sockets,
            remote_congestion=eff.remote_congestion,
        )
        return bd.avg_latency_ns

    def copy_bandwidth(self, concurrent_flows: int = 1) -> float:
        """Per-flow bandwidth of an intra-node memcpy when
        ``concurrent_flows`` copies traverse the node simultaneously.

        A copy reads and writes every byte, so a single flow sustains at
        most half the controller bandwidth; concurrent flows share the
        node's aggregate controller bandwidth (this is the contention that
        makes leader-based gather/broadcast expensive in Fig. 6).
        """
        if concurrent_flows < 1:
            raise ConfigError("concurrent_flows must be >= 1")
        sock_bw = self.node.socket.dram_bandwidth
        # Leader-centric traffic funnels into one socket's controller:
        # total copy throughput is bounded by roughly one socket's
        # bandwidth halved (read + write), shared across flows.
        return sock_bw / 2.0 / concurrent_flows
