"""InfiniBand network model.

Reproduces the behaviour the paper measures with the OSU micro-benchmark
in Fig. 4: the bandwidth achieved between two nodes grows with the number
of processes per node communicating simultaneously, because a single
process cannot drive both IB ports — one process reaches about half the
peak, eight processes saturate it.

The model interpolates the Fig. 4 concurrency curve (stored in
:class:`~repro.machine.spec.IbSpec`) and divides node bandwidth fairly
among concurrent flows.  Per-node deratings from
:class:`~repro.machine.spec.ClusterSpec.weak_nodes` model the paper's one
ill-performing node.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.machine.spec import ClusterSpec, IbSpec

__all__ = ["NetworkModel"]


class NetworkModel:
    """Bandwidth/latency of inter-node transfers behind one switch."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.ib: IbSpec = cluster.node.ib
        self._ks = np.array([k for k, _ in self.ib.bw_vs_flows], dtype=float)
        self._fs = np.array([f for _, f in self.ib.bw_vs_flows], dtype=float)

    def concurrency_fraction(self, flows: int) -> float:
        """Fraction of peak node bandwidth reached with ``flows``
        concurrent streams (interpolated Fig. 4 curve; saturates at the
        last calibration point)."""
        if flows < 1:
            raise ConfigError(f"flows must be >= 1, got {flows}")
        return float(np.interp(float(flows), self._ks, self._fs))

    def node_bandwidth(self, flows: int, node_index: int | None = None) -> float:
        """Aggregate IB bandwidth of one node with ``flows`` streams."""
        derate = (
            1.0
            if node_index is None
            else self.cluster.network_derating(node_index)
        )
        return self.ib.peak_bandwidth * self.concurrency_fraction(flows) * derate

    def flow_bandwidth(self, flows: int, node_index: int | None = None) -> float:
        """Bandwidth of each stream when ``flows`` share the node's NICs."""
        return self.node_bandwidth(flows, node_index) / flows

    def ns_per_byte(self, flows: int = 1, node_index: int | None = None) -> float:
        """Marginal wire cost (ns) of one payload byte on one flow.

        The bandwidth-term slope of :meth:`transfer_time`; the ``auto``
        frontier codec compares this against the
        :class:`~repro.machine.costmodel.CodecCostModel` throughputs to
        decide whether shrinking the payload pays.
        """
        return 1e9 / self.flow_bandwidth(flows, node_index)

    def transfer_time(
        self,
        nbytes: float,
        flows: int = 1,
        node_index: int | None = None,
    ) -> float:
        """Time (ns) for one flow to move ``nbytes`` while ``flows``
        streams share the node's NICs."""
        if nbytes < 0:
            raise ConfigError("nbytes must be non-negative")
        bw = self.flow_bandwidth(flows, node_index)
        return self.ib.message_latency_ns + nbytes / bw * 1e9

    def osu_bandwidth(self, ppn: int, message_bytes: float = 4 << 20) -> float:
        """Fig. 4 measurement protocol: ``ppn`` process pairs between two
        nodes stream large messages; report aggregate bandwidth (B/s)."""
        if ppn < 1:
            raise ConfigError("ppn must be >= 1")
        time_ns = self.transfer_time(message_bytes, flows=ppn)
        per_flow_bw = message_bytes / (time_ns / 1e9)
        return per_flow_bw * ppn
