"""Roofline-style compute-phase cost model.

The BFS computation phases are characterized by three resource classes:

* **latency-bound random reads** into bitmaps and adjacency headers —
  throughput limited by (threads x MLP) outstanding misses at the average
  access latency the cache model yields;
* **streamed bytes** (sequential scans of adjacency arrays and bitmaps) —
  limited by the DRAM bandwidth reachable under the data's placement;
* **cpu work** (bit tests, queue bookkeeping) — limited by core throughput.

Phase time is the maximum of the three terms (perfect overlap, as in a
classic roofline), which is the level of fidelity the paper's analysis
uses: its NUMA argument is entirely about the latency/bandwidth terms
growing when accesses cross sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.memory import MemoryModel, Placement, StructureAccess
from repro.machine.spec import NodeSpec

__all__ = [
    "AccessCounts",
    "CodecCostModel",
    "ComputeContext",
    "CostModel",
    "ComputeTimeBreakdown",
]


@dataclass(frozen=True)
class CodecCostModel:
    """Throughput model of frontier-codec encode/decode on one rank.

    The compression layer trades CPU seconds for wire bytes; this model
    supplies the CPU side of that tradeoff (the wire side comes from the
    allgather schedule itself).  Defaults model a vectorized
    word-granular RLE/varint coder on the 2 GHz X7550: encoding streams
    the raw bitmap once with a few ops per word, decoding scatters the
    (smaller) payload back.  Both are charged per *raw resp. wire* byte
    plus a fixed per-call latency, mirroring the network model's
    ``latency + bytes/bandwidth`` shape.
    """

    #: Sustained encode throughput over the raw bitmap (bytes/second).
    encode_bandwidth: float = 2.5e9
    #: Sustained decode throughput over the wire payload (bytes/second).
    decode_bandwidth: float = 4.0e9
    #: Fixed per-call setup cost (ns): token scan, buffer allocation.
    per_call_latency_ns: float = 2_000.0

    def encode_time_ns(self, raw_nbytes: float) -> float:
        """Time for one rank to encode a ``raw_nbytes`` bitmap."""
        if raw_nbytes < 0:
            raise ConfigError("negative byte count")
        if raw_nbytes == 0:
            return 0.0
        return self.per_call_latency_ns + raw_nbytes / self.encode_bandwidth * 1e9

    def decode_time_ns(self, wire_nbytes: float) -> float:
        """Time for one rank to decode a ``wire_nbytes`` payload."""
        if wire_nbytes < 0:
            raise ConfigError("negative byte count")
        if wire_nbytes == 0:
            return 0.0
        return self.per_call_latency_ns + wire_nbytes / self.decode_bandwidth * 1e9


@dataclass
class AccessCounts:
    """Event counts of one rank in one compute phase."""

    # (structure, number of random single-word reads)
    random_reads: list[tuple[StructureAccess, float]] = field(default_factory=list)
    # (structure, bytes scanned sequentially)
    streamed: list[tuple[StructureAccess, float]] = field(default_factory=list)
    # CPU cycles of scalar work.
    cpu_cycles: float = 0.0

    def add_random(self, structure: StructureAccess, count: float) -> None:
        """Record random single-word reads into a structure."""
        if count < 0:
            raise ConfigError("negative random read count")
        if count:
            self.random_reads.append((structure, float(count)))

    def add_stream(self, structure: StructureAccess, nbytes: float) -> None:
        """Record sequentially streamed bytes through a structure."""
        if nbytes < 0:
            raise ConfigError("negative streamed byte count")
        if nbytes:
            self.streamed.append((structure, float(nbytes)))

    def add_cpu(self, cycles: float) -> None:
        """Record scalar CPU work in cycles."""
        if cycles < 0:
            raise ConfigError("negative cpu cycles")
        self.cpu_cycles += float(cycles)


@dataclass(frozen=True)
class ComputeContext:
    """Execution environment of one rank during a compute phase."""

    threads: int
    # How many sockets the rank's threads span (1 when bound to a socket,
    # node.sockets for a one-rank-per-node or unbound configuration).
    threads_sockets: int = 1

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.threads_sockets < 1:
            raise ConfigError("threads_sockets must be >= 1")


@dataclass(frozen=True)
class ComputeTimeBreakdown:
    latency_term_ns: float
    bandwidth_term_ns: float
    cpu_term_ns: float

    @property
    def total_ns(self) -> float:
        """Roofline total: max of the three terms."""
        return max(self.latency_term_ns, self.bandwidth_term_ns, self.cpu_term_ns)


class CostModel:
    """Converts :class:`AccessCounts` into simulated nanoseconds."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node
        self.memory = MemoryModel(node)

    def compute_time(
        self, counts: AccessCounts, ctx: ComputeContext
    ) -> ComputeTimeBreakdown:
        """Price one phase's access counts on the machine."""
        socket = self.node.socket
        if ctx.threads_sockets > self.node.sockets:
            raise ConfigError(
                f"rank threads span {ctx.threads_sockets} sockets but the "
                f"node has {self.node.sockets}"
            )

        # Latency term: outstanding-miss-limited random reads.
        lat_ns = 0.0
        miss_bytes: dict[Placement, float] = {}
        for structure, count in counts.random_reads:
            avg = self.memory.access_latency(structure, ctx.threads_sockets)
            lat_ns += count * avg
            # DRAM-resident misses also consume memory bandwidth.
            miss_frac = self.memory.caches.dram_miss_fraction(
                structure.size_bytes,
                shared_sockets=self.memory.effective(
                    structure.placement, ctx.threads_sockets
                ).shared_sockets,
            )
            line = socket.caches[0].line_bytes if socket.caches else 64
            miss_bytes[structure.placement] = (
                miss_bytes.get(structure.placement, 0.0)
                + count * miss_frac * line
            )
        parallel_misses = ctx.threads * socket.mlp
        latency_term = lat_ns / parallel_misses

        # Bandwidth term: streamed bytes plus miss traffic, per placement.
        stream_bytes: dict[Placement, float] = dict(miss_bytes)
        for structure, nbytes in counts.streamed:
            stream_bytes[structure.placement] = (
                stream_bytes.get(structure.placement, 0.0) + nbytes
            )
        bandwidth_term = 0.0
        for placement, nbytes in stream_bytes.items():
            eff = self.memory.effective(placement, ctx.threads_sockets)
            bandwidth_term += nbytes / eff.stream_bandwidth * 1e9

        cpu_term = counts.cpu_cycles / (
            ctx.threads * socket.frequency_hz
        ) * 1e9

        return ComputeTimeBreakdown(
            latency_term_ns=latency_term,
            bandwidth_term_ns=bandwidth_term,
            cpu_term_ns=cpu_term,
        )
