"""Analytic cache model.

The BFS inner loops make essentially uniform random single-word reads into
bitmap structures (``in_queue``, ``in_queue_summary``) whose sizes span
five orders of magnitude as the graph scales — which is exactly the lever
of the paper's granularity optimization (Section III.C): a smaller summary
has a higher cache hit rate but fewer zero bits.

For random accesses over a working set of ``S`` bytes, the fraction of
accesses served by a cache of effective capacity ``C`` is ``min(1, C/S)``
(a fully-associative, LRU-in-the-limit approximation).  The model exposes
average access latency given

* the structure size,
* how many sockets' L3 capacity effectively caches the structure
  (``shared_sockets > 1`` models the paper's node-shared ``in_queue``:
  II.D "larger cache size" / "faster remote cache access" arguments),
* the fraction of DRAM-resident accesses that are local to the socket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.interconnect import QpiTopology
from repro.machine.spec import NodeSpec

__all__ = ["CacheModel", "LatencyBreakdown"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Average access latency and where the accesses were served."""

    avg_latency_ns: float
    fractions: dict  # level name -> fraction of accesses


class CacheModel:
    """Average latency of random single-word reads into a structure."""

    def __init__(self, node: NodeSpec, topology: QpiTopology | None = None) -> None:
        self.node = node
        self.socket = node.socket
        self.topology = topology or QpiTopology(node)

    def coverage(self, capacity: float, size_bytes: float) -> float:
        """Fraction of a ``size_bytes`` structure resident in a cache of
        nominal ``capacity``, under the socket's cache-pressure model
        (only ``cache_usable_fraction`` of each level is effectively
        available to any one structure)."""
        if size_bytes <= 0:
            return 1.0
        usable = capacity * self.socket.cache_usable_fraction
        return min(1.0, usable / size_bytes)

    def access_latency(
        self,
        size_bytes: float,
        local_dram_fraction: float = 1.0,
        shared_sockets: int = 1,
        remote_congestion: float = 1.0,
    ) -> LatencyBreakdown:
        """Average latency for random reads over a ``size_bytes`` structure.

        ``local_dram_fraction`` is the probability that a DRAM-level access
        is served by the accessing core's own socket; the rest pays the
        mean QPI hop penalty.  ``shared_sockets`` > 1 additionally lets the
        L3s of that many sockets cache the structure cooperatively; the
        portion cached beyond the local L3 is served at remote-LLC latency
        (which is still cheaper than local DRAM on this platform).

        ``remote_congestion`` multiplies the QPI hop cost of remote *DRAM*
        accesses: when many threads hammer the links simultaneously (the
        ``interleave``/``noflag`` policies with 64 unbound threads),
        queueing inflates the loaded remote latency well beyond the idle
        number — the congestion the paper's Section II.C warns about.

        DRAM-level accesses into structures larger than the TLB coverage
        additionally pay the page-walk penalty.
        """
        if not 0.0 <= local_dram_fraction <= 1.0:
            raise ConfigError(
                f"local_dram_fraction must be in [0,1], got {local_dram_fraction}"
            )
        if shared_sockets < 1 or shared_sockets > self.node.sockets:
            raise ConfigError(
                f"shared_sockets must be in [1, {self.node.sockets}]"
            )
        if remote_congestion < 1.0:
            raise ConfigError("remote_congestion must be >= 1")
        fractions: dict[str, float] = {}
        total = 0.0
        covered = 0.0
        for level in self.socket.caches[:-1]:
            c = self.coverage(level.capacity_bytes, size_bytes)
            frac = max(0.0, c - covered)
            fractions[level.name] = frac
            total += frac * level.latency_ns
            covered = max(covered, c)

        llc = self.socket.llc
        local_llc_cov = self.coverage(llc.capacity_bytes, size_bytes)
        frac_local_llc = max(0.0, local_llc_cov - covered)
        fractions[llc.name] = frac_local_llc
        total += frac_local_llc * llc.latency_ns
        covered = max(covered, local_llc_cov)

        if shared_sockets > 1:
            group_cov = self.coverage(
                llc.capacity_bytes * shared_sockets, size_bytes
            )
            frac_remote_llc = max(0.0, group_cov - covered)
            fractions["remote_" + llc.name] = frac_remote_llc
            total += frac_remote_llc * self.topology.remote_llc_latency()
            covered = max(covered, group_cov)

        dram_frac = max(0.0, 1.0 - covered)
        local = dram_frac * local_dram_fraction
        remote = dram_frac * (1.0 - local_dram_fraction)
        fractions["local_dram"] = local
        fractions["remote_dram"] = remote
        tlb = (
            self.socket.tlb_penalty_ns
            if size_bytes > self.socket.tlb_coverage_bytes
            else 0.0
        )
        hops = self.topology.mean_remote_hops()
        loaded_remote = (
            self.socket.dram_latency_ns
            + hops * self.topology.qpi.hop_latency_ns * remote_congestion
        )
        total += local * (self.socket.dram_latency_ns + tlb)
        total += remote * (loaded_remote + tlb)
        return LatencyBreakdown(avg_latency_ns=total, fractions=fractions)

    def dram_miss_fraction(
        self, size_bytes: float, shared_sockets: int = 1
    ) -> float:
        """Fraction of random accesses that reach DRAM."""
        bd = self.access_latency(size_bytes, 1.0, shared_sockets)
        return bd.fractions["local_dram"] + bd.fractions["remote_dram"]
