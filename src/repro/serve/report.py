"""The ``repro.serve/v1`` latency report and its run-ledger record.

One serving campaign produces one report document: the workload axes
(graph, cluster, partition config), the load-generator knobs, the
measured latency distribution (p50/p90/p99 from the scheduler's
histogram), achieved throughput, cache effectiveness (prepared-graph
LRU and result LRU), and — when the campaign ran the sequential
comparison — the batched-vs-sequential queries/sec speedup.

The JSON artifact carries ``schema: repro.serve/v1``;
:func:`record_for_serve_report` folds the headline numbers into a
``repro.run/v1`` ledger record (kind ``serve``) so the trend dashboard
tracks serving latency alongside kernel and communication runs.
"""

from __future__ import annotations

import hashlib

from repro.obs.ledger import LedgerRecord

__all__ = ["SCHEMA", "build_report", "record_for_serve_report"]

SCHEMA = "repro.serve/v1"


def build_report(
    workload: dict,
    load: dict,
    loadgen_result,
    prepared_stats: dict,
    comparison: dict | None = None,
    slo: dict | None = None,
) -> dict:
    """Assemble the ``repro.serve/v1`` report document.

    ``workload`` describes the graph/cluster/config axes, ``load`` the
    generator knobs, ``loadgen_result`` is the measured
    :class:`~repro.serve.loadgen.LoadGenResult`, ``prepared_stats`` the
    prepared-graph cache counters, ``comparison`` the optional
    sequential-baseline block, and ``slo`` the optional embedded
    ``repro.slo/v1`` evaluation of the campaign.

    When the campaign ran under a resilience policy the report carries
    a ``resilience`` block: the policy knobs, shed/hedge/retry/replay
    counters, breaker state, and the stale-serving marker
    (``stale_served > 0`` means some answers were slightly-stale cache
    entries served in degrade mode).  Without a policy the block is
    ``None`` — the schema stays ``repro.serve/v1`` either way.
    """
    measured = loadgen_result.as_dict()
    sched_stats = measured["scheduler"]
    resil_stats = (
        sched_stats.get("resilience")
        if isinstance(sched_stats, dict)
        else None
    )
    resilience = None
    if resil_stats is not None:
        counts = dict(resil_stats.get("counts") or {})
        resilience = {
            "policy": dict(resil_stats.get("policy") or {}),
            "degraded": bool(resil_stats.get("degraded", False)),
            "counts": counts,
            "breaker": resil_stats.get("breaker"),
            "deadline_ms": measured.get("deadline_ms"),
            "rejected": int(measured.get("rejected", 0)),
            "deadline_expired": int(measured.get("deadline_expired", 0)),
            "stale_served": int(counts.get("stale_served", 0)),
        }
    return {
        "schema": SCHEMA,
        "workload": dict(workload),
        "load": dict(load),
        "latency_ms": measured["latency_ms"],
        "throughput": {
            "qps_offered": measured["qps_offered"],
            "qps_achieved": measured["qps_achieved"],
            "wall_seconds": measured["wall_seconds"],
            "queries": measured["queries"],
            "completed": measured.get("completed", measured["queries"]),
            "distinct_roots": measured["distinct_roots"],
        },
        "scheduler": sched_stats,
        "resilience": resilience,
        "caches": {
            "prepared": dict(prepared_stats),
            "results": measured["scheduler"].get("result_cache"),
        },
        "comparison": dict(comparison) if comparison is not None else None,
        "slo": dict(slo) if slo is not None else None,
    }


def _fingerprint(report: dict) -> str:
    """Stable identity of the comparable axes of a serving campaign."""
    axes = dict(report.get("workload") or {})
    axes.update(report.get("load") or {})
    blob = repr(sorted(axes.items())).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def record_for_serve_report(
    report: dict, source: str = ""
) -> LedgerRecord:
    """A ledger record with the headline serving metrics.

    The full ``repro.serve/v1`` document rides along in ``extra`` so a
    dashboard can drill in; trend analysis sees only the flat metrics.
    """
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"not a serve report: schema {report.get('schema')!r}"
        )
    latency = report.get("latency_ms") or {}
    throughput = report.get("throughput") or {}
    caches = report.get("caches") or {}
    prepared = caches.get("prepared") or {}
    results = caches.get("results") or {}
    comparison = report.get("comparison") or {}
    metrics = {
        "latency_p50_ms": float(latency.get("p50", 0.0)),
        "latency_p90_ms": float(latency.get("p90", 0.0)),
        "latency_p99_ms": float(latency.get("p99", 0.0)),
        "latency_mean_ms": float(latency.get("mean", 0.0)),
        "qps_achieved": float(throughput.get("qps_achieved", 0.0)),
        "queries": float(throughput.get("queries", 0)),
        "prepared_cache_hit_rate": float(prepared.get("hit_rate", 0.0)),
        "result_cache_hit_rate": float(results.get("hit_rate", 0.0)),
    }
    if comparison:
        metrics["sequential_qps"] = float(
            comparison.get("sequential_qps", 0.0)
        )
        metrics["batched_qps"] = float(comparison.get("batched_qps", 0.0))
        metrics["speedup"] = float(comparison.get("speedup", 0.0))
    resilience = report.get("resilience") or {}
    if resilience:
        counts = resilience.get("counts") or {}
        metrics["rejected"] = float(resilience.get("rejected", 0))
        metrics["deadline_expired"] = float(
            resilience.get("deadline_expired", 0)
        )
        metrics["stale_served"] = float(resilience.get("stale_served", 0))
        metrics["hedges"] = float(counts.get("hedges", 0))
        metrics["retries"] = float(counts.get("retries", 0))
        metrics["dispatcher_restarts"] = float(counts.get("restarts", 0))
    labels = {"schema": SCHEMA}
    if source:
        labels["source"] = source
    return LedgerRecord(
        kind="serve",
        name="loadgen",
        fingerprint=_fingerprint(report),
        config={
            "workload": dict(report.get("workload") or {}),
            "load": dict(report.get("load") or {}),
        },
        metrics=metrics,
        labels=labels,
        extra={"report": report},
    )
