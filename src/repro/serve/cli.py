"""``repro-serve`` console entry point: the serving-layer campaign.

Usage::

    repro-serve --scale 13 --nodes 2 --queries 128 --qps 400
    repro-serve --scale 14 --max-batch 32 --compare-sequential --ledger
    repro-serve --scale 12 --root-pool 4 --json serve-report.json

One invocation builds an R-MAT workload, opens a prepared-graph
session, drives the asyncio batch scheduler with the open-loop load
generator, and prints/records the ``repro.serve/v1`` latency report
(p50/p90/p99, throughput, cache hit rates).  ``--compare-sequential``
additionally replays a burst of distinct roots both through the
batched serving path and through a sequential ``run_bfs`` loop (one
fresh engine per query — the pre-serving architecture) and reports the
queries/sec speedup.

Resilience (all optional — without these flags the scheduler runs the
policy-free hot path): ``--deadline-ms`` bounds each query end to end,
``--max-queue`` + ``--shed-policy`` bound the admission queue,
``--no-hedge`` / ``--hedge-min-ms`` / ``--breaker-threshold`` /
``--no-supervise`` tune hedged retries, the circuit breaker and
dispatcher supervision, and ``--resilience`` enables the default
policy on its own.  The report gains a ``resilience`` block (shed and
stale-serving counters, hedges, retries, restarts).

Live operations (all optional, zero cost when absent):

* ``--ops-port`` starts the stdlib ops HTTP server next to the
  campaign — ``/metrics`` (OpenMetrics), ``/healthz``,
  ``/debug/state`` — and ``--ops-linger`` keeps it (and the process)
  up for N seconds after the load drains so scrapers can read final
  state;
* ``--slo-p99-ms`` / ``--slo-error-rate`` declare SLO objectives; the
  campaign is evaluated with fast/slow burn-rate windows and the
  ``repro.slo/v1`` verdict is embedded in the report (and, with
  ``--ledger``, appended as its own ledger record);
* ``--trace-out`` records request-scoped tracing (queue-wait → batch →
  per-level engine spans, one chain per ``trace_id``) and writes the
  Perfetto-loadable serving trace.

``--ledger`` appends the headline metrics to the run ledger at
``.repro/ledger`` (or ``$REPRO_LEDGER_DIR``); ``--json`` writes the
full report artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.config import BFSConfig
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.loadgen import run_load
from repro.serve.report import SCHEMA, build_report, record_for_serve_report
from repro.serve.resilience import SHED_POLICIES, ResiliencePolicy
from repro.serve.scheduler import BatchScheduler
from repro.serve.session import BFSService
from repro.util.formatting import format_table

__all__ = ["main", "run_serving_campaign"]

log = get_logger("serve")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Concurrent BFS serving campaign over the simulated NUMA "
            "cluster: batched multi-source traversals behind an asyncio "
            "admission queue, measured with an open-loop load generator"
        ),
    )
    parser.add_argument(
        "--scale", type=int, default=13,
        help="R-MAT graph scale (2^scale vertices)",
    )
    parser.add_argument(
        "--nodes", type=int, default=2, help="simulated node count"
    )
    parser.add_argument(
        "--ppn", type=int, default=None,
        help="processes per node (default: one per socket)",
    )
    parser.add_argument(
        "--kernel", choices=("reference", "activeset", "cnative"),
        help="bottom-up kernel backend (sets REPRO_KERNEL)",
    )
    parser.add_argument(
        "--codec",
        choices=("auto", "raw", "rle-bitmap", "sieve", "sparse-index"),
        help="frontier codec (sets REPRO_CODEC)",
    )
    parser.add_argument(
        "--queries", type=int, default=128,
        help="queries the load generator offers",
    )
    parser.add_argument(
        "--qps", type=float, default=0.0,
        help="open-loop offered rate in queries/sec (0 = unbounded burst)",
    )
    parser.add_argument(
        "--root-pool", type=int, default=16,
        help="distinct hot roots the generator samples from",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="scheduler batch cap (lanes per scan, <= 64)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="scheduler wait for stragglers once a batch opens",
    )
    parser.add_argument(
        "--result-cache", type=int, default=256,
        help="result LRU capacity (0 disables result caching)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="load-generator seed"
    )
    parser.add_argument(
        "--graph-seed", type=int, default=2, help="R-MAT generator seed"
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-query deadline; expired queries are shed from the "
        "queue and cancelled mid-traversal (implies a resilience "
        "policy)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="DEPTH",
        help="admission-queue bound; beyond it --shed-policy applies "
        "(implies a resilience policy)",
    )
    parser.add_argument(
        "--shed-policy", choices=SHED_POLICIES, default="reject",
        help="what to do when the queue is full: reject new work, "
        "drop-oldest queued work, or degrade (shrink batches, serve "
        "slightly-stale cached results)",
    )
    parser.add_argument(
        "--hedge-min-ms", type=float, default=50.0, metavar="MS",
        help="floor for the hedged-retry straggler threshold "
        "(default 50ms)",
    )
    parser.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged retries of straggling batches",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive batch failures that trip the circuit "
        "breaker (0 disables it)",
    )
    parser.add_argument(
        "--no-supervise", action="store_true",
        help="disable dispatcher supervision (restart + replay)",
    )
    parser.add_argument(
        "--resilience", action="store_true",
        help="enable the default resilience policy even without "
        "--deadline-ms/--max-queue",
    )
    parser.add_argument(
        "--compare-sequential",
        action="store_true",
        help="also replay a burst of --max-batch distinct roots through "
        "a sequential run_bfs loop and report the queries/sec speedup",
    )
    parser.add_argument(
        "--ops-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /debug/state on this port "
        "while the campaign runs (0 = ephemeral port)",
    )
    parser.add_argument(
        "--ops-host", default="127.0.0.1",
        help="bind address for the ops server (default 127.0.0.1)",
    )
    parser.add_argument(
        "--ops-linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the ops server up this long after the load drains",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="latency objective: p99 of served requests <= MS",
    )
    parser.add_argument(
        "--slo-error-rate", type=float, default=None, metavar="RATE",
        help="error-rate objective: failed fraction <= RATE (e.g. 0.001)",
    )
    parser.add_argument(
        "--slo-fast-window", type=float, default=5.0, metavar="SECONDS",
        help="fast burn-rate window (default 5s)",
    )
    parser.add_argument(
        "--slo-slow-window", type=float, default=30.0, metavar="SECONDS",
        help="slow burn-rate window (default 30s)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="record request-scoped tracing and write the serving "
        "Chrome/Perfetto trace to PATH",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help=f"write the {SCHEMA} report as JSON to PATH",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="append the headline metrics to the run ledger at "
        ".repro/ledger (or $REPRO_LEDGER_DIR)",
    )
    return parser


def _distinct_roots(graph, count: int, seed: int) -> np.ndarray:
    """``count`` distinct positive-degree roots (comparison workload)."""
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    rng = np.random.default_rng(seed)
    count = min(int(count), int(candidates.size))
    return rng.choice(candidates, size=count, replace=False).astype(np.int64)


def _compare_sequential(service, graph, cluster, config, args) -> dict:
    """Replay one burst batched and sequentially; return the block."""
    from repro.core.api import run_bfs

    roots = _distinct_roots(graph, args.max_batch, seed=args.seed + 9973)
    # Batched side first: the serving path with a cold result cache so
    # the speedup measures batching, not memoization.
    session = service.session(graph, cluster, config)
    batched = run_load(
        session,
        qps=float("inf"),
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        result_cache=None,
        roots=roots,
    )
    t0 = time.perf_counter()
    for root in roots:
        run_bfs(graph, int(root), cluster=cluster, config=config)
    seq_wall = time.perf_counter() - t0
    seq_qps = roots.size / seq_wall if seq_wall else 0.0
    return {
        "roots": int(roots.size),
        "sequential_wall_seconds": seq_wall,
        "batched_wall_seconds": batched.wall_seconds,
        "sequential_qps": seq_qps,
        "batched_qps": batched.qps_achieved,
        "speedup": (
            batched.qps_achieved / seq_qps if seq_qps else 0.0
        ),
        "batched_latency_ms": dict(batched.latency_ms),
    }


def _build_resilience(args) -> ResiliencePolicy | None:
    """The resilience policy the flags declare (or None).

    The policy is opt-in: it exists only when ``--resilience`` is
    given or a knob that needs one (``--deadline-ms``, ``--max-queue``)
    is set, so the default hot path stays byte-identical to the
    policy-free scheduler.
    """
    wants = (
        args.resilience
        or args.deadline_ms is not None
        or args.max_queue is not None
    )
    if not wants:
        return None
    return ResiliencePolicy(
        max_queue_depth=args.max_queue,
        shed_policy=args.shed_policy,
        hedge=not args.no_hedge,
        hedge_min_ms=args.hedge_min_ms,
        breaker_threshold=args.breaker_threshold,
        supervise=not args.no_supervise,
    )


def _build_slo_spec(args):
    """The :class:`~repro.obs.slo.SLOSpec` the flags declare (or None)."""
    if args.slo_p99_ms is None and args.slo_error_rate is None:
        return None
    from repro.obs.slo import SLOObjective, SLOSpec

    objectives = []
    if args.slo_p99_ms is not None:
        objectives.append(
            SLOObjective(
                kind="latency", threshold_ms=args.slo_p99_ms, quantile=99.0
            )
        )
    if args.slo_error_rate is not None:
        objectives.append(
            SLOObjective(kind="error_rate", max_rate=args.slo_error_rate)
        )
    return SLOSpec(
        objectives=tuple(objectives),
        fast_window_s=args.slo_fast_window,
        slow_window_s=args.slo_slow_window,
    )


def run_serving_campaign(args) -> dict:
    """Execute one campaign from parsed CLI args; returns the report."""
    graph = rmat_graph(scale=args.scale, seed=args.graph_seed)
    cluster = paper_cluster(nodes=args.nodes)
    config = BFSConfig.original_ppn8()
    if args.ppn is not None:
        from dataclasses import replace

        config = replace(config, ppn=args.ppn)
    service = BFSService(cluster=cluster)
    registry = MetricsRegistry()

    tracer = None
    if args.trace_out:
        from repro.obs.tracer import SpanTracer

        tracer = SpanTracer()

    # Warm-up: a separate session (first prepared-cache miss) runs one
    # query so kernel dispatch and numpy paths are hot before timing.
    warm = service.session(graph, cluster, config)
    warm.run(int(_distinct_roots(graph, 1, seed=args.seed)[0]))

    session = service.session(graph, cluster, config, tracer=tracer)
    resilience = _build_resilience(args)
    scheduler = BatchScheduler(
        session,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        result_cache=args.result_cache if args.result_cache > 0 else None,
        metrics=registry,
        tracer=tracer,
        resilience=resilience,
    )

    workload = {
        "scale": args.scale,
        "graph_seed": args.graph_seed,
        "graph_digest": session.digest,
        "num_vertices": graph.num_vertices,
        "nodes": args.nodes,
        "ppn": session.prepared.ppn,
        "num_ranks": session.prepared.num_ranks,
        "config": config.label,
        "kernel": args.kernel or os.environ.get("REPRO_KERNEL") or "default",
        "codec": args.codec or os.environ.get("REPRO_CODEC") or "default",
    }
    load = {
        "queries": args.queries,
        "qps": args.qps if args.qps > 0 else None,
        "root_pool": args.root_pool,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "result_cache": args.result_cache,
        "seed": args.seed,
        "deadline_ms": args.deadline_ms,
        "resilience": resilience.as_dict() if resilience else None,
    }

    slo_spec = _build_slo_spec(args)
    slo_monitor = None
    if slo_spec is not None:
        from repro.obs.slo import SLOMonitor

        slo_monitor = SLOMonitor(registry, slo_spec)

    ops = None
    if args.ops_port is not None:
        from repro.obs.ledger import config_fingerprint
        from repro.obs.opsserver import OpsServer

        fingerprint = config_fingerprint(workload)

        def debug_state() -> dict:
            return {
                "schema": "repro.debug/v1",
                "queue_depth": scheduler.queue_depth,
                "in_flight_batches": scheduler.in_flight,
                "scheduler": scheduler.stats(),
                "caches": {"prepared": service.prepared_stats()},
                "config_fingerprint": fingerprint,
                "workload": workload,
            }

        ops = OpsServer(
            metrics=registry,
            health={
                "scheduler": scheduler.health,
                "prepared_cache": lambda: (True, service.prepared_stats()),
            },
            state=debug_state,
            host=args.ops_host,
            port=args.ops_port,
        )

    try:
        if ops is not None:
            ops.start()
            log.info("ops server listening on %s", ops.url)
        loadgen_result = run_load(
            session,
            queries=args.queries,
            qps=args.qps if args.qps > 0 else float("inf"),
            root_pool=args.root_pool,
            seed=args.seed,
            scheduler=scheduler,
            slo_monitor=slo_monitor,
            deadline_ms=args.deadline_ms,
        )
        if ops is not None and args.ops_linger > 0:
            log.info(
                "ops server lingering %.1fs on %s", args.ops_linger, ops.url
            )
            time.sleep(args.ops_linger)
    finally:
        if ops is not None:
            ops.stop()

    slo_report = None
    if slo_monitor is not None:
        slo_report = slo_monitor.evaluate()
        log.info(
            "slo: %s (%d objectives, %d samples)",
            slo_report["verdict"],
            len(slo_report["objectives"]),
            slo_report["samples"],
        )

    if args.trace_out:
        from repro.obs.export import write_serve_trace

        write_serve_trace(args.trace_out, tracer)
        log.info(
            "serving trace (%d spans) written to %s",
            len(tracer.spans),
            args.trace_out,
        )

    comparison = None
    if args.compare_sequential:
        comparison = _compare_sequential(
            service, graph, cluster, config, args
        )

    return build_report(
        workload,
        load,
        loadgen_result,
        service.prepared_stats(),
        comparison=comparison,
        slo=slo_report,
    )


def _report_table(report: dict) -> str:
    """Render the headline numbers as an aligned text table."""
    latency = report["latency_ms"]
    throughput = report["throughput"]
    sched = report["scheduler"]
    caches = report["caches"]
    rows = [
        ("queries", f"{throughput['queries']}"),
        ("throughput (q/s)", f"{throughput['qps_achieved']:.1f}"),
        ("latency p50 (ms)", f"{latency['p50']:.2f}"),
        ("latency p90 (ms)", f"{latency['p90']:.2f}"),
        ("latency p99 (ms)", f"{latency['p99']:.2f}"),
        ("batches", f"{sched['batches']}"),
        ("mean batch size", f"{sched['mean_batch_size']:.1f}"),
        (
            "prepared cache hit rate",
            f"{caches['prepared']['hit_rate']:.2f}",
        ),
        (
            "result cache hit rate",
            f"{caches['results']['hit_rate']:.2f}"
            if caches["results"]
            else "off",
        ),
    ]
    resilience = report.get("resilience")
    if resilience:
        counts = resilience.get("counts") or {}
        rows.append(("rejected", f"{resilience.get('rejected', 0)}"))
        rows.append(
            ("deadline expired", f"{resilience.get('deadline_expired', 0)}")
        )
        rows.append(
            ("stale served", f"{resilience.get('stale_served', 0)}")
        )
        rows.append(("hedges", f"{counts.get('hedges', 0)}"))
        rows.append(("retries", f"{counts.get('retries', 0)}"))
        rows.append(
            ("dispatcher restarts", f"{counts.get('restarts', 0)}")
        )
    comparison = report.get("comparison")
    if comparison:
        rows.append(
            ("sequential (q/s)", f"{comparison['sequential_qps']:.1f}")
        )
        rows.append(("batched (q/s)", f"{comparison['batched_qps']:.1f}"))
        rows.append(("speedup", f"{comparison['speedup']:.2f}x"))
    slo = report.get("slo")
    if slo:
        rows.append(("slo verdict", slo["verdict"]))
        for obj in slo.get("objectives", []):
            rows.append((f"slo {obj['label']}", obj["verdict"]))
    workload = report["workload"]
    title = (
        f"repro-serve: scale {workload['scale']}, "
        f"{workload['nodes']} nodes, {workload['num_ranks']} ranks"
    )
    return format_table(("metric", "value"), rows, title=title)


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.kernel:
        os.environ["REPRO_KERNEL"] = args.kernel
    if args.codec:
        os.environ["REPRO_CODEC"] = args.codec
    if args.max_batch < 1:
        print("--max-batch must be >= 1", file=sys.stderr)
        return 2
    report = run_serving_campaign(args)
    print(_report_table(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("report written to %s", args.json)
    if args.ledger:
        from repro.obs.ledger import default_ledger

        ledger = default_ledger()
        record = ledger.append(
            record_for_serve_report(report, source="repro-serve")
        )
        log.info(
            "ledger: appended %s/%s @%s",
            record.kind,
            record.name,
            record.fingerprint,
        )
        if report.get("slo"):
            from repro.obs.slo import record_for_slo_report

            slo_record = ledger.append(
                record_for_slo_report(report["slo"], source="repro-serve")
            )
            log.info(
                "ledger: appended %s/%s @%s (verdict %s)",
                slo_record.kind,
                slo_record.name,
                slo_record.fingerprint,
                slo_record.labels.get("verdict"),
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
