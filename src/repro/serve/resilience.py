"""Request-layer resilience policy for the serving stack.

The scheduler (:class:`~repro.serve.scheduler.BatchScheduler`) is a
correct-but-optimistic admission queue: left alone it queues without
bound, waits forever on a wedged session, and dies permanently when the
dispatcher task crashes.  This module holds the policy objects that turn
it into a production-shaped service:

* :class:`ResiliencePolicy` — one frozen bundle of knobs: admission
  bounds and the shed policy (``reject`` / ``drop-oldest`` /
  ``degrade``), hedged-retry thresholds, circuit-breaker limits, and
  dispatcher-supervision backoff;
* :class:`CancelToken` — a deadline-carrying cooperative cancellation
  token.  The batched engine (:mod:`repro.core.multisource`) calls
  ``token.check()`` between BFS levels, so an in-flight batch whose
  waiters have all timed out stops traversing instead of finishing work
  nobody will read;
* :class:`CircuitBreaker` — consecutive-failure counting per
  ``(graph digest, config)`` fingerprint with a cooldown, so a
  persistently failing session fast-fails new queries with a structured
  :class:`~repro.errors.ServeOverloadError` instead of queueing them
  into a known-bad batch.

Everything here is policy and bookkeeping — no asyncio, no threads.
The mechanisms live in the scheduler; keeping them apart means the
scheduler's legacy behaviour (``resilience=None``) stays byte-for-byte
what PR 8 shipped, which is also what keeps the no-policy hot path at
its baseline queries/sec.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, fields

from repro.errors import ConfigError, DeadlineExceededError

__all__ = [
    "SHED_POLICIES",
    "CancelToken",
    "CircuitBreaker",
    "ResiliencePolicy",
]

#: Admission-control behaviours when the bounded queue is full.
SHED_POLICIES = ("reject", "drop-oldest", "degrade")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every serving-resilience knob, validated once at construction.

    The defaults describe a service that sheds by rejecting, hedges
    stragglers at the p99 of recent batch durations (but never below
    ``hedge_min_ms``), retries a failed batch once on a fresh session,
    trips the breaker after three consecutive batch failures, and
    supervises the dispatcher with bounded exponential backoff.
    """

    #: Queued queries admitted before the shed policy kicks in
    #: (``None`` = unbounded, the legacy behaviour).
    max_queue_depth: int | None = None
    #: What to do with the overflow: ``reject`` the newcomer,
    #: ``drop-oldest`` from the queue, or enter ``degrade`` mode.
    shed_policy: str = "reject"
    #: Lane cap while degraded (effective ``max_batch`` becomes
    #: ``min(max_batch, degrade_max_batch)``).
    degrade_max_batch: int = 8
    #: How stale a cached result may be and still be served (with a
    #: ``stale`` marker) while degraded.  ``None`` = serve any age.
    degrade_stale_ttl_s: float | None = None

    #: Hedge a straggling batch against a fresh session.
    hedge: bool = True
    #: Percentile of recent batch durations that defines "straggling".
    hedge_percentile: float = 99.0
    #: Floor under the hedge threshold — never hedge sooner than this.
    hedge_min_ms: float = 50.0
    #: Completed batches required before the percentile is trusted.
    hedge_warmup: int = 8
    #: Retry a *failed* batch once against a fresh session.
    retry_failed: bool = True

    #: Consecutive batch failures per fingerprint that open the breaker
    #: (0 disables the breaker).
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before allowing a probe batch.
    breaker_cooldown_s: float = 5.0

    #: Restart a crashed dispatcher instead of staying dead.
    supervise: bool = True
    #: First restart delay; doubled per consecutive crash.
    restart_backoff_s: float = 0.05
    #: Backoff ceiling.
    restart_backoff_max_s: float = 2.0
    #: Consecutive crashes tolerated before the supervisor gives up.
    max_restarts: int = 5

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {SHED_POLICIES}, got "
                f"{self.shed_policy!r}"
            )
        if self.degrade_max_batch < 1:
            raise ConfigError("degrade_max_batch must be >= 1")
        if not 0.0 < self.hedge_percentile <= 100.0:
            raise ConfigError(
                f"hedge_percentile must be in (0, 100], got "
                f"{self.hedge_percentile}"
            )
        if self.hedge_min_ms < 0:
            raise ConfigError("hedge_min_ms must be >= 0")
        if self.hedge_warmup < 1:
            raise ConfigError("hedge_warmup must be >= 1")
        if self.breaker_threshold < 0:
            raise ConfigError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_s <= 0:
            raise ConfigError("breaker_cooldown_s must be positive")
        if self.restart_backoff_s <= 0 or (
            self.restart_backoff_max_s < self.restart_backoff_s
        ):
            raise ConfigError(
                "need 0 < restart_backoff_s <= restart_backoff_max_s"
            )
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")

    def as_dict(self) -> dict:
        """The policy as a plain JSON-serializable dict (for reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CancelToken:
    """Cooperative cancellation with an optional deadline.

    The issuing side calls :meth:`cancel` (or sets ``deadline``, a
    ``clock()`` timestamp); the working side calls :meth:`check` at
    safe points — the batched engine does so between BFS levels — and
    gets a structured :class:`DeadlineExceededError` once the token has
    fired.  Thread-safe: the scheduler cancels from the event loop while
    the engine checks from an executor thread.
    """

    def __init__(self, deadline: float | None = None, *,
                 clock=time.monotonic) -> None:
        self.deadline = deadline
        self.clock = clock
        self._cancelled = threading.Event()

    def cancel(self) -> None:
        """Fire the token (idempotent)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` ran or the deadline passed."""
        if self._cancelled.is_set():
            return True
        if self.deadline is not None and self.clock() >= self.deadline:
            self._cancelled.set()
            return True
        return False

    @property
    def remaining(self) -> float | None:
        """Seconds until the deadline (None without one, min 0.0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the token fired."""
        if self.cancelled:
            raise DeadlineExceededError(
                "query cancelled mid-traversal", where=where or None
            )


class CircuitBreaker:
    """Consecutive-failure breaker keyed by an opaque fingerprint.

    Classic three-state behaviour per key: *closed* (all traffic flows)
    until ``threshold`` consecutive failures, then *open* (``allow``
    returns False) for ``cooldown_s``, then *half-open* — one probe is
    let through; its success closes the breaker, its failure re-opens
    the cooldown.  A zero threshold disables the breaker entirely.
    Thread-safe, clock injectable for tests.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0, *,
                 clock=time.monotonic) -> None:
        if threshold < 0:
            raise ConfigError("breaker threshold must be >= 0")
        if cooldown_s <= 0:
            raise ConfigError("breaker cooldown must be positive")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self._lock = threading.Lock()
        #: key -> [consecutive_failures, opened_at | None, probing]
        self._keys: dict = {}
        self.trips = 0
        self.fast_fails = 0

    def _entry(self, key):
        return self._keys.setdefault(key, [0, None, False])

    def state(self, key) -> str:
        """``closed`` / ``open`` / ``half-open`` for ``key``."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry[1] is None:
                return "closed"
            if self.clock() - entry[1] >= self.cooldown_s:
                return "half-open"
            return "open"

    def allow(self, key) -> bool:
        """Whether a query for ``key`` may proceed right now."""
        if self.threshold == 0:
            return True
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry[1] is None:
                return True
            if self.clock() - entry[1] < self.cooldown_s:
                self.fast_fails += 1
                return False
            # Half-open: admit a single probe; everyone else keeps
            # fast-failing until the probe reports back.
            if entry[2]:
                self.fast_fails += 1
                return False
            entry[2] = True
            return True

    def record_success(self, key) -> None:
        """A batch for ``key`` completed — close the breaker."""
        with self._lock:
            self._keys[key] = [0, None, False]

    def record_failure(self, key) -> None:
        """A batch for ``key`` failed — maybe trip the breaker."""
        if self.threshold == 0:
            return
        with self._lock:
            entry = self._entry(key)
            entry[0] += 1
            entry[2] = False
            if entry[0] >= self.threshold and entry[1] is None:
                entry[1] = self.clock()
                self.trips += 1
            elif entry[1] is not None:
                # A failed half-open probe restarts the cooldown.
                entry[1] = self.clock()

    def snapshot(self) -> dict:
        """Trip/fast-fail counters plus per-key states (for reports)."""
        with self._lock:
            keys = list(self._keys)
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "trips": self.trips,
            "fast_fails": self.fast_fails,
            "states": {repr(k): self.state(k) for k in keys},
        }
