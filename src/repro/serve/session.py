"""The session API: prepared graphs shared across concurrent queries.

A *session* is the unit a client holds while querying one graph under
one configuration.  It splits the old ``BFSEngine`` lifecycle in two:

* the **prepared graph** (partition bounds, per-rank CSR extractions,
  bitmap word layout — :class:`~repro.core.prepared.PreparedGraph`) is
  immutable, expensive, and shared: the service keeps it in a
  thread-safe LRU keyed by ``(graph digest, partition config)``;
* the **session** is lightweight per-client state: a
  :class:`~repro.core.multisource.MultiSourceEngine` bound to the shared
  prepared graph, answering single- and multi-source queries.

Two sessions that differ only in per-query knobs (codec, kernel,
sharing variant, alpha/beta ...) still share one prepared graph — the
cache key deliberately ignores everything but the partition axes.
"""

from __future__ import annotations

from repro.core.config import BFSConfig
from repro.core.engine import BFSResult
from repro.core.multisource import MultiSourceEngine
from repro.core.prepared import PreparedGraph, PreparedGraphCache
from repro.core.timing import CostConstants
from repro.errors import GraphError
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec, paper_cluster

__all__ = ["BFSService", "GraphSession"]


class GraphSession:
    """One client's handle onto a prepared graph.

    Construction is cheap — the expensive partition state arrives as an
    already-built :class:`PreparedGraph` — and the underlying batched
    engine is built lazily on the first query.  A session is *not* safe
    for concurrent queries from multiple threads; the serving scheduler
    serializes batches per session (see
    :class:`~repro.serve.scheduler.BatchScheduler`).
    """

    def __init__(
        self,
        graph: Graph,
        cluster: ClusterSpec,
        config: BFSConfig,
        prepared: PreparedGraph,
        constants: CostConstants = CostConstants(),
        metrics=None,
        tracer=None,
    ) -> None:
        prepared.check(graph, cluster, config)
        self.graph = graph
        self.cluster = cluster
        self.config = config
        self.prepared = prepared
        self.constants = constants
        self.metrics = metrics
        self.tracer = tracer
        self._engine: MultiSourceEngine | None = None

    @property
    def digest(self) -> str:
        """Content digest identifying the session's graph."""
        return self.prepared.digest

    @property
    def engine(self) -> MultiSourceEngine:
        """The batched engine, built on first use and then reused."""
        if self._engine is None:
            self._engine = MultiSourceEngine(
                self.graph,
                self.cluster,
                self.config,
                constants=self.constants,
                prepared=self.prepared,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        return self._engine

    def fresh(self) -> "GraphSession":
        """A new session over the same (shared, immutable) prepared
        graph, with a clean engine.

        The scheduler's hedged retries run against a fresh session so a
        wedged or poisoned engine never taints the retry; construction
        is cheap because the expensive partition state is reused as-is.
        """
        return GraphSession(
            self.graph,
            self.cluster,
            self.config,
            self.prepared,
            constants=self.constants,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    def _check_sources(self, sources) -> None:
        """Reject out-of-range sources at the session boundary.

        Without this, a bad source surfaces as a numpy ``IndexError``
        from deep inside the kernel; clients of the serving API get a
        structured :class:`~repro.errors.GraphError` instead, carrying
        the offending vertex and the graph's vertex count.
        """
        n = self.graph.num_vertices
        for s in sources:
            v = int(s)
            if not 0 <= v < n:
                raise GraphError(
                    f"source vertex {v} out of range for graph with "
                    f"{n} vertices",
                    vertex=v,
                    num_vertices=n,
                )

    def run(self, source: int, validate: bool = False) -> BFSResult:
        """Answer one query (a batch of one lane)."""
        return self.run_batch([source], validate=validate)[0]

    def run_batch(
        self,
        sources,
        validate: bool = False,
        trace_ids=None,
        batch_id: str | None = None,
        cancel=None,
    ) -> list[BFSResult]:
        """Answer up to 64 queries in one batched traversal.

        Results are returned in input order and are bit-identical to
        sequential single-source runs (the
        :mod:`repro.core.multisource` contract).  ``trace_ids`` /
        ``batch_id`` (passed by the serving scheduler when tracing) ride
        down into the engine's batch spans; ``cancel`` is a cooperative
        cancellation token checked between BFS levels.
        """
        self._check_sources(sources)
        return self.engine.run_batch(
            sources, validate=validate, trace_ids=trace_ids,
            batch_id=batch_id, cancel=cancel,
        )


class BFSService:
    """Multi-tenant entry point: hands out sessions over cached
    prepared graphs.

    The service owns (or borrows) a
    :class:`~repro.core.prepared.PreparedGraphCache`; every
    :meth:`session` call routes through it, so concurrent clients
    querying the same graph under the same partition configuration share
    one immutable :class:`PreparedGraph`.  The cache's hit/miss counters
    feed the serving report.
    """

    def __init__(
        self,
        cache: PreparedGraphCache | None = None,
        cluster: ClusterSpec | None = None,
        constants: CostConstants = CostConstants(),
    ) -> None:
        self.cache = cache if cache is not None else PreparedGraphCache()
        self.default_cluster = cluster or paper_cluster(nodes=1)
        self.constants = constants

    def session(
        self,
        graph: Graph,
        cluster: ClusterSpec | None = None,
        config: BFSConfig | None = None,
        metrics=None,
        tracer=None,
    ) -> GraphSession:
        """Open a session for ``graph``; prepares (or reuses) the
        partition state through the service's LRU."""
        cluster = cluster or self.default_cluster
        config = config or BFSConfig.original_ppn8()
        prepared = self.cache.get_or_prepare(graph, cluster, config)
        return GraphSession(
            graph,
            cluster,
            config,
            prepared,
            constants=self.constants,
            metrics=metrics,
            tracer=tracer,
        )

    def prepared_stats(self) -> dict:
        """The prepared-graph cache's hit/miss/occupancy counters."""
        return self.cache.stats()
