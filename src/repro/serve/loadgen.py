"""Deterministic open-loop load generator for the serving layer.

*Open loop* means arrivals are scheduled on a clock (query ``i``
arrives at ``i / qps`` seconds), not gated on completions — the
generator keeps offering load even when the scheduler falls behind, so
queueing delay shows up in the measured latencies instead of silently
throttling the experiment (the classic closed-loop coordinated-omission
trap).

Sources are drawn from a seeded *root pool*: a small pool re-queries
hot roots (exercising the result cache), a pool as large as the query
count makes every query cold.  Everything is deterministic given
``seed``; only wall-clock timings vary run to run.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    GraphError,
    ServeOverloadError,
)
from repro.serve.scheduler import BatchScheduler

__all__ = ["LoadGenResult", "pick_root_pool", "run_load"]


def pick_root_pool(graph, size: int, seed: int = 0) -> np.ndarray:
    """Choose ``size`` query roots among vertices with outgoing edges.

    Zero-degree vertices make degenerate single-vertex traversals, so
    they are excluded (matching the Graph500 sampling convention used
    by :func:`~repro.core.teps.run_graph500`).
    """
    if size < 1:
        raise ConfigError("root pool needs size >= 1")
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise GraphError("graph has no edges to traverse")
    rng = np.random.default_rng(seed)
    return candidates[
        rng.integers(0, candidates.size, size=int(size), dtype=np.int64)
    ]


@dataclass
class LoadGenResult:
    """Everything one load-generation run measured."""

    queries: int
    qps_offered: float
    wall_seconds: float
    latency_ms: dict = field(default_factory=dict)
    scheduler: dict = field(default_factory=dict)
    #: Distinct roots actually queried (diagnostic, not replayed).
    distinct_roots: int = 0
    #: Per-query deadline offered to the scheduler (None = unbounded).
    deadline_ms: float | None = None
    #: Queries shed by admission control (queue full / breaker open).
    rejected: int = 0
    #: Queries whose deadline expired before a result materialised.
    deadline_expired: int = 0

    @property
    def completed(self) -> int:
        """Queries that actually produced a BFS result."""
        return self.queries - self.rejected - self.deadline_expired

    @property
    def qps_achieved(self) -> float:
        """Completed queries per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> dict:
        """The measurements as a plain JSON-ready dict (an unbounded
        burst's offered rate serializes as ``None``, not ``inf``)."""
        offered = self.qps_offered
        return {
            "queries": self.queries,
            "qps_offered": offered if math.isfinite(offered) else None,
            "qps_achieved": self.qps_achieved,
            "wall_seconds": self.wall_seconds,
            "latency_ms": dict(self.latency_ms),
            "scheduler": dict(self.scheduler),
            "distinct_roots": self.distinct_roots,
            "deadline_ms": self.deadline_ms,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_expired": self.deadline_expired,
        }


async def _drive(
    scheduler: BatchScheduler,
    roots,
    qps: float,
    slo_monitor=None,
    deadline_ms: float | None = None,
) -> tuple[float, int, int]:
    """Submit every query at its open-loop arrival time; returns the
    wall-clock seconds from first arrival to last completion plus the
    counts of queries shed by admission control and expired on
    deadline.  Shedding and deadline misses are *expected* outcomes
    under a resilience policy — they are tallied, not raised — while
    any other failure still propagates.

    When an :class:`~repro.obs.slo.SLOMonitor` rides along, a sampler
    task snapshots the registry at the monitor's interval while load
    flows (plus one final sample), so burn-rate windows have points to
    compare.
    """

    async def one(delay: float, root: int):
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            result = await scheduler.submit(root, deadline_ms=deadline_ms)
        except ServeOverloadError:
            return "rejected"
        except DeadlineExceededError:
            return "deadline"
        return "ok" if result is not None else None

    async def sample_forever():
        while True:
            slo_monitor.sample()
            await asyncio.sleep(slo_monitor.interval)

    start = time.perf_counter()
    sampler = None
    async with scheduler:
        if slo_monitor is not None:
            slo_monitor.sample()
            sampler = asyncio.get_running_loop().create_task(
                sample_forever()
            )
        try:
            results = await asyncio.gather(
                *(
                    one(i / qps if qps != float("inf") else 0.0, int(r))
                    for i, r in enumerate(roots)
                )
            )
        finally:
            if sampler is not None:
                sampler.cancel()
                try:
                    await sampler
                except asyncio.CancelledError:
                    pass
                slo_monitor.sample()
    elapsed = time.perf_counter() - start
    if any(r is None for r in results):  # pragma: no cover - invariant
        raise AssertionError("load generator lost a query result")
    rejected = sum(1 for r in results if r == "rejected")
    expired = sum(1 for r in results if r == "deadline")
    return elapsed, rejected, expired


def run_load(
    session,
    queries: int = 100,
    qps: float = float("inf"),
    root_pool: int = 16,
    seed: int = 0,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    result_cache: int | None = 256,
    metrics=None,
    roots=None,
    tracer=None,
    slo_monitor=None,
    scheduler: BatchScheduler | None = None,
    resilience=None,
    deadline_ms: float | None = None,
) -> LoadGenResult:
    """Run one synthetic open-loop campaign against ``session``.

    Builds a :class:`BatchScheduler` with the given knobs (or drives a
    caller-supplied one — the ops-server path wires its own up front so
    health probes can watch it), offers ``queries`` arrivals at ``qps``
    (``inf`` = all at once), and returns the measured
    :class:`LoadGenResult` — latency percentiles come from the
    scheduler's ``serve.latency_ms`` histogram.  An explicit ``roots``
    sequence replaces the pool sampling (the sequential-comparison mode
    replays an exact root list).  ``tracer`` threads request-scoped
    tracing through the scheduler; ``slo_monitor`` is sampled while
    load flows.  ``resilience`` (a
    :class:`~repro.serve.resilience.ResiliencePolicy`) and
    ``deadline_ms`` turn admission control and per-query deadlines on —
    queries shed or expired under them are tallied in the result rather
    than aborting the campaign.
    """
    if qps <= 0:
        raise ConfigError("qps must be positive (use inf for a burst)")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ConfigError("deadline_ms must be positive when set")
    if roots is not None:
        roots = np.asarray(roots, dtype=np.int64)
        queries = int(roots.size)
    if queries < 1:
        raise ConfigError("need at least one query")
    if roots is None:
        pool = pick_root_pool(session.graph, root_pool, seed=seed)
        rng = np.random.default_rng(seed + 1)
        roots = pool[rng.integers(0, pool.size, size=int(queries))]
    if scheduler is None:
        scheduler = BatchScheduler(
            session,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            result_cache=result_cache,
            metrics=metrics,
            tracer=tracer,
            resilience=resilience,
        )
    wall, rejected, expired = asyncio.run(
        _drive(scheduler, roots, qps, slo_monitor, deadline_ms=deadline_ms)
    )
    latency = scheduler.metrics.histogram("serve.latency_ms").summary()
    return LoadGenResult(
        queries=int(queries),
        qps_offered=float(qps),
        wall_seconds=wall,
        latency_ms=latency,
        scheduler=scheduler.stats(),
        distinct_roots=int(np.unique(roots).size),
        deadline_ms=deadline_ms,
        rejected=rejected,
        deadline_expired=expired,
    )
