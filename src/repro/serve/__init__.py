"""BFS-as-a-service: prepared-graph sessions and a concurrent query layer.

The rest of the repository answers one query at a time: build an engine,
traverse, throw the partition away.  This package turns that into a
serving stack for many concurrent ``(graph, source)`` queries:

* :class:`~repro.serve.session.BFSService` /
  :class:`~repro.serve.session.GraphSession` — the session API: prepared
  graphs (immutable CSR partitions) cached in an LRU and shared across
  every query that agrees on the partition configuration;
* :class:`~repro.serve.scheduler.BatchScheduler` — an asyncio admission
  queue that coalesces compatible queries into multi-source batches (up
  to 64 lanes per scan, :mod:`repro.core.multisource`) and memoizes hot
  ``(graph, source)`` results;
* :mod:`repro.serve.loadgen` — a deterministic open-loop load generator;
* :mod:`repro.serve.report` — the ``repro.serve/v1`` latency report and
  its run-ledger record;
* :mod:`repro.serve.cli` — the ``repro-serve`` console entry point,
  including the live-operations flags (``--ops-port`` for the
  :mod:`repro.obs.opsserver` HTTP endpoints, ``--trace-out`` for
  request-scoped tracing, ``--slo-*`` for :mod:`repro.obs.slo`
  burn-rate verdicts).

Batching is a wall-clock optimization only: every result handed back by
the scheduler is bit-identical to a sequential ``run_bfs`` for that
source (see docs/SERVING.md).
"""

from repro.serve.loadgen import LoadGenResult, run_load
from repro.serve.report import SCHEMA, build_report, record_for_serve_report
from repro.serve.resilience import (
    SHED_POLICIES,
    CancelToken,
    CircuitBreaker,
    ResiliencePolicy,
)
from repro.serve.scheduler import BatchScheduler, ResultCache
from repro.serve.session import BFSService, GraphSession

__all__ = [
    "BFSService",
    "GraphSession",
    "BatchScheduler",
    "ResultCache",
    "LoadGenResult",
    "run_load",
    "SCHEMA",
    "build_report",
    "record_for_serve_report",
    "SHED_POLICIES",
    "CancelToken",
    "CircuitBreaker",
    "ResiliencePolicy",
]
