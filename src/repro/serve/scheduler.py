"""Admission scheduler: coalesce concurrent queries into batched scans.

Queries arrive one ``(source)`` at a time; the batched kernel answers up
to 64 of them with one adjacency scan per level
(:mod:`repro.core.multisource`).  The scheduler bridges the two with a
classic admission queue:

* ``submit`` enqueues the query and parks the caller on a future;
* a dispatcher task collects up to ``max_batch`` queued queries,
  waiting at most ``max_wait`` for stragglers once the first arrives
  (the latency/throughput trade-off knobs);
* duplicate sources inside a window are *coalesced* — one lane serves
  every waiter — and completed answers land in a shared
  :class:`ResultCache` LRU so hot ``(graph, source)`` pairs skip the
  traversal entirely.

The batch itself runs in a worker thread (``run_in_executor``) so the
event loop keeps admitting queries while numpy crunches.  Correctness
is inherited, not re-argued: every result is the bit-identical
per-source product of :meth:`MultiSourceEngine.run_batch`, so batching
changes *when* a query is answered, never *what* the answer is.

**Request-scoped tracing**: when the scheduler carries a recording
:class:`~repro.obs.tracer.SpanTracer`, every submission gets a
``trace_id`` (``req-NNNNNN``).  The id is stamped on a retroactive
``serve.queue_wait`` span (enqueue → batch pickup, recorded once the
wait is known), on the batch's ``serve.batch_assembly`` span, and rides
into the engine's ``batch.run`` / ``batch.lane`` / ``batch.level``
spans via the shared ``batch_id`` — one id links the whole
queue → batch → engine chain in the trace export
(:func:`repro.obs.export.request_chain`).  With the default
``NULL_TRACER`` none of this happens: no ids, no timestamps, no spans —
the disabled hot path is the pre-tracing one.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
import time
from collections import OrderedDict

from repro.core.kernels.batched import MAX_LANES
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

__all__ = ["BatchScheduler", "ResultCache"]


class ResultCache:
    """Thread-safe LRU of completed BFS answers.

    Keyed by ``(graph digest, source, config identity)`` so one cache
    can safely back several sessions; results are immutable
    :class:`~repro.core.engine.BFSResult` objects and are shared, not
    copied.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ConfigError("result cache needs maxsize >= 1")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        """The cached result for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, result) -> None:
        """Insert ``result``, evicting the least recently used entry."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss counters and occupancy as a plain dict.

        ``hit_rate`` is 0.0 (not a division error) before the first
        lookup; ``lookups`` carries the denominator so readers can tell
        "no traffic yet" from "all misses".
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "lookups": total,
                "hit_rate": self.hits / total if total else 0.0,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class BatchScheduler:
    """Asyncio admission queue in front of one :class:`GraphSession`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`); ``submit`` may then be awaited from any number of
    concurrent tasks.  The scheduler serializes batches — the session's
    engine is not thread-safe — but admission, coalescing and the result
    cache keep concurrency cheap.
    """

    def __init__(
        self,
        session,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        result_cache: ResultCache | int | None = 256,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        if not 1 <= max_batch <= MAX_LANES:
            raise ConfigError(
                f"max_batch must be in [1, {MAX_LANES}], got {max_batch}"
            )
        if max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0")
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        if isinstance(result_cache, ResultCache):
            self.results = result_cache
        elif result_cache is None:
            self.results = None
        else:
            self.results = ResultCache(maxsize=int(result_cache))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None:
            tracer = getattr(session, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.queries = 0
        self.batches = 0
        self.batched_queries = 0
        self.coalesced = 0
        self._in_flight = 0
        self._trace_seq = itertools.count()
        self._batch_seq = itertools.count()
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        # Config identity for result-cache keys shared across sessions.
        self._config_key = repr(session.config)

    # ---- lifecycle -------------------------------------------------------

    async def start(self) -> "BatchScheduler":
        """Start the dispatcher task (idempotent)."""
        if self._task is None:
            self._queue = asyncio.Queue()
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch()
            )
        return self

    async def stop(self) -> None:
        """Drain the admission queue, then cancel the dispatcher."""
        if self._task is None:
            return
        await self._queue.join()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        self._queue = None

    async def __aenter__(self) -> "BatchScheduler":
        """``async with`` support: start on entry."""
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """``async with`` support: drain and stop on exit."""
        await self.stop()

    # ---- the query path --------------------------------------------------

    def _key(self, source: int) -> tuple:
        return (self.session.digest, int(source), self._config_key)

    async def submit(self, source: int):
        """Answer one query; parks until its batch completes.

        Returns the :class:`~repro.core.engine.BFSResult` for
        ``source`` — bit-identical to a sequential single-source run.
        """
        if self._task is None:
            raise ConfigError(
                "scheduler is not running; use 'async with scheduler:' "
                "or await scheduler.start() first"
            )
        self.queries += 1
        self.metrics.counter("serve.requests_total").inc()
        t0 = time.perf_counter()
        tracer = self.tracer
        trace_id = (
            f"req-{next(self._trace_seq):06d}" if tracer.enabled else None
        )
        if self.results is not None:
            cached = self.results.get(self._key(source))
            if cached is not None:
                self.metrics.counter("serve.result_cache.hits").inc()
                self.metrics.histogram("serve.latency_ms").observe(
                    (time.perf_counter() - t0) * 1e3
                )
                if tracer.enabled:
                    tracer.instant(
                        "serve.cache_hit",
                        cat="request",
                        trace_id=trace_id,
                        source=int(source),
                    )
                return cached
            self.metrics.counter("serve.result_cache.misses").inc()
        future = asyncio.get_running_loop().create_future()
        enqueue_ns = time.perf_counter_ns() if tracer.enabled else 0
        await self._queue.put((int(source), future, trace_id, enqueue_ns))
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        try:
            result = await future
        except Exception:
            self.metrics.counter("serve.errors_total").inc()
            raise
        self.metrics.histogram("serve.latency_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return result

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.max_wait
            while len(batch) < self.max_batch:
                try:
                    # Already-queued work joins the batch without waiting.
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                batch.append(item)
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
            await self._run_batch(loop, batch)
            for _ in batch:
                self._queue.task_done()

    async def _run_batch(self, loop, batch) -> None:
        # Coalesce duplicate sources: one lane answers every waiter.
        # Each lane carries every coalesced waiter's trace_id so the
        # trace stays complete under coalescing.
        waiters: OrderedDict[int, list] = OrderedDict()
        traces: OrderedDict[int, list] = OrderedDict()
        for source, future, trace_id, enqueue_ns in batch:
            waiters.setdefault(source, []).append(future)
            traces.setdefault(source, []).append(trace_id)
        sources = list(waiters)
        self.batches += 1
        self.batched_queries += len(batch)
        self.coalesced += len(batch) - len(sources)
        self.metrics.histogram("serve.batch_size").observe(len(sources))
        tracer = self.tracer
        if tracer.enabled:
            batch_id = f"batch-{next(self._batch_seq):05d}"
            now_ns = time.perf_counter_ns()
            for source, future, trace_id, enqueue_ns in batch:
                # The wait is only known at pickup — record it
                # retroactively, linked by trace_id and batch_id.
                tracer.record_span(
                    "serve.queue_wait",
                    cat="request",
                    start_ns=enqueue_ns,
                    end_ns=now_ns,
                    trace_id=trace_id,
                    source=int(source),
                    batch_id=batch_id,
                )
            tracer.record_span(
                "serve.batch_assembly",
                cat="serve",
                start_ns=min(item[3] for item in batch),
                end_ns=now_ns,
                batch_id=batch_id,
                sources=list(sources),
                trace_ids=[t for ts in traces.values() for t in ts],
            )
            # Trace kwargs go only to trace-aware sessions; the
            # untraced call below keeps stub sessions with a plain
            # run_batch(sources) signature working.
            run = functools.partial(
                self.session.run_batch,
                sources,
                trace_ids=[tuple(traces[s]) for s in sources],
                batch_id=batch_id,
            )
        else:
            run = functools.partial(self.session.run_batch, sources)
        self._in_flight += 1
        self.metrics.gauge("serve.inflight_batches").set(self._in_flight)
        try:
            results = await loop.run_in_executor(None, run)
        except Exception as exc:  # propagate to every waiter
            for futures in waiters.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        finally:
            self._in_flight -= 1
            self.metrics.gauge("serve.inflight_batches").set(self._in_flight)
        for source, result in zip(sources, results):
            if self.results is not None:
                self.results.put(self._key(source), result)
            for future in waiters[source]:
                if not future.done():
                    future.set_result(result)

    # ---- reporting -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a batch (0 when stopped)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def in_flight(self) -> int:
        """Batches currently running in the executor."""
        return self._in_flight

    @property
    def running(self) -> bool:
        """Whether the dispatcher task is alive."""
        return self._task is not None and not self._task.done()

    def health(self) -> tuple[bool, dict]:
        """Liveness probe for the ops server's ``/healthz``.

        Healthy while idle (not yet started, or cleanly stopped) and
        while the dispatcher runs; unhealthy only when the dispatcher
        task died — crashed with an exception, or exited on its own
        (the loop is infinite; returning at all is a bug).
        """
        task = self._task
        if task is None:
            return True, {"state": "idle"}
        if not task.done():
            return True, {
                "state": "running",
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
            }
        if task.cancelled():
            return True, {"state": "stopped"}
        exc = task.exception()
        if exc is not None:
            return False, {"state": "crashed", "error": repr(exc)}
        return False, {"state": "exited"}

    def stats(self) -> dict:
        """Admission/batching counters (plus result-cache stats)."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "coalesced": self.coalesced,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "mean_batch_size": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1e3,
            "result_cache": (
                self.results.stats() if self.results is not None else None
            ),
        }
