"""Admission scheduler: coalesce concurrent queries into batched scans.

Queries arrive one ``(source)`` at a time; the batched kernel answers up
to 64 of them with one adjacency scan per level
(:mod:`repro.core.multisource`).  The scheduler bridges the two with a
classic admission queue:

* ``submit`` enqueues the query and parks the caller on a future;
* a dispatcher task collects up to ``max_batch`` queued queries,
  waiting at most ``max_wait`` for stragglers once the first arrives
  (the latency/throughput trade-off knobs);
* duplicate sources inside a window are *coalesced* — one lane serves
  every waiter — and completed answers land in a shared
  :class:`ResultCache` LRU so hot ``(graph, source)`` pairs skip the
  traversal entirely.

The batch itself runs in a worker thread (``run_in_executor``) so the
event loop keeps admitting queries while numpy crunches.  Correctness
is inherited, not re-argued: every result is the bit-identical
per-source product of :meth:`MultiSourceEngine.run_batch`, so batching
changes *when* a query is answered, never *what* the answer is.

**Request-scoped tracing**: when the scheduler carries a recording
:class:`~repro.obs.tracer.SpanTracer`, every submission gets a
``trace_id`` (``req-NNNNNN``).  The id is stamped on a retroactive
``serve.queue_wait`` span (enqueue → batch pickup, recorded once the
wait is known), on the batch's ``serve.batch_assembly`` span, and rides
into the engine's ``batch.run`` / ``batch.lane`` / ``batch.level``
spans via the shared ``batch_id`` — one id links the whole
queue → batch → engine chain in the trace export
(:func:`repro.obs.export.request_chain`).  With the default
``NULL_TRACER`` none of this happens: no ids, no timestamps, no spans —
the disabled hot path is the pre-tracing one.

**Resilience** (optional, via a
:class:`~repro.serve.resilience.ResiliencePolicy`): per-request
deadlines shed expired queries at batch pickup
(``serve.shed_total{reason=deadline}``) and cancel whole in-flight
batches between BFS levels; a bounded admission queue sheds overflow by
policy (reject / drop-oldest / degrade); straggling batches are hedged
against a fresh session and failed batches retried once; repeated
failures per (graph, config) fingerprint trip a circuit breaker that
fast-fails with :class:`~repro.errors.ServeOverloadError`; and a
supervisor task restarts a crashed dispatcher with bounded exponential
backoff, replaying un-acked queue entries exactly once.  With
``resilience=None`` every one of these paths is skipped and the
scheduler behaves exactly as before.
"""

from __future__ import annotations

import asyncio
import collections
import functools
import inspect
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.kernels.batched import MAX_LANES
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    ServeOverloadError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.resilience import CancelToken, CircuitBreaker, ResiliencePolicy

__all__ = ["BatchScheduler", "ResultCache"]


def _estimate_result_nbytes(result) -> int:
    """Estimated resident size of one cached answer.

    A :class:`~repro.core.engine.BFSResult` is dominated by its parent
    array; everything else (counts, timing) is a small constant.  Stub
    results without arrays cost the constant alone.
    """
    parent = getattr(result, "parent", None)
    nbytes = getattr(parent, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + 256
    return 256


def _swallow(future) -> None:
    """Retrieve an abandoned racer's exception so asyncio stays quiet."""
    if not future.cancelled():
        future.exception()


class ResultCache:
    """Thread-safe LRU of completed BFS answers.

    Keyed by ``(graph digest, source, config identity)`` so one cache
    can safely back several sessions; results are immutable
    :class:`~repro.core.engine.BFSResult` objects and are shared, not
    copied.

    Beyond the entry-count bound, ``max_bytes`` optionally bounds the
    *estimated* resident bytes (parent arrays dominate), so degrade-mode
    stale serving cannot grow memory without limit.  ``ttl_s`` declares
    when an entry stops being fresh: :meth:`get` then treats older
    entries as misses, while :meth:`get_stale` (the degrade path) still
    serves them — explicitly marked — up to ``max_age_s``.
    """

    def __init__(
        self,
        maxsize: int = 256,
        max_bytes: int | None = None,
        ttl_s: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if maxsize < 1:
            raise ConfigError("result cache needs maxsize >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError("result cache max_bytes must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigError("result cache ttl_s must be positive")
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.clock = clock
        self._lock = threading.Lock()
        #: key -> (result, stored_at, estimated_nbytes)
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0

    def _evict_over_bounds(self) -> None:
        while len(self._entries) > self.maxsize:
            _, (_, _, nbytes) = self._entries.popitem(last=False)
            self._bytes -= nbytes
        if self.max_bytes is not None:
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, _, nbytes) = self._entries.popitem(last=False)
                self._bytes -= nbytes

    def get(self, key: tuple):
        """The cached *fresh* result for ``key``, or ``None`` (a miss).

        With a ``ttl_s`` configured, entries older than it count as
        misses here but stay resident for :meth:`get_stale`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            result, stored_at, _ = entry
            if self.ttl_s is not None and (
                self.clock() - stored_at > self.ttl_s
            ):
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def get_stale(self, key: tuple, max_age_s: float | None = None):
        """A possibly-stale result for ``key`` (degrade-mode serving).

        Returns ``(result, age_s, stale)`` — ``stale`` is True when the
        entry is past its ``ttl_s`` — or ``None`` when the key is
        absent or older than ``max_age_s``.  Counts ``stale_hits`` when
        an expired entry is served.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            result, stored_at, _ = entry
            age = max(0.0, self.clock() - stored_at)
            if max_age_s is not None and age > max_age_s:
                return None
            stale = self.ttl_s is not None and age > self.ttl_s
            if stale:
                self.stale_hits += 1
            self._entries.move_to_end(key)
            return result, age, stale

    def put(self, key: tuple, result) -> None:
        """Insert ``result``, evicting least-recently-used entries past
        the entry-count and (when configured) byte bounds."""
        nbytes = _estimate_result_nbytes(result)
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (result, self.clock(), nbytes)
            self._entries.move_to_end(key)
            self._bytes += nbytes
            self._evict_over_bounds()

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (poison detection); True when it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[2]
            return True

    def stats(self) -> dict:
        """Hit/miss counters and occupancy as a plain dict.

        ``hit_rate`` is 0.0 (not a division error) before the first
        lookup; ``lookups`` carries the denominator so readers can tell
        "no traffic yet" from "all misses".
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "lookups": total,
                "hit_rate": self.hits / total if total else 0.0,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
                "stale_hits": self.stale_hits,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class _Query:
    """One admitted query waiting for (or riding) a batch."""

    source: int
    future: asyncio.Future
    trace_id: str | None = None
    enqueue_ns: int = 0
    #: ``time.monotonic()`` timestamp the caller stops caring; ``None``
    #: = no deadline.
    deadline: float | None = None
    #: Already replayed once across a dispatcher restart — a second
    #: loss rejects instead of replaying again (exactly-once replay).
    replayed: bool = field(default=False, compare=False)


class BatchScheduler:
    """Asyncio admission queue in front of one :class:`GraphSession`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`); ``submit`` may then be awaited from any number of
    concurrent tasks.  The scheduler serializes batches — the session's
    engine is not thread-safe — but admission, coalescing and the result
    cache keep concurrency cheap.

    ``resilience`` (a :class:`ResiliencePolicy`) switches on deadlines,
    load shedding, hedged retries, the circuit breaker and dispatcher
    supervision; ``faults`` accepts a
    :class:`~repro.faults.serveinject.ServeFaultInjector` whose
    dispatcher-kill and cache-poison hooks the chaos campaign drives.
    Both default to off, leaving the legacy hot path untouched.
    """

    def __init__(
        self,
        session,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        result_cache: ResultCache | int | None = 256,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        resilience: ResiliencePolicy | None = None,
        faults=None,
    ) -> None:
        if not 1 <= max_batch <= MAX_LANES:
            raise ConfigError(
                f"max_batch must be in [1, {MAX_LANES}], got {max_batch}"
            )
        if max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0")
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        if isinstance(result_cache, ResultCache):
            self.results = result_cache
        elif result_cache is None:
            self.results = None
        else:
            self.results = ResultCache(maxsize=int(result_cache))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None:
            tracer = getattr(session, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.resilience = resilience
        self.queries = 0
        self.batches = 0
        self.batched_queries = 0
        self.coalesced = 0
        self._in_flight = 0
        self._trace_seq = itertools.count()
        self._batch_seq = itertools.count()
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        # Config identity for result-cache keys shared across sessions.
        self._config_key = repr(session.config)
        # ---- resilience state (all inert when resilience is None) ----
        self._faults = faults
        self._fingerprint = (session.digest, self._config_key)
        self._breaker = (
            CircuitBreaker(
                resilience.breaker_threshold, resilience.breaker_cooldown_s
            )
            if resilience is not None and resilience.breaker_threshold > 0
            else None
        )
        try:
            self._session_takes_cancel = (
                "cancel" in inspect.signature(session.run_batch).parameters
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic stubs
            self._session_takes_cancel = False
        self._resil_counts: collections.Counter = collections.Counter()
        self._degraded = False
        self._supervisor: asyncio.Task | None = None
        self._crash_streak = 0
        self._failed_exc: BaseException | None = None
        self._stopping = False
        self._unacked: list[_Query] = []

    # ---- lifecycle -------------------------------------------------------

    async def start(self) -> "BatchScheduler":
        """Start the dispatcher task (idempotent)."""
        if self._task is None:
            self._queue = asyncio.Queue()
            self._stopping = False
            self._failed_exc = None
            self._crash_streak = 0
            loop = asyncio.get_running_loop()
            self._task = loop.create_task(self._dispatch())
            if self.resilience is not None and self.resilience.supervise:
                self._supervisor = loop.create_task(self._supervise())
        return self

    async def stop(self) -> None:
        """Drain the admission queue, then cancel the dispatcher.

        Every still-pending future gets a terminal result: queued work
        is either processed by the (live) dispatcher or — when the
        dispatcher is dead or dies mid-drain — rejected with a
        structured :class:`ServeOverloadError` instead of hanging.
        """
        if self._task is None:
            return
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        task = self._task
        if task.done():
            self._reject_pending("scheduler stopped with dispatcher down")
        else:
            join = asyncio.get_running_loop().create_task(self._queue.join())
            done, _ = await asyncio.wait(
                {join, task}, return_when=asyncio.FIRST_COMPLETED
            )
            if join not in done:
                # The dispatcher died mid-drain; nothing will ever
                # finish the queue — reject the leftovers.
                join.cancel()
                try:
                    await join
                except asyncio.CancelledError:
                    pass
                self._reject_pending("dispatcher died while draining")
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        except Exception:
            pass  # crash already surfaced via health()/rejections
        self._task = None
        self._queue = None
        self._stopping = False
        self._set_degraded(False)

    def _reject_pending(self, message: str) -> None:
        """Reject every un-acked and still-queued query (stop path)."""
        unacked, self._unacked = self._unacked, []
        pending = list(unacked)
        if self._queue is not None:
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
                self._queue.task_done()
        for q in pending:
            if not q.future.done():
                q.future.set_exception(
                    ServeOverloadError(
                        message, reason="shutdown", source=q.source
                    )
                )
                self.metrics.counter(
                    "serve.shed_total", reason="shutdown"
                ).inc()

    async def __aenter__(self) -> "BatchScheduler":
        """``async with`` support: start on entry."""
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """``async with`` support: drain and stop on exit."""
        await self.stop()

    # ---- supervision -----------------------------------------------------

    async def _supervise(self) -> None:
        """Restart a crashed dispatcher with bounded exponential backoff.

        Un-acked queue entries (picked up but not resolved when the
        dispatcher died) are replayed exactly once; a query lost twice
        is rejected with ``reason=replay_exhausted``.  After
        ``max_restarts`` consecutive crashes (a completed batch resets
        the streak) the supervisor gives up and fails every pending
        query.
        """
        policy = self.resilience
        backoff = policy.restart_backoff_s
        while True:
            task = self._task
            if task is None:
                return
            try:
                await asyncio.wait({task})
            except asyncio.CancelledError:
                return
            if self._stopping or task.cancelled():
                return
            exc = task.exception()
            if exc is None:  # pragma: no cover - the loop is infinite
                return
            self._crash_streak += 1
            if self._crash_streak == 1:
                backoff = policy.restart_backoff_s
            if self._crash_streak > policy.max_restarts:
                self._failed_exc = exc
                self._reject_pending(
                    "dispatcher failed permanently "
                    f"({self._crash_streak} consecutive crashes)"
                )
                return
            self._resil_counts["restarts"] += 1
            self.metrics.counter("serve.dispatcher_restarts_total").inc()
            try:
                await asyncio.sleep(backoff)
            except asyncio.CancelledError:
                return
            backoff = min(backoff * 2.0, policy.restart_backoff_max_s)
            self._replay_unacked()
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch()
            )

    def _replay_unacked(self) -> None:
        """Re-enqueue queries the dead dispatcher had picked up.

        Each entry was ``get()``-ed without a matching ``task_done()``;
        balancing that here keeps ``queue.join()`` (the stop path)
        consistent.  Replay happens at most once per query.
        """
        unacked, self._unacked = self._unacked, []
        for q in unacked:
            self._queue.task_done()
            if q.future.done():
                continue
            if q.replayed:
                q.future.set_exception(
                    ServeOverloadError(
                        "query lost twice across dispatcher restarts",
                        reason="replay_exhausted",
                        source=q.source,
                    )
                )
                self.metrics.counter(
                    "serve.shed_total", reason="replay_exhausted"
                ).inc()
                continue
            q.replayed = True
            self._resil_counts["replayed"] += 1
            self.metrics.counter("serve.replayed_total").inc()
            self._queue.put_nowait(q)

    # ---- the query path --------------------------------------------------

    def _key(self, source: int) -> tuple:
        return (self.session.digest, int(source), self._config_key)

    def _set_degraded(self, flag: bool) -> None:
        if flag == self._degraded:
            return
        self._degraded = flag
        self.metrics.gauge("serve.degraded").set(1.0 if flag else 0.0)
        if flag:
            self._resil_counts["degrade_entries"] += 1

    def _shed(self, reason: str, message: str, **context):
        """Count one shed and build its structured rejection."""
        self.metrics.counter("serve.shed_total", reason=reason).inc()
        self._resil_counts[f"shed_{reason}"] += 1
        return ServeOverloadError(message, reason=reason, **context)

    def _admit(self, source: int) -> None:
        """Admission control: bounded queue + shed policy + breaker.

        Raises the structured rejection for the *caller's* query
        (reject policy, open breaker); the drop-oldest policy instead
        rejects the queue's oldest waiter and admits the newcomer.
        """
        policy = self.resilience
        if self._breaker is not None and not self._breaker.allow(
            self._fingerprint
        ):
            self.metrics.counter("serve.errors_total").inc()
            raise self._shed(
                "circuit_open",
                "circuit breaker open for this graph/config",
                digest=self.session.digest,
            )
        if policy.max_queue_depth is None:
            return
        depth = self._queue.qsize()
        if depth < policy.max_queue_depth:
            return
        if policy.shed_policy == "reject":
            self.metrics.counter("serve.errors_total").inc()
            raise self._shed(
                "queue_full",
                "admission queue full",
                queue_depth=depth,
                max_queue_depth=policy.max_queue_depth,
            )
        if policy.shed_policy == "drop-oldest":
            try:
                victim = self._queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - raced drain
                return
            self._queue.task_done()
            if not victim.future.done():
                victim.future.set_exception(
                    self._shed(
                        "shed",
                        "evicted from the admission queue by newer work",
                        source=victim.source,
                        queue_depth=depth,
                    )
                )
            return
        # degrade: admit, but flip into degraded operation.
        self._set_degraded(True)

    async def submit(self, source: int, deadline_ms: float | None = None):
        """Answer one query; parks until its batch completes.

        Returns the :class:`~repro.core.engine.BFSResult` for
        ``source`` — bit-identical to a sequential single-source run.
        ``deadline_ms`` (requires a :class:`ResiliencePolicy`) bounds
        how long the caller will wait: a query still queued past its
        deadline is rejected with :class:`DeadlineExceededError`, and an
        in-flight batch whose waiters all expired cancels between BFS
        levels.
        """
        if self._task is None:
            raise ConfigError(
                "scheduler is not running; use 'async with scheduler:' "
                "or await scheduler.start() first"
            )
        self.queries += 1
        self.metrics.counter("serve.requests_total").inc()
        t0 = time.perf_counter()
        tracer = self.tracer
        trace_on = tracer.enabled and not self._degraded
        trace_id = f"req-{next(self._trace_seq):06d}" if trace_on else None
        if self.results is not None:
            cached = self.results.get(self._key(source))
            if cached is not None and self._poisoned(source, cached):
                cached = None
            if cached is not None:
                self.metrics.counter("serve.result_cache.hits").inc()
                self.metrics.histogram("serve.latency_ms").observe(
                    (time.perf_counter() - t0) * 1e3
                )
                if trace_on:
                    tracer.instant(
                        "serve.cache_hit",
                        cat="request",
                        trace_id=trace_id,
                        source=int(source),
                    )
                return cached
            self.metrics.counter("serve.result_cache.misses").inc()
            if self._degraded:
                stale = self.results.get_stale(
                    self._key(source),
                    max_age_s=self.resilience.degrade_stale_ttl_s,
                )
                if stale is not None:
                    result, _age, _ = stale
                    if not self._poisoned(source, result):
                        self._resil_counts["stale_served"] += 1
                        self.metrics.counter(
                            "serve.stale_served_total"
                        ).inc()
                        self.metrics.histogram("serve.latency_ms").observe(
                            (time.perf_counter() - t0) * 1e3
                        )
                        return result
        if self.resilience is not None:
            self._admit(source)
        deadline = (
            time.monotonic() + float(deadline_ms) / 1e3
            if deadline_ms is not None
            else None
        )
        future = asyncio.get_running_loop().create_future()
        enqueue_ns = time.perf_counter_ns() if trace_on else 0
        await self._queue.put(
            _Query(int(source), future, trace_id, enqueue_ns, deadline)
        )
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        try:
            result = await future
        except Exception:
            self.metrics.counter("serve.errors_total").inc()
            raise
        self.metrics.histogram("serve.latency_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return result

    def _poisoned(self, source: int, result) -> bool:
        """Detect (and drop) a corrupted cache entry before serving it.

        A cached answer whose ``root`` disagrees with the queried source
        cannot be right — the serve-chaos cache-poison fault produces
        exactly that shape.  Detection costs one ``getattr`` per cache
        hit; results without a ``root`` attribute (test stubs) are
        trusted as-is.
        """
        root = getattr(result, "root", None)
        if root is None or int(root) == int(source):
            return False
        self.results.invalidate(self._key(source))
        self._resil_counts["poison_detected"] += 1
        self.metrics.counter("serve.cache_poison_detected_total").inc()
        return True

    def _effective_max_batch(self) -> int:
        if self._degraded:
            return min(self.max_batch, self.resilience.degrade_max_batch)
        return self.max_batch

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        policy = self.resilience
        while True:
            first = await self._queue.get()
            batch = [first]
            limit = self._effective_max_batch()
            deadline = loop.time() + self.max_wait
            while len(batch) < limit:
                try:
                    # Already-queued work joins the batch without waiting.
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                batch.append(item)
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
            if policy is not None:
                batch = self._drop_expired(batch)
                if not batch:
                    continue
            self._unacked = batch
            if self._faults is not None:
                # The injected dispatcher kill: raising here crashes
                # the dispatcher task with the batch un-acked, which is
                # exactly what supervision + replay must absorb.
                self._faults.dispatcher_tick()
            await self._run_batch(loop, batch)
            for _ in batch:
                self._queue.task_done()
            self._unacked = []
            if (
                policy is not None
                and self._degraded
                and policy.shed_policy == "degrade"
                and self._queue.qsize()
                <= max(1, (policy.max_queue_depth or 2) // 2)
            ):
                self._set_degraded(False)

    def _drop_expired(self, batch: list) -> list:
        """Reject queries whose deadline passed while they queued."""
        now = time.monotonic()
        keep = []
        for q in batch:
            if q.deadline is not None and now >= q.deadline:
                self._queue.task_done()
                self.metrics.counter(
                    "serve.shed_total", reason="deadline"
                ).inc()
                self._resil_counts["shed_deadline"] += 1
                if not q.future.done():
                    q.future.set_exception(
                        DeadlineExceededError(
                            "deadline expired in the admission queue",
                            source=q.source,
                        )
                    )
            else:
                keep.append(q)
        return keep

    async def _run_batch(self, loop, batch) -> None:
        # Coalesce duplicate sources: one lane answers every waiter.
        # Each lane carries every coalesced waiter's trace_id so the
        # trace stays complete under coalescing.
        waiters: OrderedDict[int, list] = OrderedDict()
        traces: OrderedDict[int, list] = OrderedDict()
        for q in batch:
            waiters.setdefault(q.source, []).append(q.future)
            traces.setdefault(q.source, []).append(q.trace_id)
        sources = list(waiters)
        self.batches += 1
        self.batched_queries += len(batch)
        self.coalesced += len(batch) - len(sources)
        self.metrics.histogram("serve.batch_size").observe(len(sources))
        tracer = self.tracer
        # Degrade mode skips trace recording — one less cost under
        # pressure, and the ids were never issued at submit anyway.
        if tracer.enabled and not self._degraded:
            batch_id = f"batch-{next(self._batch_seq):05d}"
            now_ns = time.perf_counter_ns()
            for q in batch:
                # The wait is only known at pickup — record it
                # retroactively, linked by trace_id and batch_id.
                tracer.record_span(
                    "serve.queue_wait",
                    cat="request",
                    start_ns=q.enqueue_ns,
                    end_ns=now_ns,
                    trace_id=q.trace_id,
                    source=int(q.source),
                    batch_id=batch_id,
                )
            tracer.record_span(
                "serve.batch_assembly",
                cat="serve",
                start_ns=min(q.enqueue_ns for q in batch),
                end_ns=now_ns,
                batch_id=batch_id,
                sources=list(sources),
                trace_ids=[t for ts in traces.values() for t in ts],
            )
            # Trace kwargs go only to trace-aware sessions; the
            # untraced call below keeps stub sessions with a plain
            # run_batch(sources) signature working.
            run = functools.partial(
                self.session.run_batch,
                sources,
                trace_ids=[tuple(traces[s]) for s in sources],
                batch_id=batch_id,
            )
        else:
            run = functools.partial(self.session.run_batch, sources)
        if (
            self.resilience is not None
            and self._session_takes_cancel
            and all(q.deadline is not None for q in batch)
        ):
            # Cooperative cancellation: once every waiter's deadline
            # passed, the engine stops between BFS levels.
            token = CancelToken(deadline=max(q.deadline for q in batch))
            run = functools.partial(run, cancel=token)
        self._in_flight += 1
        self.metrics.gauge("serve.inflight_batches").set(self._in_flight)
        t0 = time.perf_counter()
        try:
            if self.resilience is None:
                results = await loop.run_in_executor(None, run)
            else:
                results = await self._execute(loop, run, sources)
        except Exception as exc:  # propagate to every waiter
            for futures in waiters.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        finally:
            self._in_flight -= 1
            self.metrics.gauge("serve.inflight_batches").set(self._in_flight)
        self.metrics.histogram("serve.batch_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        self._crash_streak = 0
        for source, result in zip(sources, results):
            if self.results is not None:
                cached = result
                if self._faults is not None:
                    cached = self._faults.maybe_poison(result)
                self.results.put(self._key(source), cached)
            for future in waiters[source]:
                if not future.done():
                    future.set_result(result)

    # ---- hedged execution ------------------------------------------------

    def _fresh_session(self):
        """A clean session for hedges/retries (the stub fallback is the
        primary itself — good enough for tests without ``fresh()``)."""
        fresh = getattr(self.session, "fresh", None)
        return fresh() if callable(fresh) else self.session

    def _hedge_threshold_s(self) -> float | None:
        """Seconds after which a running batch counts as straggling.

        The configured percentile of the ``serve.batch_ms`` history
        (floored at ``hedge_min_ms``); ``None`` until ``hedge_warmup``
        batches have completed, so cold starts are never hedged.
        """
        policy = self.resilience
        hist = self.metrics.histogram("serve.batch_ms")
        if hist.count < policy.hedge_warmup:
            return None
        threshold_ms = max(
            hist.percentile(policy.hedge_percentile), policy.hedge_min_ms
        )
        return threshold_ms / 1e3

    async def _execute(self, loop, run, sources):
        """Run one batch with hedging, retry-once and breaker updates."""
        policy = self.resilience
        key = self._fingerprint
        primary = loop.run_in_executor(None, run)
        threshold_s = self._hedge_threshold_s() if policy.hedge else None
        if threshold_s is not None:
            done, _ = await asyncio.wait({primary}, timeout=threshold_s)
            if not done:
                self._resil_counts["hedges"] += 1
                self.metrics.counter("serve.hedge_total").inc()
                hedge_session = self._fresh_session()
                hedge = loop.run_in_executor(
                    None,
                    functools.partial(hedge_session.run_batch, list(sources)),
                )
                return await self._race(primary, hedge, hedge_session, key)
        try:
            results = await primary
        except asyncio.CancelledError:
            raise
        except DeadlineExceededError:
            # A cooperative cancel is the deadline working, not the
            # session failing — the breaker must not count it.
            raise
        except Exception:
            if not policy.retry_failed:
                self._record_failure(key)
                raise
            self._resil_counts["retries"] += 1
            self.metrics.counter("serve.retry_total").inc()
            retry_session = self._fresh_session()
            try:
                results = await loop.run_in_executor(
                    None,
                    functools.partial(retry_session.run_batch, list(sources)),
                )
            except Exception:
                self._record_failure(key)
                raise
        self._record_success(key)
        return results

    async def _race(self, primary, hedge, hedge_session, key):
        """First successful completion of primary vs hedge wins.

        The loser keeps running in the executor (thread pools cannot be
        preempted); its eventual result or exception is discarded.  When
        the hedge wins while the primary still runs, the hedge session
        is *adopted* as the scheduler's primary — the abandoned run
        still owns the old session's engine, which is not safe for
        concurrent batches.
        """
        pending = {primary, hedge}
        last_exc: BaseException | None = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for fut in sorted(done, key=lambda f: f is hedge):
                try:
                    results = fut.result()
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    last_exc = exc
                    continue
                if fut is hedge:
                    self._resil_counts["hedge_wins"] += 1
                    self.metrics.counter("serve.hedge_wins_total").inc()
                    if primary in pending:
                        self.session = hedge_session
                for loser in pending:
                    loser.add_done_callback(_swallow)
                self._record_success(key)
                return results
        self._record_failure(key)
        raise last_exc

    def _record_success(self, key) -> None:
        if self._breaker is not None:
            self._breaker.record_success(key)

    def _record_failure(self, key) -> None:
        self._resil_counts["batch_failures"] += 1
        if self._breaker is not None:
            self._breaker.record_failure(key)

    # ---- reporting -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a batch (0 when stopped)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def in_flight(self) -> int:
        """Batches currently running in the executor."""
        return self._in_flight

    @property
    def degraded(self) -> bool:
        """Whether degrade-mode shedding is currently active."""
        return self._degraded

    @property
    def running(self) -> bool:
        """Whether the dispatcher task is alive."""
        return self._task is not None and not self._task.done()

    def health(self) -> tuple[bool, dict]:
        """Liveness probe for the ops server's ``/healthz``.

        Healthy while idle (not yet started, or cleanly stopped) and
        while the dispatcher runs; a supervised dispatcher that crashed
        and awaits restart reports *healthy-but-degraded* (the
        ``degraded`` → ``healthy`` transition the ops server surfaces);
        unhealthy only when the dispatcher is dead for good — crashed
        unsupervised, exited, or the supervisor gave up.
        """
        task = self._task
        if task is None:
            return True, {"state": "idle"}
        if self._failed_exc is not None:
            return False, {
                "state": "failed",
                "error": repr(self._failed_exc),
                "restarts": self._resil_counts.get("restarts", 0),
            }
        if not task.done():
            detail = {
                "state": "running",
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
            }
            if self._degraded:
                detail["state"] = "degraded"
                detail["degrade_mode"] = True
            return True, detail
        if task.cancelled():
            return True, {"state": "stopped"}
        exc = task.exception()
        if self._supervisor is not None and not self._supervisor.done():
            return True, {
                "state": "degraded",
                "restarting": True,
                "error": repr(exc) if exc is not None else None,
                "restarts": self._resil_counts.get("restarts", 0),
            }
        if exc is not None:
            return False, {"state": "crashed", "error": repr(exc)}
        return False, {"state": "exited"}

    def stats(self) -> dict:
        """Admission/batching counters (plus result-cache stats)."""
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "coalesced": self.coalesced,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "mean_batch_size": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1e3,
            "result_cache": (
                self.results.stats() if self.results is not None else None
            ),
        }
        if self.resilience is not None:
            out["resilience"] = {
                "policy": self.resilience.as_dict(),
                "degraded": self._degraded,
                "counts": dict(self._resil_counts),
                "breaker": (
                    self._breaker.snapshot()
                    if self._breaker is not None
                    else None
                ),
            }
        else:
            out["resilience"] = None
        return out
