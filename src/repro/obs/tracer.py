"""Zero-dependency span tracer for BFS runs.

The tracer records *what the simulator did*: nestable spans around the
engine's level phases (context-manager API, arbitrary key/value
attributes) and one :class:`CommEvent` per simulated collective, carrying
the per-rank simulated durations and the per-step breakdown that
:class:`repro.mpi.simcomm.CollectiveResult` already computes.

Two timelines coexist and are kept strictly separate:

* **wall clock** — spans carry ``time.perf_counter_ns`` timestamps of the
  simulator process itself (useful for profiling the reproduction's own
  Python code);
* **simulated clock** — per-rank durations inside :class:`CommEvent` and
  the per-rank phase timeline reconstructed by
  :mod:`repro.obs.export` from a run's :class:`~repro.core.timing.BfsTiming`.

Tracing is **off by default**: every instrumented call site receives
:data:`NULL_TRACER`, whose methods are no-ops returning a shared inert
span, so the hot path pays only an attribute check (guarded by
``tracer.enabled``) when telemetry is disabled.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "CommEvent",
    "NullTracer",
    "SpanTracer",
    "RunTelemetry",
    "NULL_TRACER",
]


@dataclass
class Span:
    """One recorded span: a named, nestable interval with attributes.

    ``start_ns``/``end_ns`` are wall-clock ``perf_counter_ns`` stamps;
    ``parent`` is the index of the enclosing span in the tracer's span
    list (``-1`` at top level).  ``end_ns`` stays ``None`` while open.
    """

    name: str
    cat: str
    index: int
    parent: int
    depth: int
    start_ns: int
    end_ns: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Wall-clock duration (0 while the span is still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    def as_dict(self) -> dict:
        """The span as a plain JSON-serializable dict."""
        return {
            "kind": "span",
            "name": self.name,
            "cat": self.cat,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": self.attrs,
        }


@dataclass
class CommEvent:
    """One simulated collective: payload, per-rank durations, breakdown.

    ``rank_times`` are the *simulated* nanoseconds each rank spent in the
    collective (``CollectiveResult.rank_times``); ``breakdown`` is the
    per-step time split (e.g. ``intra_gather`` / ``inter`` /
    ``intra_bcast`` for the leader allgather family, Fig. 6).

    ``raw_bytes`` / ``wire_bytes`` separate the logical payload from what
    was transmitted (post frontier-codec, minus free self-messages); with
    no codec active they coincide up to the self-message diagonal.
    ``codec`` names the frontier codec that produced ``wire_bytes``
    (None = no codec layer on this op).
    """

    op: str
    seq: int
    nbytes: float = 0.0
    rank_times: list[float] = field(default_factory=list)
    breakdown: dict[str, float] = field(default_factory=dict)
    algorithm: str | None = None
    raw_bytes: float = 0.0
    wire_bytes: float = 0.0
    codec: str | None = None
    span: str | None = None  # name of the innermost enclosing span
    attrs: dict = field(default_factory=dict)

    @property
    def max_time_ns(self) -> float:
        """Simulated completion time: the slowest rank's duration."""
        return max(self.rank_times, default=0.0)

    def as_dict(self) -> dict:
        """The event as a plain JSON-serializable dict."""
        return {
            "kind": "comm_event",
            "op": self.op,
            "seq": self.seq,
            "nbytes": self.nbytes,
            "rank_times_ns": list(self.rank_times),
            "max_time_ns": self.max_time_ns,
            "breakdown_ns": self.breakdown,
            "algorithm": self.algorithm,
            "raw_bytes": self.raw_bytes,
            "wire_bytes": self.wire_bytes,
            "codec": self.codec,
            "span": self.span,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Inert context manager returned by :class:`NullTracer` (shared)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attributes (no-op)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing.

    All instrumented call sites hold a tracer reference; by default it is
    the module-level :data:`NULL_TRACER` singleton, whose ``span`` returns
    one shared inert context manager.  Call sites guard any argument
    construction behind ``tracer.enabled`` so a disabled run pays only an
    attribute load per potential event.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "phase", **attrs) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "mark", **attrs) -> None:
        """Discard an instant event."""

    def record_span(self, name: str, cat: str = "phase", *,
                    start_ns: int = 0, end_ns: int = 0,
                    parent: int = -1, **attrs) -> None:
        """Discard a retroactively recorded span."""

    def comm_event(self, op: str, **kwargs) -> None:
        """Discard a collective event."""


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Open-span handle handed out by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self._span.attrs.update(attrs)


class SpanTracer:
    """The recording tracer: nested spans plus collective events.

    Spans are recorded in opening order; nesting is tracked with an
    explicit stack so a span's ``parent``/``depth`` survive after close.
    When a :class:`~repro.obs.metrics.MetricsRegistry` is attached,
    every collective event also increments the standard ``comm.*``
    counters (calls, bytes, simulated time — total and per step).

    Appends to the span/event lists hold a lock: the serving layer
    records request spans from the asyncio event loop while a batch
    runs engine spans on an executor thread, and an unlocked
    ``index = len(spans); append`` pair would race.  The *nesting
    stack* stays unlocked by contract — only one thread at a time may
    use the context-manager ``span()`` API (the engine worker; batches
    are serialized), while other threads use :meth:`record_span` /
    :meth:`instant`, which never touch the stack top.
    """

    enabled = True

    def __init__(self, metrics=None, clock=time.perf_counter_ns) -> None:
        self.spans: list[Span] = []
        self.events: list[CommEvent] = []
        self.metrics = metrics
        self._clock = clock
        self._stack: list[Span] = []
        self._append_lock = threading.Lock()

    # ---- spans -----------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **attrs) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        start = self._clock()
        with self._append_lock:
            sp = Span(
                name=name,
                cat=cat,
                index=len(self.spans),
                parent=self._stack[-1].index if self._stack else -1,
                depth=len(self._stack),
                start_ns=start,
                attrs=attrs,
            )
            self.spans.append(sp)
        self._stack.append(sp)
        return _ActiveSpan(self, sp)

    def record_span(self, name: str, cat: str = "phase", *,
                    start_ns: int, end_ns: int,
                    parent: int = -1, **attrs) -> None:
        """Append an already-closed span without touching the nesting
        stack.

        This is how the serving layer records *retroactive* intervals —
        a request's queue wait is only known once the batch picks it up,
        after the interval has already passed.  Safe to call from any
        thread; the span is top-level unless ``parent`` names another
        span's index.
        """
        with self._append_lock:
            parent_depth = (
                self.spans[parent].depth + 1
                if 0 <= parent < len(self.spans)
                else 0
            )
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    index=len(self.spans),
                    parent=parent,
                    depth=parent_depth,
                    start_ns=int(start_ns),
                    end_ns=int(end_ns),
                    attrs=attrs,
                )
            )

    def _close(self, span: Span) -> None:
        span.end_ns = self._clock()
        # Close any children left open by an exception unwinding past them.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop().end_ns = span.end_ns
        if self._stack:
            self._stack.pop()

    def instant(self, name: str, cat: str = "mark", **attrs) -> None:
        """Record a zero-duration marker at the current nesting level."""
        now = self._clock()
        with self._append_lock:
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    index=len(self.spans),
                    parent=self._stack[-1].index if self._stack else -1,
                    depth=len(self._stack),
                    start_ns=now,
                    end_ns=now,
                    attrs=attrs,
                )
            )

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ---- collective events ----------------------------------------------

    def comm_event(
        self,
        op: str,
        *,
        nbytes: float = 0.0,
        rank_times=None,
        breakdown: dict[str, float] | None = None,
        algorithm: str | None = None,
        raw_bytes: float | None = None,
        wire_bytes: float | None = None,
        codec: str | None = None,
        **attrs,
    ) -> None:
        """Record one simulated collective (and update comm metrics).

        ``raw_bytes``/``wire_bytes`` default to the logical payload when
        the op has no codec layer, so every event carries a meaningful
        pre/post-codec pair.
        """
        times = [float(t) for t in rank_times] if rank_times is not None else []
        with self._append_lock:
            ev = CommEvent(
                op=op,
                seq=len(self.events),
                nbytes=float(nbytes),
                rank_times=times,
                breakdown=dict(breakdown) if breakdown else {},
                algorithm=algorithm,
                raw_bytes=float(nbytes if raw_bytes is None else raw_bytes),
                wire_bytes=float(nbytes if wire_bytes is None else wire_bytes),
                codec=codec,
                span=self._stack[-1].name if self._stack else None,
                attrs=attrs,
            )
            self.events.append(ev)
        m = self.metrics
        if m is not None:
            m.counter("comm.calls_total", op=op).inc()
            m.counter("comm.bytes_total", op=op).inc(ev.nbytes)
            m.counter("comm.raw_bytes_total", op=op).inc(ev.raw_bytes)
            m.counter("comm.wire_bytes_total", op=op).inc(ev.wire_bytes)
            m.counter("comm.sim_time_ns_total", op=op).inc(ev.max_time_ns)
            for step, t in ev.breakdown.items():
                m.counter("comm.step_sim_time_ns_total", op=op, step=step).inc(t)
            for key in ("intra_bytes", "inter_bytes", "self_bytes"):
                if key in attrs:
                    m.counter(
                        "comm.channel_bytes_total",
                        channel=key.removesuffix("_bytes"),
                    ).inc(float(attrs[key]))


@dataclass
class RunTelemetry:
    """Everything one traced BFS run recorded.

    Attached to :class:`repro.core.engine.BFSResult` when the engine was
    built with a recording tracer; consumed by :mod:`repro.obs.export`.
    """

    spans: list[Span] = field(default_factory=list)
    comm_events: list[CommEvent] = field(default_factory=list)
    metrics: object | None = None
    #: :class:`repro.obs.analyze.RunAttribution` of the run, filled in by
    #: the engine after pricing (None until then, or for untraced runs).
    attribution: object | None = None

    @classmethod
    def from_tracer(cls, tracer: SpanTracer, metrics=None) -> "RunTelemetry":
        """Snapshot a tracer's recorded state (lists are shared, not
        copied — the engine hands out the live record)."""
        return cls(
            spans=tracer.spans, comm_events=tracer.events, metrics=metrics
        )
