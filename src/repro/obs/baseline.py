"""Benchmark baseline store and differ behind ``repro-perf diff``.

The committed ``BENCH_kernels.json`` / ``BENCH_comm.json`` files are
pytest-benchmark output: wall-clock stats per benchmark plus the
simulator's own accounting in ``extra_info`` (simulated seconds, raw and
wire bytes, examined edges...).  This module gives them a canonical
schema and a policy-aware diff so "makes a hot path measurably faster"
stays checkable PR over PR:

* **context** keys (scale, nodes, ppn, backend, codec, experiment)
  identify *what* was measured — a mismatch makes two records
  incomparable, never a regression (CI smoke runs at scale 12 against a
  committed scale-15 baseline on purpose);
* **metric** values are compared directionally — simulated seconds and
  wire bytes must not grow, TEPS and reduction percentages must not
  shrink, and determinism invariants (raw bytes, examined edges,
  in-queue reads) must not change at all;
* **facts** (strings, lists — e.g. the per-level codec choices) are
  gated on equality;
* **wall-clock** stats are separable (``include_wall=False``) because
  they only compare meaningfully on the same machine.

Everything numeric is diffed; unknown metric names become info rows so a
new counter shows up in the report before anyone writes policy for it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CONTEXT_KEYS",
    "BenchRecord",
    "Baseline",
    "DiffRow",
    "DiffVerdict",
    "diff_baselines",
    "metric_direction",
]

#: extra_info keys that identify the measurement rather than score it.
CONTEXT_KEYS = ("scale", "nodes", "ppn", "backend", "codec", "experiment")

#: Substring → direction policy, first match wins.  ``equal`` metrics are
#: determinism invariants; ``higher``/``lower`` state which way is better.
_DIRECTION_RULES: tuple[tuple[str, str], ...] = (
    ("raw_bytes", "equal"),
    ("examined_edges", "equal"),
    ("inqueue_reads", "equal"),
    ("candidates", "equal"),
    ("frontier", "equal"),
    ("allreduces", "equal"),
    ("visited", "equal"),
    ("levels", "equal"),
    ("teps", "higher"),
    ("reduction_pct", "higher"),
    ("ratio", "higher"),
    ("wall_", "lower"),
    ("seconds", "lower"),
    ("time", "lower"),
    ("bytes", "lower"),
    ("gathered_edges", "lower"),
    ("chunk_rounds", "lower"),
    ("stall", "lower"),
)

#: Relative slack for ``equal`` metrics (floats that went through JSON).
_EQUAL_EPS = 1e-4


def metric_direction(name: str) -> str:
    """The comparison policy for a metric name: ``equal`` (invariant),
    ``higher`` (bigger is better), ``lower`` (smaller is better) or
    ``info`` (report, never gate)."""
    for needle, direction in _DIRECTION_RULES:
        if needle in name:
            return direction
    return "info"


@dataclass
class BenchRecord:
    """One benchmark in canonical form."""

    name: str
    group: str | None = None
    #: Identity of the measurement (subset of extra_info + params).
    context: dict[str, str] = field(default_factory=dict)
    #: Numeric observations, including ``wall_*`` from the stats block.
    metrics: dict[str, float] = field(default_factory=dict)
    #: Non-numeric invariants (stringified), gated on equality.
    facts: dict[str, str] = field(default_factory=dict)
    #: Where the measurement ran (python/numpy/platform/host); compared
    #: as a warning, never a gate — wall noise across hosts is expected.
    provenance: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The record as a plain JSON-ready dict."""
        return {
            "name": self.name,
            "group": self.group,
            "context": dict(self.context),
            "metrics": dict(self.metrics),
            "facts": dict(self.facts),
            "provenance": dict(self.provenance),
        }


#: stats keys copied into metrics as wall-clock observations.
_WALL_STATS = {"min": "wall_min_s", "mean": "wall_mean_s"}


def _canonicalize(bench: dict) -> BenchRecord:
    rec = BenchRecord(name=bench["name"], group=bench.get("group"))
    sources: dict = {}
    sources.update(bench.get("params") or {})
    sources.update(bench.get("extra_info") or {})
    for key, value in sources.items():
        if key in CONTEXT_KEYS or key == "backend_name":
            rec.context[key.removesuffix("_name")] = str(value)
        elif key == "telemetry":
            continue  # registry snapshot: aggregate, not per-benchmark
        elif key == "provenance" and isinstance(value, dict):
            rec.provenance = {k: str(v) for k, v in value.items()}
        elif isinstance(value, bool):
            rec.facts[key] = str(value)
        elif isinstance(value, (int, float)):
            rec.metrics[key] = float(value)
        else:
            rec.facts[key] = json.dumps(value, sort_keys=True, default=str)
    stats = bench.get("stats") or {}
    for stat, metric in _WALL_STATS.items():
        if stat in stats:
            rec.metrics[metric] = float(stats[stat])
    return rec


@dataclass
class Baseline:
    """All benchmarks of one ``BENCH_*.json`` file, canonicalized."""

    source: str
    records: dict[str, BenchRecord] = field(default_factory=dict)
    commit: str | None = None
    datetime: str | None = None

    @classmethod
    def from_benchmark_json(cls, path: str | Path) -> "Baseline":
        """Load a pytest-benchmark JSON file."""
        path = Path(path)
        doc = json.loads(path.read_text())
        commit = (doc.get("commit_info") or {}).get("id")
        base = cls(
            source=str(path), commit=commit, datetime=doc.get("datetime")
        )
        for bench in doc.get("benchmarks", []):
            rec = _canonicalize(bench)
            base.records[rec.name] = rec
        return base

    def as_dict(self) -> dict:
        """The baseline as a plain JSON-ready dict."""
        return {
            "source": self.source,
            "commit": self.commit,
            "datetime": self.datetime,
            "records": {
                name: rec.as_dict()
                for name, rec in sorted(self.records.items())
            },
        }


@dataclass
class DiffRow:
    """One compared metric (or fact, or structural note)."""

    benchmark: str
    metric: str
    #: ok | regression | improved | changed | incomparable | missing |
    #: added | info | warning
    status: str
    direction: str = "info"
    old: float | str | None = None
    new: float | str | None = None
    delta_pct: float | None = None
    note: str = ""

    @property
    def gating(self) -> bool:
        """True when this row alone fails the diff."""
        return self.status in ("regression", "changed", "missing")

    def as_dict(self) -> dict:
        """The row as a plain JSON-ready dict."""
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "status": self.status,
            "direction": self.direction,
            "old": self.old,
            "new": self.new,
            "delta_pct": self.delta_pct,
            "note": self.note,
        }


@dataclass
class DiffVerdict:
    """Outcome of one baseline diff."""

    old_source: str
    new_source: str
    tolerance_pct: float
    wall_tolerance_pct: float
    include_wall: bool
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        """The rows that fail the gate."""
        return [r for r in self.rows if r.gating]

    @property
    def improvements(self) -> list[DiffRow]:
        """The rows that moved in the good direction past tolerance."""
        return [r for r in self.rows if r.status == "improved"]

    @property
    def warnings(self) -> list[DiffRow]:
        """Non-gating caveats (provenance mismatch)."""
        return [r for r in self.rows if r.status == "warning"]

    @property
    def incomparable(self) -> list[DiffRow]:
        """Benchmark pairs whose measurement context differs."""
        return [r for r in self.rows if r.status == "incomparable"]

    @property
    def ok(self) -> bool:
        """True when nothing regressed."""
        return not self.regressions

    def as_dict(self) -> dict:
        """The verdict as a plain JSON-ready dict (the CI artifact)."""
        return {
            "schema": "repro.perfdiff/v1",
            "ok": self.ok,
            "old": self.old_source,
            "new": self.new_source,
            "tolerance_pct": self.tolerance_pct,
            "wall_tolerance_pct": self.wall_tolerance_pct,
            "include_wall": self.include_wall,
            "regressions": [r.as_dict() for r in self.regressions],
            "rows": [r.as_dict() for r in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        """The verdict as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent)

    def to_text(self, max_ok_rows: int = 20) -> str:
        """Terminal table: gating rows first, then improvements, then a
        capped tail of unchanged/info rows."""
        from repro.util.formatting import format_table

        def fmt(v):
            if isinstance(v, float):
                return f"{v:.6g}"
            if v is None:
                return "-"
            s = str(v)
            return s if len(s) <= 32 else s[:29] + "..."

        ordered = sorted(
            self.rows,
            key=lambda r: (
                not r.gating,
                r.status != "warning",
                r.status != "improved",
                r.benchmark,
                r.metric,
            ),
        )
        shown = [
            r
            for r in ordered
            if r.gating or r.status in ("improved", "warning")
        ]
        tail = [r for r in ordered if r not in shown][:max_ok_rows]
        rows = []
        for r in shown + tail:
            delta = (
                f"{r.delta_pct:+.2f}%" if r.delta_pct is not None else "-"
            )
            rows.append(
                [
                    r.benchmark,
                    r.metric,
                    fmt(r.old),
                    fmt(r.new),
                    delta,
                    r.status.upper() if r.gating else r.status,
                ]
            )
        verdict = "OK" if self.ok else f"FAIL ({len(self.regressions)} regression(s))"
        if self.warnings:
            verdict += f", {len(self.warnings)} warning(s)"
        title = (
            f"perf diff {verdict}: {self.old_source} -> {self.new_source} "
            f"(tolerance {self.tolerance_pct:g}%"
            + (
                f", wall {self.wall_tolerance_pct:g}%"
                if self.include_wall
                else ", wall ignored"
            )
            + ")"
        )
        table = format_table(
            ["benchmark", "metric", "old", "new", "delta", "status"],
            rows,
            title=title,
        )
        hidden = len(self.rows) - len(shown) - len(tail)
        if hidden > 0:
            table += f"\n({hidden} unchanged row(s) elided)"
        return table


def _delta_pct(old: float, new: float) -> float | None:
    if old == 0.0:
        return None if new == 0.0 else math.inf
    return (new - old) / abs(old) * 100.0


def _compare_metric(
    bench: str,
    metric: str,
    old: float,
    new: float,
    tolerance_pct: float,
) -> DiffRow:
    direction = metric_direction(metric)
    delta = _delta_pct(old, new)
    row = DiffRow(
        benchmark=bench,
        metric=metric,
        status="ok",
        direction=direction,
        old=old,
        new=new,
        delta_pct=delta,
    )
    if direction == "info":
        row.status = "info"
        return row
    if direction == "equal":
        same = math.isclose(old, new, rel_tol=_EQUAL_EPS, abs_tol=1e-9)
        if not same:
            row.status = "changed"
            row.note = "determinism invariant changed"
        return row
    if delta is None:
        return row
    worse = delta if direction == "lower" else -delta
    if worse > tolerance_pct:
        row.status = "regression"
        row.note = f"worse by {abs(delta):.2f}% (> {tolerance_pct:g}%)"
    elif worse < -tolerance_pct:
        row.status = "improved"
    return row


def diff_baselines(
    old: Baseline,
    new: Baseline,
    tolerance_pct: float = 10.0,
    wall_tolerance_pct: float | None = None,
    include_wall: bool = True,
) -> DiffVerdict:
    """Compare two baselines under the direction policy.

    ``tolerance_pct`` bounds how much a directional metric may move the
    wrong way; ``wall_tolerance_pct`` (default 5× the main tolerance)
    applies to the ``wall_*`` stats, which are far noisier than simulated
    quantities; ``include_wall=False`` drops them entirely (the CI gate
    does, since the committed baselines come from a different machine).
    """
    if wall_tolerance_pct is None:
        wall_tolerance_pct = 5.0 * tolerance_pct
    verdict = DiffVerdict(
        old_source=old.source,
        new_source=new.source,
        tolerance_pct=tolerance_pct,
        wall_tolerance_pct=wall_tolerance_pct,
        include_wall=include_wall,
    )
    # Provenance differences warn once per (key, old, new) triple, not
    # once per benchmark — the block is stamped identically file-wide.
    prov_seen: set[tuple[str, str, str]] = set()
    for name in sorted(old.records):
        old_rec = old.records[name]
        new_rec = new.records.get(name)
        if new_rec is not None and old_rec.provenance and new_rec.provenance:
            for key in sorted(
                set(old_rec.provenance) | set(new_rec.provenance)
            ):
                ov = old_rec.provenance.get(key, "")
                nv = new_rec.provenance.get(key, "")
                if ov != nv and (key, ov, nv) not in prov_seen:
                    prov_seen.add((key, ov, nv))
                    verdict.rows.append(
                        DiffRow(
                            benchmark="*",
                            metric=f"provenance.{key}",
                            status="warning",
                            direction="equal",
                            old=ov,
                            new=nv,
                            note="environment differs; wall stats may "
                            "not be comparable (not gated)",
                        )
                    )
        if new_rec is None:
            verdict.rows.append(
                DiffRow(
                    benchmark=name,
                    metric="-",
                    status="missing",
                    note="benchmark disappeared from the new run",
                )
            )
            continue
        mismatched = {
            k: (old_rec.context.get(k), new_rec.context.get(k))
            for k in set(old_rec.context) | set(new_rec.context)
            if old_rec.context.get(k) != new_rec.context.get(k)
        }
        if mismatched:
            detail = ", ".join(
                f"{k}: {o} -> {n}"
                for k, (o, n) in sorted(mismatched.items())
            )
            verdict.rows.append(
                DiffRow(
                    benchmark=name,
                    metric="context",
                    status="incomparable",
                    old=str(dict(sorted(old_rec.context.items()))),
                    new=str(dict(sorted(new_rec.context.items()))),
                    note=f"context differs ({detail}); not gated",
                )
            )
            continue
        for metric in sorted(set(old_rec.metrics) & set(new_rec.metrics)):
            is_wall = metric.startswith("wall_")
            if is_wall and not include_wall:
                continue
            verdict.rows.append(
                _compare_metric(
                    name,
                    metric,
                    old_rec.metrics[metric],
                    new_rec.metrics[metric],
                    wall_tolerance_pct if is_wall else tolerance_pct,
                )
            )
        for fact in sorted(set(old_rec.facts) & set(new_rec.facts)):
            ov, nv = old_rec.facts[fact], new_rec.facts[fact]
            verdict.rows.append(
                DiffRow(
                    benchmark=name,
                    metric=fact,
                    status="ok" if ov == nv else "changed",
                    direction="equal",
                    old=ov,
                    new=nv,
                    note="" if ov == nv else "recorded fact changed",
                )
            )
    for name in sorted(set(new.records) - set(old.records)):
        verdict.rows.append(
            DiffRow(
                benchmark=name,
                metric="-",
                status="added",
                note="new benchmark (no baseline); not gated",
            )
        )
    return verdict
