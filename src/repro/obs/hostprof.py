"""Host-side phase profiling: wall clock, cProfile, tracemalloc peaks.

The tracer and the cost model account for *simulated* time — what the
modelled NUMA cluster would spend.  This module accounts for what the
reproduction's own Python process spends, per engine phase, so
"simulated fast but host slow" regressions (the exact trap for compiled
kernel backends that win on priced counts while thrashing host memory)
are visible:

* **wall clock** — every :meth:`HostProfiler.phase` block records
  inclusive and *exclusive* (self) nanoseconds.  Phases nest (the
  engine wraps the whole traversal in a ``run`` phase around the
  per-level phases), and self-time attribution is exact: the sum of all
  phases' ``self_ns`` equals the profiled region's total wall time by
  construction;
* **tracemalloc** — per-phase peak traced bytes, with child peaks
  propagated to parents, so the allocation high-water mark of e.g. the
  bottom-up scan is separable from the allgather's;
* **cProfile** — one deterministic profile of the whole region,
  exportable as flamegraph-compatible collapsed stacks
  (``frame;frame;frame count`` — feed to ``flamegraph.pl`` or paste
  into https://www.speedscope.app, microsecond-weighted).

Profiling is **opt-in and off by default**: call sites hold
:data:`NULL_HOSTPROF`, whose ``phase`` returns a shared inert context
manager — the same zero-overhead pattern as
:data:`repro.obs.tracer.NULL_TRACER`.
"""

from __future__ import annotations

import cProfile
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "HostPhase",
    "HostProfile",
    "HostProfiler",
    "NullHostProfiler",
    "NULL_HOSTPROF",
    "collapsed_stacks",
]

SCHEMA = "repro.hostprof/v1"


class _NullPhase:
    """Inert context manager returned by :class:`NullHostProfiler`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullHostProfiler:
    """The disabled profiler: records nothing, allocates nothing."""

    __slots__ = ()

    enabled = False

    def phase(self, name: str) -> _NullPhase:
        """Return the shared no-op phase."""
        return _NULL_PHASE


NULL_HOSTPROF = NullHostProfiler()


@dataclass
class HostPhase:
    """Aggregated host cost of one named phase across its calls."""

    name: str
    calls: int = 0
    #: Wall nanoseconds inside the phase, children included.
    total_ns: int = 0
    #: Wall nanoseconds exclusively in this phase (children subtracted).
    self_ns: int = 0
    #: Highest tracemalloc traced-memory peak seen during any call.
    peak_bytes: int = 0

    def as_dict(self) -> dict:
        """The phase as a plain JSON-ready dict."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_ns / 1e9,
            "self_s": self.self_ns / 1e9,
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class HostProfile:
    """One profiling session's report."""

    phases: list[HostPhase] = field(default_factory=list)
    #: Wall nanoseconds between profile start and stop.
    wall_ns: int = 0
    traced_memory: bool = False

    @property
    def covered_ns(self) -> int:
        """Self-time sum over all phases — what the phase hooks saw."""
        return sum(p.self_ns for p in self.phases)

    @property
    def coverage(self) -> float:
        """Covered share of the session wall time (1.0 = everything the
        profiled region did happened inside some phase)."""
        return self.covered_ns / self.wall_ns if self.wall_ns else 0.0

    def as_dict(self) -> dict:
        """The report as a plain JSON-ready dict."""
        return {
            "schema": SCHEMA,
            "wall_s": self.wall_ns / 1e9,
            "covered_s": self.covered_ns / 1e9,
            "coverage": self.coverage,
            "traced_memory": self.traced_memory,
            "phases": [p.as_dict() for p in self.phases],
        }

    def to_text(self) -> str:
        """Terminal table, slowest self-time first."""
        from repro.util.formatting import format_bytes, format_table

        rows = []
        for p in sorted(self.phases, key=lambda p: -p.self_ns):
            rows.append(
                [
                    p.name,
                    p.calls,
                    f"{p.total_ns / 1e9:.4f}",
                    f"{p.self_ns / 1e9:.4f}",
                    (
                        f"{100.0 * p.self_ns / self.wall_ns:.1f}"
                        if self.wall_ns
                        else "-"
                    ),
                    format_bytes(p.peak_bytes) if self.traced_memory else "-",
                ]
            )
        title = (
            f"host profile: wall {self.wall_ns / 1e9:.3f}s, "
            f"phase coverage {self.coverage * 100:.1f}%"
        )
        return format_table(
            ["phase", "calls", "total_s", "self_s", "self%", "peak_mem"],
            rows,
            title=title,
        )


class _ActivePhase:
    """Open phase frame handed out by :meth:`HostProfiler.phase`."""

    __slots__ = ("_profiler", "_name", "_start_ns", "_child_ns", "_child_peak")

    def __init__(self, profiler: "HostProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_ActivePhase":
        self._child_ns = 0
        self._child_peak = 0
        self._profiler._enter(self)
        self._start_ns = self._profiler._clock()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = self._profiler._clock()
        self._profiler._exit(self, end_ns - self._start_ns)
        return False


class HostProfiler:
    """Opt-in host profiler with exact self-time phase attribution.

    Use as a context manager around the region to profile (one run or
    many), handing the same instance to the engine::

        hp = HostProfiler()
        with hp.profile():
            engine = BFSEngine(graph, cluster, config, hostprof=hp)
            result = engine.run(root)
        print(hp.report().to_text())
        hp.write_collapsed("stacks.collapsed")

    ``trace_memory=False`` skips tracemalloc (which slows allocation
    paths noticeably); ``profile_calls=False`` skips cProfile (then
    :meth:`collapsed` returns no stacks).
    """

    enabled = True

    def __init__(
        self,
        trace_memory: bool = True,
        profile_calls: bool = True,
        clock=time.perf_counter_ns,
    ) -> None:
        self._clock = clock
        self._trace_memory = trace_memory
        self._profile_calls = profile_calls
        self._stats: dict[str, HostPhase] = {}
        self._stack: list[_ActivePhase] = []
        self._cprofile: cProfile.Profile | None = None
        self._started_tracemalloc = False
        self._start_ns = 0
        self._wall_ns = 0
        self._running = False

    # ---- session ---------------------------------------------------------

    def profile(self) -> "HostProfiler":
        """The profiler is its own session context manager."""
        return self

    def __enter__(self) -> "HostProfiler":
        if self._running:
            raise RuntimeError("HostProfiler session already running")
        self._running = True
        if self._trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        if self._profile_calls:
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        self._start_ns = self._clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._wall_ns += self._clock() - self._start_ns
        if self._cprofile is not None:
            self._cprofile.disable()
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._running = False
        return False

    # ---- phases ----------------------------------------------------------

    def phase(self, name: str) -> _ActivePhase:
        """Open a named phase; use as a context manager.  Phases nest;
        time inside a child is excluded from the parent's self time."""
        return _ActivePhase(self, name)

    def _enter(self, frame: _ActivePhase) -> None:
        if self._trace_memory and tracemalloc.is_tracing():
            # The parent keeps its peak-so-far; the child starts fresh.
            if self._stack:
                parent = self._stack[-1]
                parent._child_peak = max(
                    parent._child_peak, tracemalloc.get_traced_memory()[1]
                )
            tracemalloc.reset_peak()
        self._stack.append(frame)

    def _exit(self, frame: _ActivePhase, duration_ns: int) -> None:
        self._stack.pop()
        peak = frame._child_peak
        if self._trace_memory and tracemalloc.is_tracing():
            peak = max(peak, tracemalloc.get_traced_memory()[1])
            tracemalloc.reset_peak()
        stat = self._stats.get(frame._name)
        if stat is None:
            stat = self._stats[frame._name] = HostPhase(frame._name)
        stat.calls += 1
        stat.total_ns += duration_ns
        stat.self_ns += duration_ns - frame._child_ns
        stat.peak_bytes = max(stat.peak_bytes, peak)
        if self._stack:
            parent = self._stack[-1]
            parent._child_ns += duration_ns
            parent._child_peak = max(parent._child_peak, peak)

    # ---- reports ---------------------------------------------------------

    def report(self) -> HostProfile:
        """Snapshot of the per-phase host accounting so far."""
        wall = self._wall_ns
        if self._running:
            wall += self._clock() - self._start_ns
        return HostProfile(
            phases=[
                HostPhase(p.name, p.calls, p.total_ns, p.self_ns, p.peak_bytes)
                for _, p in sorted(self._stats.items())
            ],
            wall_ns=wall,
            traced_memory=self._trace_memory,
        )

    def collapsed(self, min_us: int = 1) -> str:
        """The cProfile call tree as flamegraph collapsed stacks.

        One line per root-to-frame path, ``frame;frame;... weight``,
        weighted in microseconds of self time attributed down the call
        graph (flameprof-style proportional attribution).  Empty when
        ``profile_calls=False`` or nothing ran yet.
        """
        if self._cprofile is None:
            return ""
        was_enabled = self._running and self._profile_calls
        if was_enabled:
            self._cprofile.disable()
        try:
            stats = self._cprofile.getstats()
        finally:
            if was_enabled:
                self._cprofile.enable()
        return collapsed_stacks(stats, min_us=min_us)

    def write_collapsed(self, path: str | Path, min_us: int = 1) -> None:
        """Write :meth:`collapsed` output to a file."""
        Path(path).write_text(self.collapsed(min_us=min_us))


# ---------------------------------------------------------------------------
# Collapsed-stack export from cProfile data
# ---------------------------------------------------------------------------


def _frame_name(code) -> str:
    """Render one cProfile code object as a flamegraph frame name."""
    if isinstance(code, str):  # built-in, e.g. "<built-in method ...>"
        label = code
    else:
        fn = Path(code.co_filename).name
        label = f"{fn}:{code.co_firstlineno}:{code.co_name}"
    # The collapsed format reserves ';' (stack separator) and ' ' (the
    # weight separator at end of line).
    return label.replace(";", ",").replace(" ", "_")


def collapsed_stacks(stats, min_us: int = 1, max_depth: int = 64) -> str:
    """Fold raw ``cProfile.Profile.getstats()`` entries into collapsed
    stacks.

    cProfile records a call *graph* (per-edge cumulative times), not
    stacks, so paths are reconstructed by walking the graph from the
    roots and attributing each function's inline time proportionally to
    the share of its cumulative time that flowed through the edge being
    walked — the standard flameprof approximation.  Cycles are cut at
    the first repeated frame; weights are microseconds.
    """
    # entry: code, callcount, reccallcount, inlinetime, totaltime, calls
    entries = {id(e.code): e for e in stats}
    # Which functions appear as someone's callee (they are not roots).
    callees: set[int] = set()
    # caller id -> list of (callee entry, edge total time).
    edges: dict[int, list[tuple[object, float]]] = {}
    for e in stats:
        for sub in e.calls or ():
            callees.add(id(sub.code))
            edges.setdefault(id(e.code), []).append(
                (entries.get(id(sub.code)), sub.totaltime)
            )

    lines: list[str] = []

    def walk(entry, prefix: str, budget: float, path: frozenset, depth: int):
        if entry is None or id(entry.code) in path or depth > max_depth:
            return
        total = entry.totaltime or 0.0
        share = min(budget / total, 1.0) if total > 0 else 0.0
        name = _frame_name(entry.code)
        stack = f"{prefix};{name}" if prefix else name
        self_us = int(entry.inlinetime * share * 1e6)
        if self_us >= min_us:
            lines.append(f"{stack} {self_us}")
        sub_path = path | {id(entry.code)}
        for sub_entry, edge_total in edges.get(id(entry.code), ()):
            walk(sub_entry, stack, edge_total * share, sub_path, depth + 1)

    for e in stats:
        if id(e.code) not in callees:
            walk(e, "", e.totaltime, frozenset(), 0)
    return "\n".join(lines) + ("\n" if lines else "")
