"""Performance attribution and model-drift analysis of priced BFS runs.

This is the analysis layer on top of the PR-1 telemetry: where the
tracer *records* what happened, this module *explains* it, the way the
paper's Figs. 11/12/14 explain the NUMA optimizations by decomposing
runtime into compute vs. the two allgathers.

Two tools:

* :func:`attribute_run` — the **critical-path analyzer**.  Walks a run's
  :class:`~repro.core.timing.LevelTiming` records (per-rank compute
  durations, per-step collective breakdowns) and emits per-level and
  whole-run attribution: compute per direction, communication split into
  the in_queue allgather / summary allgather / alltoallv / allreduce
  components, the critical (slowest) rank per level, max/mean imbalance
  ratios, and the top-N straggler levels.  Sums reproduce
  :class:`~repro.core.timing.PhaseBreakdown` exactly — attribution is a
  regrouping of the priced timeline, never a re-measurement.

* :func:`detect_model_drift` — the **model-drift detector**.  Compares
  three prediction layers against the simulated actuals and flags
  components whose relative error exceeds a threshold: re-pricing the
  recorded counts through :func:`repro.core.timing.assemble` (catches a
  changed cost model disagreeing with a recorded timeline), the traced
  :class:`~repro.obs.tracer.CommEvent` simulated times vs. the priced
  communication components (catches the functional collectives and the
  pricer diverging), and the :mod:`repro.model.levelprofile` analytic
  predictions vs. the functional run (catches the closed-form model
  drifting from the algorithm it models).

Both emit plain dicts for JSON, terminal text via
:mod:`repro.util.ascii_chart` / :func:`repro.util.formatting.format_table`,
and counters/histograms into a metrics registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.counts import Direction
from repro.core.timing import COMM_COMPONENTS, BfsTiming, assemble

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs <- core)
    from repro.core.engine import BFSEngine, BFSResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import RunTelemetry

__all__ = [
    "LevelAttribution",
    "RunAttribution",
    "attribute_run",
    "attribute_timing",
    "record_attribution",
    "DriftComponent",
    "ModelDriftReport",
    "detect_model_drift",
    "DRIFT_SOURCES",
]


# ---------------------------------------------------------------------------
# Critical-path attribution
# ---------------------------------------------------------------------------


@dataclass
class LevelAttribution:
    """Where one level's simulated time went.

    ``compute_ns`` is the mean across ranks (the quantity the phase
    breakdown charges); ``comm_ns`` maps each
    :data:`~repro.core.timing.COMM_COMPONENTS` entry to its share of the
    level's communication time.  ``critical_rank`` is the slowest rank
    (the one the barrier waits for) and ``imbalance`` the max/mean ratio
    of the per-rank compute times.
    """

    level: int
    direction: str
    compute_ns: float
    compute_max_ns: float
    comm_ns: dict[str, float]
    switch_ns: float
    stall_ns: float
    critical_rank: int
    imbalance: float

    @property
    def comm_total_ns(self) -> float:
        """Communication time of the level (all components)."""
        return sum(self.comm_ns.values())

    @property
    def total_ns(self) -> float:
        """Level total, identical to ``LevelTiming.total_ns``."""
        return (
            self.compute_ns + self.comm_total_ns + self.switch_ns + self.stall_ns
        )

    def as_dict(self) -> dict:
        """The level attribution as a plain JSON-ready dict."""
        return {
            "level": self.level,
            "direction": self.direction,
            "compute_ns": self.compute_ns,
            "compute_max_ns": self.compute_max_ns,
            "comm_ns": dict(self.comm_ns),
            "comm_total_ns": self.comm_total_ns,
            "switch_ns": self.switch_ns,
            "stall_ns": self.stall_ns,
            "critical_rank": self.critical_rank,
            "imbalance": self.imbalance,
            "total_ns": self.total_ns,
        }


@dataclass
class RunAttribution:
    """Whole-run attribution: the Fig. 11/12/14 decomposition of a trace."""

    levels: list[LevelAttribution] = field(default_factory=list)
    #: Compute time per direction (sum of per-level means), ns.
    compute_ns: dict[str, float] = field(default_factory=dict)
    #: Communication time per component, summed over levels, ns.
    comm_ns: dict[str, float] = field(default_factory=dict)
    switch_ns: float = 0.0
    stall_ns: float = 0.0

    @property
    def comm_total_ns(self) -> float:
        """All communication components summed, ns."""
        return sum(self.comm_ns.values())

    @property
    def compute_total_ns(self) -> float:
        """Both compute directions summed, ns."""
        return sum(self.compute_ns.values())

    @property
    def total_ns(self) -> float:
        """Run total: identical to ``PhaseBreakdown.total``."""
        return (
            self.compute_total_ns
            + self.comm_total_ns
            + self.switch_ns
            + self.stall_ns
        )

    @property
    def comm_fraction(self) -> float:
        """Communication share of the total (the Fig. 12/14 curve,
        generalized to every component)."""
        total = self.total_ns
        return self.comm_total_ns / total if total else 0.0

    @property
    def critical_rank_counts(self) -> dict[int, int]:
        """How many levels each rank was the critical (slowest) one."""
        counts: dict[int, int] = {}
        for lv in self.levels:
            if lv.critical_rank >= 0:
                counts[lv.critical_rank] = counts.get(lv.critical_rank, 0) + 1
        return counts

    def imbalance(self, direction: str | None = None) -> dict[str, float]:
        """Mean/max of the per-level max/mean compute-imbalance ratios,
        optionally restricted to one direction."""
        ratios = [
            lv.imbalance
            for lv in self.levels
            if direction is None or lv.direction == direction
        ]
        if not ratios:
            return {"mean": 1.0, "max": 1.0}
        return {
            "mean": float(np.mean(ratios)),
            "max": float(np.max(ratios)),
        }

    def top_stragglers(self, n: int = 3, key: str = "stall_ns") -> list[LevelAttribution]:
        """The ``n`` levels with the largest ``key`` (``stall_ns``,
        ``total_ns``, ``comm_total_ns``...), worst first."""
        return sorted(
            self.levels, key=lambda lv: getattr(lv, key), reverse=True
        )[:n]

    def as_dict(self) -> dict:
        """The whole attribution as a plain JSON-ready dict."""
        return {
            "schema": "repro.attribution/v1",
            "levels": [lv.as_dict() for lv in self.levels],
            "compute_ns": dict(self.compute_ns),
            "comm_ns": dict(self.comm_ns),
            "switch_ns": self.switch_ns,
            "stall_ns": self.stall_ns,
            "total_ns": self.total_ns,
            "comm_fraction": self.comm_fraction,
            "critical_rank_counts": {
                str(r): c for r, c in sorted(self.critical_rank_counts.items())
            },
            "imbalance": {
                "all": self.imbalance(),
                Direction.TOP_DOWN: self.imbalance(Direction.TOP_DOWN),
                Direction.BOTTOM_UP: self.imbalance(Direction.BOTTOM_UP),
            },
        }

    def to_text(self, top: int = 3, width: int = 36) -> str:
        """Terminal report: whole-run split chart, per-level table,
        straggler list (the Fig. 11 reading, from a trace)."""
        from repro.util.ascii_chart import bar_chart
        from repro.util.formatting import format_table, format_time_ns

        labels = [f"compute:{d}" for d in sorted(self.compute_ns)]
        values = [self.compute_ns[d] for d in sorted(self.compute_ns)]
        for comp in sorted(self.comm_ns):
            labels.append(f"comm:{comp}")
            values.append(self.comm_ns[comp])
        labels.extend(["switch", "stall"])
        values.extend([self.switch_ns, self.stall_ns])
        parts = [
            bar_chart(
                labels,
                [v / 1e6 for v in values],
                width=width,
                unit="ms",
                title=(
                    f"run attribution (total "
                    f"{format_time_ns(self.total_ns)}, comm "
                    f"{self.comm_fraction * 100:.1f}%)"
                ),
            )
        ]
        rows = []
        for lv in self.levels:
            rows.append(
                [
                    lv.level,
                    lv.direction,
                    format_time_ns(lv.compute_ns),
                    format_time_ns(lv.comm_ns["allgather_in_queue"]),
                    format_time_ns(lv.comm_ns["allgather_summary"]),
                    format_time_ns(lv.comm_ns["alltoallv"]),
                    format_time_ns(lv.comm_ns["allreduce"]),
                    format_time_ns(lv.stall_ns),
                    format_time_ns(lv.total_ns),
                    lv.critical_rank,
                    f"{lv.imbalance:.2f}",
                ]
            )
        parts.append("")
        parts.append(
            format_table(
                [
                    "lvl",
                    "dir",
                    "compute",
                    "ag:inq",
                    "ag:sum",
                    "a2av",
                    "allred",
                    "stall",
                    "total",
                    "crit",
                    "imbal",
                ],
                rows,
                title="per-level attribution",
            )
        )
        stragglers = self.top_stragglers(top)
        if stragglers:
            parts.append("")
            parts.append(f"top {len(stragglers)} straggler levels (by stall):")
            for lv in stragglers:
                parts.append(
                    f"  level {lv.level:2d} [{lv.direction}] stall "
                    f"{format_time_ns(lv.stall_ns)} (critical rank "
                    f"{lv.critical_rank}, imbalance {lv.imbalance:.2f})"
                )
        return "\n".join(parts)


def attribute_timing(timing: BfsTiming) -> RunAttribution:
    """Attribute a priced timeline (the core of :func:`attribute_run`)."""
    attr = RunAttribution(
        compute_ns={Direction.TOP_DOWN: 0.0, Direction.BOTTOM_UP: 0.0},
        comm_ns=dict.fromkeys(COMM_COMPONENTS, 0.0),
    )
    for lt in timing.levels:
        comm = lt.comm_components()
        lv = LevelAttribution(
            level=lt.level,
            direction=lt.direction,
            compute_ns=lt.compute_mean_ns,
            compute_max_ns=lt.compute_max_ns,
            comm_ns=comm,
            switch_ns=lt.switch_ns,
            stall_ns=lt.stall_ns,
            critical_rank=lt.critical_rank,
            imbalance=lt.compute_imbalance,
        )
        attr.levels.append(lv)
        attr.compute_ns[lt.direction] = (
            attr.compute_ns.get(lt.direction, 0.0) + lt.compute_mean_ns
        )
        for comp, t in comm.items():
            attr.comm_ns[comp] = attr.comm_ns.get(comp, 0.0) + t
        attr.switch_ns += lt.switch_ns
        attr.stall_ns += lt.stall_ns
    return attr


def attribute_run(result: "BFSResult") -> RunAttribution:
    """Attribute one run's priced timeline.

    The engine calls this automatically for traced runs and attaches the
    result as ``BFSResult.telemetry.attribution``.
    """
    return attribute_timing(result.timing)


def record_attribution(
    attr: RunAttribution, metrics: "MetricsRegistry"
) -> None:
    """Fold an attribution into the metrics registry.

    Emits ``bfs.comm.component_sim_ns_total{component=}`` counters and
    the ``bfs.level_compute_imbalance{direction=}`` histogram the drift
    detector and the perf CLI report on.
    """
    for comp, ns in attr.comm_ns.items():
        metrics.counter(
            "bfs.comm.component_sim_ns_total", component=comp
        ).inc(ns)
    for lv in attr.levels:
        metrics.histogram(
            "bfs.level_compute_imbalance", direction=lv.direction
        ).observe(lv.imbalance)


# ---------------------------------------------------------------------------
# Model-drift detection
# ---------------------------------------------------------------------------

#: The three prediction layers :func:`detect_model_drift` can check.
DRIFT_SOURCES = ("pricing", "trace", "analytic")


@dataclass
class DriftComponent:
    """One predicted-vs-actual comparison."""

    source: str
    component: str
    predicted: float
    actual: float
    flagged: bool = False

    @property
    def rel_error(self) -> float:
        """Signed relative error (predicted - actual) / actual; uses the
        predicted value as denominator when the actual is zero, and 0.0
        when both are."""
        if self.actual != 0.0:
            return (self.predicted - self.actual) / abs(self.actual)
        if self.predicted != 0.0:
            return math.inf
        return 0.0

    def as_dict(self) -> dict:
        """The comparison as a plain JSON-ready dict."""
        return {
            "source": self.source,
            "component": self.component,
            "predicted": self.predicted,
            "actual": self.actual,
            "rel_error": self.rel_error,
            "flagged": self.flagged,
        }


@dataclass
class ModelDriftReport:
    """All drift comparisons of one run, with the flagging threshold."""

    threshold: float
    components: list[DriftComponent] = field(default_factory=list)

    @property
    def flagged(self) -> list[DriftComponent]:
        """Components whose |relative error| exceeded the threshold."""
        return [c for c in self.components if c.flagged]

    @property
    def ok(self) -> bool:
        """True when nothing drifted past the threshold."""
        return not self.flagged

    def by_source(self, source: str) -> list[DriftComponent]:
        """The comparisons of one prediction layer."""
        return [c for c in self.components if c.source == source]

    def as_dict(self) -> dict:
        """The report as a plain JSON-ready dict."""
        return {
            "schema": "repro.drift/v1",
            "threshold": self.threshold,
            "ok": self.ok,
            "flagged": [c.as_dict() for c in self.flagged],
            "components": [c.as_dict() for c in self.components],
        }

    def to_text(self, max_rows: int = 40) -> str:
        """Terminal report: flagged components first, worst error first."""
        from repro.util.formatting import format_table

        ordered = sorted(
            self.components,
            key=lambda c: (not c.flagged, -abs(c.rel_error)),
        )
        rows = []
        for c in ordered[:max_rows]:
            rows.append(
                [
                    c.source,
                    c.component,
                    f"{c.predicted:.6g}",
                    f"{c.actual:.6g}",
                    f"{c.rel_error * 100:+.2f}%"
                    if math.isfinite(c.rel_error)
                    else "inf",
                    "DRIFT" if c.flagged else "ok",
                ]
            )
        title = (
            f"model drift (threshold {self.threshold * 100:.1f}%): "
            + (
                "no component drifted"
                if self.ok
                else f"{len(self.flagged)} component(s) drifted"
            )
        )
        table = format_table(
            ["source", "component", "predicted", "actual", "rel err", ""],
            rows,
            title=title,
        )
        if len(ordered) > max_rows:
            table += f"\n({len(ordered) - max_rows} more rows elided)"
        return table

    def record(self, metrics: "MetricsRegistry") -> None:
        """Fold the report into a metrics registry: per-source component
        counters, flag counters and |rel error| histograms."""
        for c in self.components:
            metrics.counter(
                "model.drift_components_total", source=c.source
            ).inc()
            if math.isfinite(c.rel_error):
                metrics.histogram(
                    "model.drift_rel_error", source=c.source
                ).observe(abs(c.rel_error))
            if c.flagged:
                metrics.counter(
                    "model.drift_flagged_total", source=c.source
                ).inc()


def _component(
    source: str,
    name: str,
    predicted: float,
    actual: float,
    threshold: float,
) -> DriftComponent:
    c = DriftComponent(
        source=source,
        component=name,
        predicted=float(predicted),
        actual=float(actual),
    )
    c.flagged = not (abs(c.rel_error) <= threshold)
    return c


def _pricing_drift(
    result: "BFSResult", engine: "BFSEngine", threshold: float
) -> list[DriftComponent]:
    """Re-price the recorded counts and compare against the recorded
    timeline.  Any drift here means the cost model changed under a
    stored result (or pricing became non-deterministic)."""
    repriced = assemble(
        result.counts, engine.comm, engine.config, engine.sizes,
        engine.constants,
    )
    out = []
    actual_bd = result.timing.breakdown.as_dict()
    for phase, ns in repriced.breakdown.as_dict().items():
        out.append(
            _component(
                "pricing", f"breakdown.{phase}", ns, actual_bd[phase],
                threshold,
            )
        )
    for new_lt, old_lt in zip(repriced.levels, result.timing.levels):
        out.append(
            _component(
                "pricing",
                f"level{old_lt.level}.total_ns",
                new_lt.total_ns,
                old_lt.total_ns,
                threshold,
            )
        )
    return out


def _trace_drift(
    telemetry: "RunTelemetry",
    attr: RunAttribution,
    threshold: float,
) -> list[DriftComponent]:
    """Compare the traced collectives' simulated times against the
    priced communication components.

    The functional collectives and the timing assembler price the same
    payloads independently; disagreement means one of them changed
    without the other (the exact failure mode the PR-3 codec pricing
    mirrors guard against).  Only ops that execute functionally are
    compared: the summary allgather is priced but never transmitted, and
    the control allreduces are counted, not executed.
    """
    per_op: dict[str, float] = {}
    for ev in telemetry.comm_events:
        per_op[ev.op] = per_op.get(ev.op, 0.0) + ev.max_time_ns
    comparisons = {
        "allgather": attr.comm_ns.get("allgather_in_queue", 0.0),
        "alltoallv": attr.comm_ns.get("alltoallv", 0.0),
    }
    out = []
    for op, priced in comparisons.items():
        traced = per_op.get(op, 0.0)
        if traced == 0.0 and priced == 0.0:
            continue
        out.append(
            _component(
                "trace", f"comm.{op}_sim_ns", traced, priced, threshold
            )
        )
    return out


def _analytic_drift(
    result: "BFSResult", engine: "BFSEngine", threshold: float
) -> list[DriftComponent]:
    """Compare the closed-form level-profile model's predictions against
    the functional run's actuals, per level and whole-run."""
    from repro.model.analytic import analytic_graph500

    scale = int(round(math.log2(result.counts.num_vertices)))
    ana = analytic_graph500(engine.cluster, engine.config, scale)
    out = [
        _component(
            "analytic",
            "levels",
            ana.counts.num_levels,
            result.counts.num_levels,
            threshold,
        ),
        _component(
            "analytic",
            "visited_vertices",
            ana.counts.visited_vertices,
            result.counts.visited_vertices,
            threshold,
        ),
        _component(
            "analytic",
            "traversed_edges",
            ana.counts.traversed_edges,
            result.counts.traversed_edges,
            threshold,
        ),
        _component(
            "analytic",
            "examined_edges",
            ana.counts.total_examined_edges(),
            result.counts.total_examined_edges(),
            threshold,
        ),
        _component(
            "analytic",
            "simulated_seconds",
            ana.seconds,
            result.seconds,
            threshold,
        ),
        _component("analytic", "teps", ana.teps, result.teps, threshold),
    ]
    for pred, actual in zip(ana.counts.levels, result.counts.levels):
        out.append(
            _component(
                "analytic",
                f"level{actual.level}.examined_edges",
                float(pred.examined_edges.sum()),
                float(actual.examined_edges.sum()),
                threshold,
            )
        )
    return out


def detect_model_drift(
    result: "BFSResult",
    engine: "BFSEngine",
    threshold: float = 0.25,
    sources: tuple[str, ...] = DRIFT_SOURCES,
    metrics: "MetricsRegistry | None" = None,
) -> ModelDriftReport:
    """Check every requested prediction layer against ``result``.

    ``threshold`` is the relative-error bound per component (0.25 = 25 %).
    The ``pricing`` and ``trace`` layers are near-exact by construction,
    so they share the drift threshold; the ``analytic`` layer is a
    closed-form approximation and is usually checked with a much looser
    bound (the perf CLI defaults to 1.0 for it).  When ``metrics`` is
    given the report is also folded into the registry.
    """
    unknown = set(sources) - set(DRIFT_SOURCES)
    if unknown:
        raise ValueError(
            f"unknown drift sources {sorted(unknown)}; "
            f"known: {DRIFT_SOURCES}"
        )
    report = ModelDriftReport(threshold=threshold)
    if "pricing" in sources:
        report.components.extend(_pricing_drift(result, engine, threshold))
    if "trace" in sources and result.telemetry is not None:
        attr = attribute_run(result)
        report.components.extend(
            _trace_drift(result.telemetry, attr, threshold)
        )
    if "analytic" in sources:
        report.components.extend(_analytic_drift(result, engine, threshold))
    if metrics is not None:
        report.record(metrics)
    return report
