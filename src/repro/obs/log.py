"""Structured stdlib logging for the reproduction's CLIs and harnesses.

One ``repro`` logger hierarchy, configured once from the environment:

* ``REPRO_LOG`` — ``debug`` / ``info`` (default) / ``warning`` /
  ``error`` / ``off``;
* ``REPRO_LOG_FORMAT`` — ``human`` (default, ``[repro.x] message``) or
  ``json`` (one JSON object per line: ``ts``, ``level``, ``logger``,
  ``message`` plus any ``extra`` fields).

Diagnostics that are *about* a command's execution (progress notes,
"wrote file X", setup failures) go through here; a command's primary
output — the reproduced tables, the campaign report — stays on stdout
via ``print``, so piping a CLI into a file or ``jq`` never mixes the
two.  Everything lands on stderr.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

__all__ = ["get_logger", "setup_logging", "JsonFormatter", "HumanFormatter"]

#: Attributes of a LogRecord that are plumbing, not user-supplied extras.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", None, None
    ).__dict__
) | {"message", "asctime", "taskName"}

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    # 'off' disables the handler entirely (see setup_logging).
    "off": logging.CRITICAL + 10,
}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` kwargs become fields."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a single JSON line."""
        doc = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            ),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = value
        return json.dumps(doc, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """Terminal-friendly ``[logger] message (k=v, ...)`` rendering."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a terminal line."""
        extras = ", ".join(
            f"{k}={v}"
            for k, v in sorted(record.__dict__.items())
            if k not in _RESERVED and not k.startswith("_")
        )
        line = f"[{record.name}] {record.getMessage()}"
        if record.levelno >= logging.WARNING:
            line = f"[{record.name}] {record.levelname}: {record.getMessage()}"
        return f"{line} ({extras})" if extras else line


def setup_logging(
    level: str | None = None,
    fmt: str | None = None,
    stream=None,
) -> logging.Logger:
    """Configure (or reconfigure) the ``repro`` root logger.

    Reads ``REPRO_LOG`` / ``REPRO_LOG_FORMAT`` when the arguments are
    None; safe to call repeatedly (the single stderr handler is
    replaced, never stacked).  ``level='off'`` leaves the logger mounted
    but raises its threshold above CRITICAL, so call sites never need an
    enabled-check.
    """
    level = (level or os.environ.get("REPRO_LOG") or "info").lower()
    fmt = (fmt or os.environ.get("REPRO_LOG_FORMAT") or "human").lower()
    if level not in _LEVELS:
        raise ValueError(
            f"unknown REPRO_LOG level {level!r}; "
            f"expected one of {', '.join(_LEVELS)}"
        )
    if fmt not in ("human", "json"):
        raise ValueError(
            f"unknown REPRO_LOG_FORMAT {fmt!r}; expected 'human' or 'json'"
        )
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else HumanFormatter()
    )
    logger.addHandler(handler)
    logger.setLevel(_LEVELS[level])
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger('chaos')`` →
    ``repro.chaos``), configuring the hierarchy on first use."""
    root = logging.getLogger("repro")
    if not root.handlers:
        setup_logging()
    return root.getChild(name) if name else root
