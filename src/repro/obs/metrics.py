"""Label-aware metrics registry (counters, gauges, histograms).

A tiny, dependency-free cousin of the Prometheus client: metrics are
identified by a name plus a frozen label set, created on first touch and
aggregated in-process.  The engine records run facts (levels, examined
edges, summary-bit hit rate, per-rank stall), the tracer records
communication volume per collective/channel, and the experiment layer
records per-experiment wall-clock — all into one registry that exports
as a plain dict / JSON for ``BENCH_*.json`` telemetry blocks and the
``--metrics-out`` CLI flag.
"""

from __future__ import annotations

import json
import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
]


def _format_key(name: str, labels: dict) -> str:
    """Render ``name{k=v,...}`` with labels sorted for determinism."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value.

    Safe under concurrent recording: ``+=`` on a Python float is a
    read-modify-write, so increments hold a per-metric lock (the serving
    scheduler records from many tasks and threads at once).
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge (a single reference store — atomic under
        the GIL, so no lock is needed)."""
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values with quantile estimation.

    Scalar aggregates (count/sum/min/max/mean) are exact; quantiles come
    from logarithmic buckets (relative width ``_BUCKET_BASE``), so memory
    stays bounded by the observations' dynamic range — observation
    streams from large runs (e.g. per-rank stall times every level) never
    store individual samples.  Within a bucket the estimate is the
    geometric midpoint, clamped to the observed ``[min, max]``, giving a
    worst-case relative error of about 9 % and exact answers for empty
    and single-valued streams.

    ``observe`` updates several aggregates that must stay mutually
    consistent, so it (and the quantile reads) hold a per-histogram lock
    — concurrent recorders (the serving scheduler's worker threads)
    cannot tear the count/sum/bucket triple.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets", "_lock")

    #: Bucket boundary ratio: value v > 0 lands in bucket
    #: ``ceil(log(v) / log(base))``, i.e. (base**(i-1), base**i].
    _BUCKET_BASE = 2.0 ** 0.25
    _LOG_BASE = math.log(_BUCKET_BASE)

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # (sign, index) -> count; sign in {-1, 0, 1}, index 0 for sign 0.
        self._buckets: dict[tuple[int, int], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def _bucket(cls, value: float) -> tuple[int, int]:
        if value == 0.0:
            return (0, 0)
        sign = 1 if value > 0 else -1
        return (sign, math.ceil(math.log(abs(value)) / cls._LOG_BASE - 1e-12))

    @classmethod
    def _representative(cls, key: tuple[int, int]) -> float:
        sign, idx = key
        if sign == 0:
            return 0.0
        return sign * cls._BUCKET_BASE ** (idx - 0.5)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        key = self._bucket(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._buckets[key] = self._buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Returns 0.0 for an empty histogram; exact for a single sample
        (and for any single-valued stream, via the min/max clamp).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q / 100.0 * self.count))
            # The extreme ranks are tracked exactly.
            if rank <= 1:
                return self.min
            if rank >= self.count:
                return self.max
            cumulative = 0
            value = self.max
            for key in sorted(self._buckets, key=self._representative):
                cumulative += self._buckets[key]
                if cumulative >= rank:
                    value = self._representative(key)
                    break
            return min(max(value, self.min), self.max)

    def cumulative_buckets(self) -> dict:
        """Cumulative bucket counts for OpenMetrics-style exposition.

        Returns ``{"buckets": [(le, cumulative_count), ...], "count": n,
        "sum": s}`` read under one lock so the triple is consistent.  Each
        ``le`` is the upper bound of one occupied internal log bucket
        (ascending, strictly increasing); the final implicit ``+Inf``
        bucket equals ``count`` and is left to the renderer.
        """

        def upper(key: tuple[int, int]) -> float:
            sign, idx = key
            if sign == 0:
                return 0.0
            if sign > 0:
                return self._BUCKET_BASE ** idx
            return -(self._BUCKET_BASE ** (idx - 1))

        with self._lock:
            keys = sorted(self._buckets, key=self._representative)
            buckets: list[tuple[float, int]] = []
            cumulative = 0
            for key in keys:
                cumulative += self._buckets[key]
                buckets.append((upper(key), cumulative))
            return {
                "buckets": buckets,
                "count": self.count,
                "sum": self.total,
            }

    def count_le(self, threshold: float) -> int:
        """Observations at or below ``threshold`` (bucket-resolution).

        Counts every occupied bucket whose upper bound is ≤ ``threshold``,
        so the answer is exact at bucket boundaries and otherwise errs
        low by at most one bucket (~9 % relative width) — the resolution
        the SLO layer's good-event accounting inherits.
        """
        snap = self.cumulative_buckets()
        best = 0
        for le, cumulative in snap["buckets"]:
            if le <= threshold:
                best = cumulative
            else:
                break
        return best

    def summary(self) -> dict:
        """The aggregates (plus p50/p90/p99 estimates) as a plain dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges and histograms.

    Get-or-create races under concurrent first touch would hand two
    recorders distinct metric objects (one silently dropped), so the
    lookup/insert runs under a registry lock; the returned objects are
    themselves safe to record into from any thread.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        # Label values are stringified so series identity matches the
        # rendered name and mixed-type values (level=3 vs level="3")
        # cannot split one series or break deterministic sorting.
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        key = self._key(name, labels)
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        key = self._key(name, labels)
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
        return g

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        key = self._key(name, labels)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram()
        return h

    def snapshot(self) -> tuple[dict, dict, dict]:
        """Shallow copies of the (counters, gauges, histograms) maps.

        Keys are the internal ``(name, sorted-label-tuple)`` identities;
        values are the live metric objects (safe to read — they guard
        their own state).  Taken under the registry lock so the exposition
        layer sees a consistent family set.
        """
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
            )

    def items(self):
        """Iterate ``(formatted_name, metric)`` over all families."""
        for (name, labels), m in sorted(self._counters.items()):
            yield _format_key(name, dict(labels)), m
        for (name, labels), m in sorted(self._gauges.items()):
            yield _format_key(name, dict(labels)), m
        for (name, labels), m in sorted(self._histograms.items()):
            yield _format_key(name, dict(labels)), m

    def as_dict(self) -> dict:
        """Snapshot as nested plain dicts (JSON-ready)."""
        return {
            "counters": {
                _format_key(n, dict(ls)): c.value
                for (n, ls), c in sorted(self._counters.items())
            },
            "gauges": {
                _format_key(n, dict(ls)): g.value
                for (n, ls), g in sorted(self._gauges.items())
            },
            "histograms": {
                _format_key(n, dict(ls)): h.summary()
                for (n, ls), h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent)

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


_DEFAULT: MetricsRegistry | None = None


def default_registry() -> MetricsRegistry:
    """Process-wide registry shared by the experiment layer, the CLI and
    the benchmark harness (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT


def reset_default_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (tests, CLI)."""
    global _DEFAULT
    _DEFAULT = MetricsRegistry()
    return _DEFAULT
