"""Lightweight stdlib-only ops HTTP server for live serving processes.

``repro-serve --ops-port N`` starts one of these next to the campaign so
an operator (or the CI scrape step) can look at the process *while it
serves* instead of waiting for the post-hoc report:

* ``/metrics`` — the live :class:`~repro.obs.metrics.MetricsRegistry`
  in OpenMetrics text format (:mod:`repro.obs.expo`);
* ``/healthz`` — JSON liveness: every registered probe must pass
  (scheduler dispatcher alive, prepared-graph cache answering); any
  failing probe turns the status 503 so a load balancer or CI poll
  loop can gate on the HTTP code alone;
* ``/debug/state`` — one JSON snapshot of operational state (queue
  depth, in-flight batches, cache stats, config fingerprint).

The server is a ``ThreadingHTTPServer`` on a daemon thread: handlers
only ever *read* (the registry and probes are lock-protected), the hot
path never blocks on a scrape, and a hung client cannot wedge shutdown.
When no ops server is requested nothing is constructed — callers that
want an always-present handle use :data:`NULL_OPS`, whose ``start`` /
``stop`` are no-ops (the same null-object pattern as ``NULL_TRACER``
and ``NULL_HOSTPROF``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.expo import CONTENT_TYPE, render_openmetrics

__all__ = ["OpsServer", "NullOpsServer", "NULL_OPS", "normalize_probe"]


def normalize_probe(result) -> tuple[bool, object]:
    """Coerce a health probe's return into ``(ok, detail)``.

    Probes may return a bare bool, an ``(ok, detail)`` pair, or any
    JSON-ready detail object (treated as passing).  Exceptions are the
    caller's to map to ``(False, ...)``.
    """
    if isinstance(result, tuple) and len(result) == 2:
        return bool(result[0]), result[1]
    if isinstance(result, bool):
        return result, {}
    return True, result


class NullOpsServer:
    """The disabled ops server: binds nothing, serves nothing."""

    __slots__ = ()

    enabled = False
    port = None

    def start(self) -> "NullOpsServer":
        """No-op start."""
        return self

    def stop(self) -> None:
        """No-op stop."""

    def __enter__(self) -> "NullOpsServer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_OPS = NullOpsServer()


class OpsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/debug/state`` over HTTP.

    ``metrics`` is the live registry to expose; ``health`` maps probe
    name → zero-argument callable (see :func:`normalize_probe`);
    ``state`` is a zero-argument callable returning the ``/debug/state``
    JSON document.  ``port=0`` binds an ephemeral port, readable from
    :attr:`port` after :meth:`start`.
    """

    enabled = True

    def __init__(
        self,
        metrics=None,
        health: dict | None = None,
        state=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.metrics = metrics
        self.health = dict(health or {})
        self.state = state
        self.host = host
        self._requested_port = int(port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ---- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int | None:
        """The bound port (None until started)."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> str | None:
        """Base URL of the running server (None until started)."""
        return f"http://{self.host}:{self.port}" if self._httpd else None

    def start(self) -> "OpsServer":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-ops",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ---- endpoint payloads ----------------------------------------------

    def healthz(self) -> tuple[bool, dict]:
        """Run every probe; overall ok = all probes ok."""
        checks: dict[str, dict] = {}
        ok = True
        for name in sorted(self.health):
            try:
                probe_ok, detail = normalize_probe(self.health[name]())
            except Exception as exc:  # a crashing probe is a failing probe
                probe_ok, detail = False, {"error": str(exc)}
            ok = ok and probe_ok
            checks[name] = {
                "ok": probe_ok,
                "detail": detail,
            }
        return ok, {"status": "ok" if ok else "unhealthy", "checks": checks}

    def debug_state(self) -> dict:
        """The ``/debug/state`` document (empty when no provider)."""
        return dict(self.state()) if self.state is not None else {}


def _make_handler(ops: OpsServer):
    """A request-handler class closed over one :class:`OpsServer`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-ops/1"

        def log_message(self, fmt, *args):  # silence per-request stderr
            pass

        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, doc: dict) -> None:
            body = (
                json.dumps(doc, indent=2, sort_keys=True, default=str)
                + "\n"
            ).encode("utf-8")
            self._send(code, body, "application/json; charset=utf-8")

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    if ops.metrics is None:
                        self._send_json(
                            404, {"error": "no metrics registry attached"}
                        )
                        return
                    body = render_openmetrics(ops.metrics).encode("utf-8")
                    self._send(200, body, CONTENT_TYPE)
                elif path == "/healthz":
                    ok, doc = ops.healthz()
                    self._send_json(200 if ok else 503, doc)
                elif path == "/debug/state":
                    self._send_json(200, ops.debug_state())
                else:
                    self._send_json(
                        404,
                        {
                            "error": f"unknown path {path}",
                            "paths": ["/metrics", "/healthz", "/debug/state"],
                        },
                    )
            except Exception as exc:  # never let a scrape kill the server
                self._send_json(500, {"error": str(exc)})

    return Handler
