"""SLO objectives and multiwindow burn-rate evaluation over live metrics.

The serving layer records request counters and the ``serve.latency_ms``
histogram into a :class:`~repro.obs.metrics.MetricsRegistry`; this
module turns those raw series into *judgements*: declared objectives
(p99 latency ≤ X ms, error rate ≤ Y), an error budget per objective, and
the classic two-window burn-rate test — a short window that catches fast
budget burn (outage-grade) and a long window that catches slow sustained
burn — scaled down from the canonical 5m/1h pairing to seconds so a
load-generator campaign lasting a few seconds still produces meaningful
windows.

:class:`SLOMonitor` samples the registry over time (the load generator
drives :meth:`~SLOMonitor.sample` while requests flow) and
:meth:`~SLOMonitor.evaluate` reduces the sample history to one verdict
per objective:

* ``ok`` — neither window burns above its threshold;
* ``fast_burn`` / ``slow_burn`` — one window exceeds its threshold
  (warning-grade);
* ``breach`` — *both* windows exceed their thresholds, the multiwindow
  page condition;
* ``insufficient`` — not enough traffic in the windows to judge.

The final report is ``repro.slo/v1``; :func:`record_for_slo_report`
folds it into the run ledger (kind ``slo``) so the dashboard
(:mod:`repro.obs.dash`) can surface breaches next to the TEPS trends.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.ledger import LedgerRecord, config_fingerprint

__all__ = [
    "SCHEMA",
    "SLOObjective",
    "SLOSpec",
    "SLOMonitor",
    "record_for_slo_report",
    "VERDICT_SEVERITY",
]

SCHEMA = "repro.slo/v1"

#: Verdicts ordered by severity; the overall verdict is the worst one.
VERDICT_SEVERITY = {
    "ok": 0,
    "insufficient": 1,
    "slow_burn": 2,
    "fast_burn": 3,
    "breach": 4,
}

#: Registry series the monitor reads (summed across label sets).
REQUESTS_COUNTER = "serve.requests_total"
ERRORS_COUNTER = "serve.errors_total"
LATENCY_HISTOGRAM = "serve.latency_ms"


@dataclass(frozen=True)
class SLOObjective:
    """One objective: a latency quantile bound or an error-rate bound.

    ``kind="latency"``: at least ``quantile``% of requests must finish
    within ``threshold_ms`` — the error budget is the allowed slow
    fraction, ``1 - quantile/100``.  ``kind="error_rate"``: at most
    ``max_rate`` of requests may fail — the budget is ``max_rate``
    itself.  Burn rate is (bad fraction in window) / budget: 1.0 means
    exactly on budget, higher means the budget is being spent early.
    """

    kind: str  # "latency" | "error_rate"
    threshold_ms: float = 0.0
    quantile: float = 99.0
    max_rate: float = 0.001

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO objective kind {self.kind!r}")
        if self.kind == "latency":
            if not 0.0 < self.quantile < 100.0:
                raise ValueError(
                    f"latency quantile {self.quantile} outside (0, 100)"
                )
            if self.threshold_ms <= 0:
                raise ValueError("latency threshold_ms must be positive")
        elif not 0.0 < self.max_rate < 1.0:
            raise ValueError(f"error-rate bound {self.max_rate} outside (0, 1)")

    @property
    def budget(self) -> float:
        """The allowed bad-event fraction (the error budget)."""
        if self.kind == "latency":
            return 1.0 - self.quantile / 100.0
        return self.max_rate

    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``p99_le_5ms`` or ``errors_le_0.1pct``."""
        if self.kind == "latency":
            q = f"{self.quantile:g}".replace(".", "_")
            t = f"{self.threshold_ms:g}".replace(".", "_")
            return f"p{q}_le_{t}ms"
        r = f"{self.max_rate * 100:g}".replace(".", "_")
        return f"errors_le_{r}pct"

    def as_dict(self) -> dict:
        """The objective as a JSON-ready dict."""
        doc = {"kind": self.kind, "label": self.label, "budget": self.budget}
        if self.kind == "latency":
            doc["threshold_ms"] = self.threshold_ms
            doc["quantile"] = self.quantile
        else:
            doc["max_rate"] = self.max_rate
        return doc


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives plus the two burn-rate windows.

    The window/burn pairs are the seconds-scaled analogue of the
    canonical (5m, burn 14.4) / (1h, burn 6) multiwindow alert: the fast
    window catches a budget being torched right now, the slow window
    catches sustained leakage, and only *both* firing together counts as
    a breach.
    """

    name: str = "serving"
    objectives: tuple = field(
        default_factory=lambda: (
            SLOObjective(kind="latency", threshold_ms=50.0, quantile=99.0),
            SLOObjective(kind="error_rate", max_rate=0.001),
        )
    )
    fast_window_s: float = 5.0
    slow_window_s: float = 30.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("an SLO spec needs at least one objective")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s"
            )

    def as_dict(self) -> dict:
        """The spec as a JSON-ready dict."""
        return {
            "name": self.name,
            "objectives": [o.as_dict() for o in self.objectives],
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


@dataclass(frozen=True)
class _Sample:
    """One point-in-time snapshot of the SLO-relevant registry series."""

    t: float
    requests: float
    errors: float
    latency_count: float
    #: objective label -> observations at/under that objective's threshold
    good: dict


class SLOMonitor:
    """Sample a registry over time and judge it against an SLO spec.

    ``clock`` is injectable (tests drive a fake monotonic clock);
    ``interval`` is the suggested sampling period for drivers
    (defaults to ``fast_window_s / 5`` so the fast window always spans
    several samples).  Sampling is cheap — a registry snapshot plus a
    few sums — and evaluation never touches the registry, only the
    recorded samples.
    """

    def __init__(self, registry, spec: SLOSpec | None = None, *,
                 clock=time.monotonic, interval: float | None = None,
                 max_samples: int = 4096) -> None:
        self.registry = registry
        self.spec = spec if spec is not None else SLOSpec()
        self.clock = clock
        self.interval = (
            float(interval)
            if interval is not None
            else self.spec.fast_window_s / 5.0
        )
        self._samples: deque[_Sample] = deque(maxlen=max_samples)

    # ---- sampling --------------------------------------------------------

    def sample(self) -> _Sample:
        """Snapshot the SLO-relevant series now and append to history."""
        counters, _gauges, histograms = self.registry.snapshot()

        def counter_sum(name: str) -> float:
            return sum(
                c.value for (n, _labels), c in counters.items() if n == name
            )

        hists = [
            h
            for (n, _labels), h in histograms.items()
            if n == LATENCY_HISTOGRAM
        ]
        good: dict[str, float] = {}
        for obj in self.spec.objectives:
            if obj.kind == "latency":
                good[obj.label] = float(
                    sum(h.count_le(obj.threshold_ms) for h in hists)
                )
        snap = _Sample(
            t=float(self.clock()),
            requests=counter_sum(REQUESTS_COUNTER),
            errors=counter_sum(ERRORS_COUNTER),
            latency_count=float(sum(h.count for h in hists)),
            good=good,
        )
        self._samples.append(snap)
        return snap

    @property
    def samples(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    # ---- evaluation ------------------------------------------------------

    def _baseline(self, now: float, window: float) -> _Sample:
        """The newest sample at or before ``now - window`` (else oldest)."""
        cutoff = now - window
        chosen = self._samples[0]
        for snap in self._samples:
            if snap.t <= cutoff:
                chosen = snap
            else:
                break
        return chosen

    def _window_fractions(self, obj: SLOObjective, now: float,
                          window: float) -> tuple[float | None, float]:
        """(bad_fraction, event_delta) of one objective over one window.

        ``bad_fraction`` is None when no events landed in the window —
        "no traffic" must stay distinguishable from "no failures".
        """
        latest = self._samples[-1]
        base = self._baseline(now, window)
        if obj.kind == "error_rate":
            events = latest.requests - base.requests
            bad = latest.errors - base.errors
        else:
            events = latest.latency_count - base.latency_count
            bad = events - (
                latest.good.get(obj.label, 0.0) - base.good.get(obj.label, 0.0)
            )
        if events <= 0:
            return None, 0.0
        return max(0.0, bad) / events, events

    def evaluate(self, now: float | None = None) -> dict:
        """Reduce the sample history to a ``repro.slo/v1`` report."""
        spec = self.spec
        if now is None:
            now = self._samples[-1].t if self._samples else float(self.clock())
        objectives: list[dict] = []
        overall = "ok" if self._samples else "insufficient"
        for obj in spec.objectives:
            doc = obj.as_dict()
            if not self._samples:
                doc.update(verdict="insufficient", windows={})
                objectives.append(doc)
                continue
            windows: dict[str, dict] = {}
            burning = {}
            for win_name, win_s, burn_limit in (
                ("fast", spec.fast_window_s, spec.fast_burn),
                ("slow", spec.slow_window_s, spec.slow_burn),
            ):
                bad_fraction, events = self._window_fractions(obj, now, win_s)
                burn = (
                    bad_fraction / obj.budget
                    if bad_fraction is not None
                    else None
                )
                burning[win_name] = burn is not None and burn >= burn_limit
                windows[win_name] = {
                    "window_s": win_s,
                    "events": events,
                    "bad_fraction": bad_fraction,
                    "burn_rate": burn,
                    "burn_limit": burn_limit,
                    "burning": burning[win_name],
                }
            if all(w["burn_rate"] is None for w in windows.values()):
                verdict = "insufficient"
            elif burning["fast"] and burning["slow"]:
                verdict = "breach"
            elif burning["fast"]:
                verdict = "fast_burn"
            elif burning["slow"]:
                verdict = "slow_burn"
            else:
                verdict = "ok"
            doc.update(verdict=verdict, windows=windows)
            objectives.append(doc)
            if VERDICT_SEVERITY[verdict] > VERDICT_SEVERITY[overall]:
                overall = verdict
        latest = self._samples[-1] if self._samples else None
        return {
            "schema": SCHEMA,
            "slo": spec.name,
            "spec": spec.as_dict(),
            "verdict": overall,
            "objectives": objectives,
            "samples": len(self._samples),
            "elapsed_s": (
                (self._samples[-1].t - self._samples[0].t)
                if len(self._samples) > 1
                else 0.0
            ),
            "totals": {
                "requests": latest.requests if latest else 0.0,
                "errors": latest.errors if latest else 0.0,
                "latency_observations": (
                    latest.latency_count if latest else 0.0
                ),
            },
        }


def record_for_slo_report(report: dict, source: str = "") -> LedgerRecord:
    """A ledger record (kind ``slo``) from one ``repro.slo/v1`` report.

    The fingerprint covers the spec (objectives + windows), so reruns of
    the same objectives form one trend series; metrics carry the burn
    rates and bad fractions per objective/window as flat floats for the
    dashboard and the trend checker.
    """
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"not an SLO report: schema {report.get('schema')!r}"
        )
    spec = dict(report.get("spec") or {})
    metrics: dict[str, float] = {
        "requests": float(report["totals"]["requests"]),
        "errors": float(report["totals"]["errors"]),
        "samples": float(report.get("samples", 0)),
        "elapsed_s": float(report.get("elapsed_s", 0.0)),
        "verdict_severity": float(
            VERDICT_SEVERITY.get(report.get("verdict", "ok"), 0)
        ),
    }
    verdicts: dict[str, str] = {}
    for obj in report.get("objectives", []):
        label = obj["label"]
        verdicts[label] = obj["verdict"]
        for win_name, win in (obj.get("windows") or {}).items():
            if win.get("burn_rate") is not None:
                metrics[f"{label}.{win_name}.burn_rate"] = float(
                    win["burn_rate"]
                )
                metrics[f"{label}.{win_name}.bad_fraction"] = float(
                    win["bad_fraction"]
                )
    return LedgerRecord(
        kind="slo",
        name=str(report.get("slo", "serving")),
        fingerprint=config_fingerprint(spec),
        config=spec,
        metrics=metrics,
        labels={"source": source, "verdict": str(report.get("verdict"))},
        extra={"objective_verdicts": verdicts},
    )
