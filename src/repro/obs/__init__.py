"""End-to-end run telemetry: span tracer, metrics, trace exporters.

The observability layer the paper's profiling figures (11, 12, 14) imply:
per-level, per-rank, per-collective accounting of where simulated time
goes, recorded live by instrumentation hooks in the engine, the level
kernels and the simulated communicator.

* :mod:`repro.obs.tracer` — nestable spans + per-collective events;
  off-by-default :data:`~repro.obs.tracer.NULL_TRACER` keeps the hot
  path free when telemetry is disabled.
* :mod:`repro.obs.metrics` — counters / gauges / histograms behind a
  label-aware registry.
* :mod:`repro.obs.export` — Chrome trace-event JSON (one track per
  simulated rank, simulated timestamps; open in Perfetto), JSONL event
  log, terminal summary table.

See ``docs/OBSERVABILITY.md`` for the span model and event schema.
"""

from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    rank_timeline,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CommEvent,
    NullTracer,
    RunTelemetry,
    Span,
    SpanTracer,
)

__all__ = [
    "Span",
    "CommEvent",
    "NullTracer",
    "SpanTracer",
    "RunTelemetry",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "rank_timeline",
    "chrome_trace",
    "write_chrome_trace",
    "events_jsonl",
    "write_events_jsonl",
    "summary_table",
]
