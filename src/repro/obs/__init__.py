"""End-to-end run telemetry: span tracer, metrics, trace exporters.

The observability layer the paper's profiling figures (11, 12, 14) imply:
per-level, per-rank, per-collective accounting of where simulated time
goes, recorded live by instrumentation hooks in the engine, the level
kernels and the simulated communicator.

* :mod:`repro.obs.tracer` — nestable spans + per-collective events;
  off-by-default :data:`~repro.obs.tracer.NULL_TRACER` keeps the hot
  path free when telemetry is disabled.
* :mod:`repro.obs.metrics` — counters / gauges / histograms behind a
  label-aware registry.
* :mod:`repro.obs.export` — Chrome trace-event JSON (one track per
  simulated rank, simulated timestamps; open in Perfetto), JSONL event
  log, terminal summary table.
* :mod:`repro.obs.analyze` — critical-path attribution (the Fig. 11
  breakdown computed from a trace) and model-drift detection.
* :mod:`repro.obs.baseline` — canonical schema + policy-aware differ
  over the committed ``BENCH_*.json`` baselines.
* :mod:`repro.obs.perfcli` — the ``repro-perf`` command
  (attribute / drift / diff).
* :mod:`repro.obs.ledger` — append-only ``repro.run/v1`` JSONL store of
  every measured run (commit, config fingerprint, headline metrics,
  attribution, environment provenance).
* :mod:`repro.obs.trend` — rolling-median + MAD trend check of each
  ledger series' latest run against its own history.
* :mod:`repro.obs.hostprof` — opt-in host-side phase profiling (wall,
  cProfile collapsed stacks, tracemalloc peaks); off-by-default
  :data:`~repro.obs.hostprof.NULL_HOSTPROF` mirrors the null tracer.
* :mod:`repro.obs.dash` — standalone static HTML dashboard over the
  ledger (inline SVG, no dependencies).
* :mod:`repro.obs.log` — ``REPRO_LOG`` structured stdlib logging for
  CLI diagnostics.
* :mod:`repro.obs.ledgercli` — the ``repro-ledger`` command
  (log / list / show / check / dash).
* :mod:`repro.obs.expo` — OpenMetrics/Prometheus text exposition of a
  metrics registry (plus the strict parser used in round-trip tests).
* :mod:`repro.obs.opsserver` — stdlib-only live ops HTTP server
  (``/metrics``, ``/healthz``, ``/debug/state``) behind
  ``repro-serve --ops-port``.
* :mod:`repro.obs.slo` — SLO objectives, multiwindow burn-rate
  evaluation, and the ``repro.slo/v1`` ledger record.

See ``docs/OBSERVABILITY.md`` for the span model, event schema, and the
attribution / drift / diff / ledger / trend walkthroughs.
"""

from repro.obs.expo import (
    CONTENT_TYPE,
    ExpositionError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    rank_timeline,
    request_chain,
    serve_chrome_trace,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
    write_serve_trace,
)
from repro.obs.hostprof import (
    NULL_HOSTPROF,
    HostPhase,
    HostProfile,
    HostProfiler,
    NullHostProfiler,
)
from repro.obs.log import get_logger, setup_logging
from repro.obs.opsserver import NULL_OPS, NullOpsServer, OpsServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CommEvent,
    NullTracer,
    RunTelemetry,
    Span,
    SpanTracer,
)

__all__ = [
    "Span",
    "CommEvent",
    "NullTracer",
    "SpanTracer",
    "RunTelemetry",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "rank_timeline",
    "chrome_trace",
    "write_chrome_trace",
    "serve_chrome_trace",
    "write_serve_trace",
    "request_chain",
    "events_jsonl",
    "write_events_jsonl",
    "summary_table",
    "CONTENT_TYPE",
    "ExpositionError",
    "render_openmetrics",
    "parse_openmetrics",
    "OpsServer",
    "NullOpsServer",
    "NULL_OPS",
    "SLOObjective",
    "SLOSpec",
    "SLOMonitor",
    "record_for_slo_report",
    "LevelAttribution",
    "RunAttribution",
    "attribute_run",
    "attribute_timing",
    "record_attribution",
    "DriftComponent",
    "ModelDriftReport",
    "detect_model_drift",
    "Baseline",
    "BenchRecord",
    "DiffRow",
    "DiffVerdict",
    "diff_baselines",
    "HostPhase",
    "HostProfile",
    "HostProfiler",
    "NullHostProfiler",
    "NULL_HOSTPROF",
    "get_logger",
    "setup_logging",
    "LedgerRecord",
    "RunLedger",
    "default_ledger",
    "environment_provenance",
    "record_for_result",
    "TrendReport",
    "check_records",
    "render_dashboard",
    "write_dashboard",
]

# analyze/baseline pull in repro.core (and transitively repro.mpi, which
# itself imports repro.obs.tracer), so they are resolved lazily to keep
# this package importable from anywhere in that chain.
_LAZY = {
    "LevelAttribution": "repro.obs.analyze",
    "RunAttribution": "repro.obs.analyze",
    "attribute_run": "repro.obs.analyze",
    "attribute_timing": "repro.obs.analyze",
    "record_attribution": "repro.obs.analyze",
    "DriftComponent": "repro.obs.analyze",
    "ModelDriftReport": "repro.obs.analyze",
    "detect_model_drift": "repro.obs.analyze",
    "Baseline": "repro.obs.baseline",
    "BenchRecord": "repro.obs.baseline",
    "DiffRow": "repro.obs.baseline",
    "DiffVerdict": "repro.obs.baseline",
    "diff_baselines": "repro.obs.baseline",
    "LedgerRecord": "repro.obs.ledger",
    "RunLedger": "repro.obs.ledger",
    "default_ledger": "repro.obs.ledger",
    "environment_provenance": "repro.obs.ledger",
    "record_for_result": "repro.obs.ledger",
    "TrendReport": "repro.obs.trend",
    "check_records": "repro.obs.trend",
    "SLOObjective": "repro.obs.slo",
    "SLOSpec": "repro.obs.slo",
    "SLOMonitor": "repro.obs.slo",
    "record_for_slo_report": "repro.obs.slo",
    "render_dashboard": "repro.obs.dash",
    "write_dashboard": "repro.obs.dash",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
