"""End-to-end run telemetry: span tracer, metrics, trace exporters.

The observability layer the paper's profiling figures (11, 12, 14) imply:
per-level, per-rank, per-collective accounting of where simulated time
goes, recorded live by instrumentation hooks in the engine, the level
kernels and the simulated communicator.

* :mod:`repro.obs.tracer` — nestable spans + per-collective events;
  off-by-default :data:`~repro.obs.tracer.NULL_TRACER` keeps the hot
  path free when telemetry is disabled.
* :mod:`repro.obs.metrics` — counters / gauges / histograms behind a
  label-aware registry.
* :mod:`repro.obs.export` — Chrome trace-event JSON (one track per
  simulated rank, simulated timestamps; open in Perfetto), JSONL event
  log, terminal summary table.
* :mod:`repro.obs.analyze` — critical-path attribution (the Fig. 11
  breakdown computed from a trace) and model-drift detection.
* :mod:`repro.obs.baseline` — canonical schema + policy-aware differ
  over the committed ``BENCH_*.json`` baselines.
* :mod:`repro.obs.perfcli` — the ``repro-perf`` command
  (attribute / drift / diff).

See ``docs/OBSERVABILITY.md`` for the span model, event schema, and the
attribution / drift / diff walkthroughs.
"""

from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    rank_timeline,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CommEvent,
    NullTracer,
    RunTelemetry,
    Span,
    SpanTracer,
)

__all__ = [
    "Span",
    "CommEvent",
    "NullTracer",
    "SpanTracer",
    "RunTelemetry",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "rank_timeline",
    "chrome_trace",
    "write_chrome_trace",
    "events_jsonl",
    "write_events_jsonl",
    "summary_table",
    "LevelAttribution",
    "RunAttribution",
    "attribute_run",
    "attribute_timing",
    "record_attribution",
    "DriftComponent",
    "ModelDriftReport",
    "detect_model_drift",
    "Baseline",
    "BenchRecord",
    "DiffRow",
    "DiffVerdict",
    "diff_baselines",
]

# analyze/baseline pull in repro.core (and transitively repro.mpi, which
# itself imports repro.obs.tracer), so they are resolved lazily to keep
# this package importable from anywhere in that chain.
_LAZY = {
    "LevelAttribution": "repro.obs.analyze",
    "RunAttribution": "repro.obs.analyze",
    "attribute_run": "repro.obs.analyze",
    "attribute_timing": "repro.obs.analyze",
    "record_attribution": "repro.obs.analyze",
    "DriftComponent": "repro.obs.analyze",
    "ModelDriftReport": "repro.obs.analyze",
    "detect_model_drift": "repro.obs.analyze",
    "Baseline": "repro.obs.baseline",
    "BenchRecord": "repro.obs.baseline",
    "DiffRow": "repro.obs.baseline",
    "DiffVerdict": "repro.obs.baseline",
    "diff_baselines": "repro.obs.baseline",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
