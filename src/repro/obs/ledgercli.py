"""``repro-ledger``: inspect and extend the persistent run ledger.

Five subcommands on top of :mod:`repro.obs.ledger`,
:mod:`repro.obs.trend` and :mod:`repro.obs.dash`:

* ``repro-ledger log --from-bench BENCH.json [--from-chaos R.json]
  [--from-perfdiff V.json] [--label k=v]`` — fold existing artifacts
  (pytest-benchmark JSON, chaos campaign reports, perf-diff verdicts)
  into ledger records; live runs append directly via
  ``repro-experiment ... --ledger`` / ``repro-chaos run --ledger``.
* ``repro-ledger list [--kind experiment] [--name fig09] [--last N]`` —
  table of records, oldest first.
* ``repro-ledger show [INDEX]`` — one record as JSON (default: newest;
  negative indices count from the end).
* ``repro-ledger check [--window N] [--threshold S] [--rel-floor PCT]
  [--fail-on-break]`` — rolling-median + MAD trend check of each
  series' latest run against its own history.
* ``repro-ledger dash --out dashboard.html`` — self-contained static
  HTML dashboard (inline SVG, no external assets).

``--dir`` (or ``$REPRO_LEDGER_DIR``) selects the ledger location;
default ``.repro/ledger/``.  Exit codes: 0 clean, 1 trend break with
``--fail-on-break``, 2 usage / missing input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.log import get_logger

__all__ = ["main", "build_parser"]

log = get_logger("ledger")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-ledger`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ledger",
        description="persistent run ledger: record, inspect, trend-check",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="ledger directory (default .repro/ledger or $REPRO_LEDGER_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_log = sub.add_parser(
        "log", help="append records built from existing artifacts"
    )
    p_log.add_argument(
        "--from-bench",
        action="append",
        default=[],
        metavar="PATH",
        help="pytest-benchmark JSON file (repeatable)",
    )
    p_log.add_argument(
        "--from-chaos",
        action="append",
        default=[],
        metavar="PATH",
        help="repro.chaos/v1 campaign report (repeatable)",
    )
    p_log.add_argument(
        "--from-perfdiff",
        action="append",
        default=[],
        metavar="PATH",
        help="repro.perfdiff/v1 verdict (repeatable)",
    )
    p_log.add_argument(
        "--label",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="label to stamp on every appended record (repeatable)",
    )

    p_list = sub.add_parser("list", help="table of ledger records")
    p_list.add_argument("--kind", default=None)
    p_list.add_argument("--name", default=None)
    p_list.add_argument(
        "--last", type=int, default=None, metavar="N", help="newest N only"
    )

    p_show = sub.add_parser("show", help="one record as JSON")
    p_show.add_argument(
        "index",
        nargs="?",
        type=int,
        default=-1,
        help="record index in append order (default -1: newest)",
    )

    p_check = sub.add_parser(
        "check", help="trend-check each series' latest run vs its history"
    )
    p_check.add_argument(
        "--window", type=int, default=8, help="history window (default 8)"
    )
    p_check.add_argument(
        "--threshold",
        type=float,
        default=4.0,
        help="robust-sigma outlier bar (default 4)",
    )
    p_check.add_argument(
        "--rel-floor",
        type=float,
        default=10.0,
        metavar="PCT",
        help="minimum relative move to flag, %% (default 10)",
    )
    p_check.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="runs required before a series is judged (default 3)",
    )
    p_check.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only consider the newest N records",
    )
    p_check.add_argument(
        "--all", action="store_true", help="show every verdict, not just breaks"
    )
    p_check.add_argument(
        "--fail-on-break",
        action="store_true",
        help="exit 1 when any series broke from its history",
    )
    p_check.add_argument(
        "--json", metavar="PATH", help="write the repro.trend/v1 report here"
    )

    p_dash = sub.add_parser(
        "dash", help="render the static HTML dashboard"
    )
    p_dash.add_argument(
        "--out",
        default="dashboard.html",
        metavar="PATH",
        help="output HTML file (default dashboard.html)",
    )
    p_dash.add_argument(
        "--title", default="repro run ledger", help="dashboard title"
    )
    return parser


def _parse_labels(pairs: list[str]) -> dict:
    labels = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"repro-ledger: bad --label {pair!r} (want k=v)")
        labels[key] = value
    return labels


def _cmd_log(ledger, args) -> int:
    from repro.obs.ledger import (
        record_from_chaos_report,
        record_from_perfdiff,
        records_from_benchmark_json,
    )

    if not (args.from_bench or args.from_chaos or args.from_perfdiff):
        print(
            "repro-ledger log: nothing to log "
            "(use --from-bench / --from-chaos / --from-perfdiff)",
            file=sys.stderr,
        )
        return 2
    labels = _parse_labels(args.label)
    appended = 0
    for path in args.from_bench:
        for rec in records_from_benchmark_json(path):
            rec.labels.update(labels)
            ledger.append(rec)
            appended += 1
    for path in args.from_chaos:
        report = json.loads(Path(path).read_text())
        rec = record_from_chaos_report(report, source=str(path))
        rec.labels.update(labels)
        ledger.append(rec)
        appended += 1
    for path in args.from_perfdiff:
        verdict = json.loads(Path(path).read_text())
        rec = record_from_perfdiff(verdict, source=str(path))
        rec.labels.update(labels)
        ledger.append(rec)
        appended += 1
    log.info("appended %d record(s) to %s", appended, ledger.path)
    print(f"{appended} record(s) appended to {ledger.path}")
    return 0


def _cmd_list(ledger, args) -> int:
    from repro.util.formatting import format_table

    records = ledger.records(kind=args.kind, name=args.name, last=args.last)
    if not records:
        print(f"ledger at {ledger.path}: no records")
        return 0
    rows = []
    for idx, rec in enumerate(records):
        teps = rec.metrics.get("teps")
        rows.append(
            [
                str(idx),
                (rec.ts or "")[:19],
                rec.kind,
                rec.name,
                rec.commit or "-",
                rec.fingerprint[:8],
                f"{teps:.3e}" if teps else "-",
            ]
        )
    print(
        format_table(
            ["#", "when", "kind", "name", "commit", "config", "teps"],
            rows,
            title=f"ledger: {len(records)} record(s) at {ledger.path}",
        )
    )
    return 0


def _cmd_show(ledger, args) -> int:
    records = ledger.records()
    if not records:
        print(f"ledger at {ledger.path}: no records", file=sys.stderr)
        return 2
    try:
        rec = records[args.index]
    except IndexError:
        print(
            f"repro-ledger show: index {args.index} out of range "
            f"(ledger has {len(records)} records)",
            file=sys.stderr,
        )
        return 2
    print(json.dumps(rec.as_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_check(ledger, args) -> int:
    from repro.obs.trend import check_records

    records = ledger.records(last=args.last)
    report = check_records(
        records,
        window=args.window,
        threshold=args.threshold,
        rel_floor=args.rel_floor / 100.0,
        min_history=args.min_history,
    )
    print(report.to_text(all_points=args.all))
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True)
        )
        log.info("trend report written to %s", args.json)
    if args.fail_on_break and not report.ok:
        return 1
    return 0


def _cmd_dash(ledger, args) -> int:
    from repro.obs.dash import write_dashboard

    records = ledger.records()
    out = write_dashboard(args.out, records, title=args.title)
    print(f"dashboard with {len(records)} record(s) written to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.obs.ledger import RunLedger

    args = build_parser().parse_args(argv)
    ledger = RunLedger(args.dir)
    if args.command == "log":
        return _cmd_log(ledger, args)
    if args.command == "list":
        return _cmd_list(ledger, args)
    if args.command == "show":
        return _cmd_show(ledger, args)
    if args.command == "check":
        return _cmd_check(ledger, args)
    if args.command == "dash":
        return _cmd_dash(ledger, args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
