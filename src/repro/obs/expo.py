"""OpenMetrics text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

The in-process registry is what the engine and the serving layer record
into; this module renders it in the OpenMetrics/Prometheus text format
so a scraper (or the ops server, :mod:`repro.obs.opsserver`) can watch a
live ``repro-serve`` process instead of waiting for the post-hoc
``repro.serve/v1`` report:

* counters become ``counter`` families (sample name ``<family>_total``,
  per the OpenMetrics suffix convention — dotted registry names are
  sanitized and a trailing ``_total`` is folded into the family name);
* gauges become ``gauge`` families;
* histograms become ``histogram`` families with **cumulative** ``le``
  buckets derived from the registry histogram's internal log buckets
  (each occupied bucket's upper bound, ascending, plus the ``+Inf``
  bucket), ``_count`` and ``_sum``.

Rendering is deterministic — families sorted by name, label keys sorted,
label values escaped — so two snapshots of the same registry state are
byte-identical.  :func:`parse_openmetrics` is the matching strict parser
(used by the round-trip tests and the CI scrape step); it validates the
``# TYPE`` discipline, sample-name suffixes, bucket monotonicity and the
terminating ``# EOF``.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "CONTENT_TYPE",
    "render_openmetrics",
    "parse_openmetrics",
    "ExpositionError",
]

#: The content type the ops server serves ``/metrics`` under.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: ``<name>{<labels>} <value>`` — labels optional, value mandatory.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_ONE_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_LABELSET_RE = re.compile(f"^{_ONE_LABEL}(?:,{_ONE_LABEL})*$")


class ExpositionError(ValueError):
    """A document that is not valid OpenMetrics text."""


def sanitize_name(name: str) -> str:
    """A registry metric name as a legal OpenMetrics metric name."""
    out = _SANITIZE.sub("_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labelset(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """``{k="v",...}`` with deterministic ordering (or "" when empty).

    ``labels`` is the registry's sorted ``(key, value)`` tuple; ``extra``
    pairs (the ``le`` of a bucket sample) are appended last.
    """
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _num(value: float) -> str:
    """A float rendered for exposition (integers without the dot)."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry) -> str:
    """The registry snapshot as one OpenMetrics text document.

    Families are emitted sorted by (exposition) family name; a counter
    family named ``x_total`` in the registry and its exposition family
    ``x`` refer to the same series.  Ends with ``# EOF`` as the format
    requires.
    """
    counters, gauges, histograms = registry.snapshot()

    # family name -> (type, help, [(labels, metric), ...])
    families: dict[str, tuple[str, str, list]] = {}

    def family(name: str, kind: str, help_suffix: str) -> list:
        if name in families:
            existing = families[name]
            if existing[0] != kind:
                raise ExpositionError(
                    f"metric family {name!r} exposed as both "
                    f"{existing[0]} and {kind}"
                )
            return existing[2]
        samples: list = []
        families[name] = (kind, help_suffix, samples)
        return samples

    for (name, labels), metric in counters.items():
        fam = sanitize_name(name)
        fam = fam[: -len("_total")] if fam.endswith("_total") else fam
        family(fam, "counter", f"registry counter {name}").append(
            (labels, metric.value)
        )
    for (name, labels), metric in gauges.items():
        family(
            sanitize_name(name), "gauge", f"registry gauge {name}"
        ).append((labels, metric.value))
    for (name, labels), metric in histograms.items():
        family(
            sanitize_name(name), "histogram", f"registry histogram {name}"
        ).append((labels, metric.cumulative_buckets()))

    lines: list[str] = []
    for fam in sorted(families):
        kind, help_text, samples = families[fam]
        lines.append(f"# TYPE {fam} {kind}")
        lines.append(f"# HELP {fam} {help_text}")
        for labels, payload in sorted(samples, key=lambda s: s[0]):
            if kind == "counter":
                lines.append(
                    f"{fam}_total{_labelset(labels)} {_num(payload)}"
                )
            elif kind == "gauge":
                lines.append(f"{fam}{_labelset(labels)} {_num(payload)}")
            else:
                for le, cumulative in payload["buckets"]:
                    lines.append(
                        f"{fam}_bucket"
                        f"{_labelset(labels, (('le', _num(le)),))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{fam}_bucket"
                    f"{_labelset(labels, (('le', '+Inf'),))}"
                    f" {payload['count']}"
                )
                lines.append(
                    f"{fam}_count{_labelset(labels)} {payload['count']}"
                )
                lines.append(
                    f"{fam}_sum{_labelset(labels)} {_num(payload['sum'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing (round-trip validation, CI scrape checks)
# ---------------------------------------------------------------------------


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(f"{where}: bad value {text!r}") from exc


def _sample_family(name: str, kind: str, where: str) -> tuple[str, str]:
    """Map a sample name back to (family, suffix) under ``kind``'s rules."""
    if kind == "counter":
        if not name.endswith("_total"):
            raise ExpositionError(
                f"{where}: counter sample {name!r} must end in _total"
            )
        return name[: -len("_total")], "_total"
    if kind == "gauge":
        return name, ""
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    raise ExpositionError(
        f"{where}: histogram sample {name!r} has no bucket/count/sum suffix"
    )


def parse_openmetrics(text: str) -> dict:
    """Parse an OpenMetrics text document, validating as it goes.

    Returns ``{family: {"type", "help", "samples"}}`` where each sample
    is ``(suffix, labels_dict, value)`` (suffix "" for gauges,
    ``_total`` for counters, ``_bucket``/``_count``/``_sum`` for
    histograms).  Raises :class:`ExpositionError` on: missing ``# EOF``,
    samples before their ``# TYPE``, sample names that break the
    suffix rules, non-monotone histogram buckets, or a ``_count`` that
    disagrees with the ``+Inf`` bucket.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        line = raw.rstrip()
        if saw_eof and line:
            raise ExpositionError(f"{where}: content after # EOF")
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ExpositionError(f"{where}: unknown type {kind!r}")
            if name in types:
                raise ExpositionError(
                    f"{where}: duplicate # TYPE for {name!r}"
                )
            types[name] = kind
            families[name] = {"type": kind, "help": "", "samples": []}
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            if name not in families:
                raise ExpositionError(
                    f"{where}: # HELP for undeclared family {name!r}"
                )
            families[name]["help"] = help_text
            continue
        if line.startswith("#"):
            raise ExpositionError(f"{where}: unrecognized comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ExpositionError(f"{where}: unparseable sample {line!r}")
        sample_name = m.group("name")
        # A sample belongs to the unique declared family its name maps
        # back to under that family's suffix rules.
        matched = None
        for fam, kind in types.items():
            try:
                candidate, suffix = _sample_family(sample_name, kind, where)
            except ExpositionError:
                continue
            if candidate == fam:
                matched = (fam, suffix)
                break
        if matched is None:
            raise ExpositionError(
                f"{where}: sample {sample_name!r} precedes its # TYPE "
                f"or matches no declared family"
            )
        fam, suffix = matched
        labels: dict[str, str] = {}
        if m.group("labels"):
            if not _LABELSET_RE.match(m.group("labels")):
                raise ExpositionError(
                    f"{where}: malformed label set "
                    f"{{{m.group('labels')}}}"
                )
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        value = _parse_value(m.group("value"), where)
        if suffix == "_bucket" and "le" not in labels:
            raise ExpositionError(f"{where}: bucket sample without le")
        families[fam]["samples"].append((suffix, labels, value))
    if not saw_eof:
        raise ExpositionError("document does not end with # EOF")
    _validate_histograms(families)
    return families


def _validate_histograms(families: dict) -> None:
    for fam, doc in families.items():
        if doc["type"] != "histogram":
            continue
        # Group by the non-le label identity.
        series: dict[tuple, dict] = {}
        for suffix, labels, value in doc["samples"]:
            ident = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            entry = series.setdefault(
                ident, {"buckets": [], "count": None}
            )
            if suffix == "_bucket":
                entry["buckets"].append(
                    (_parse_value(labels["le"], fam), value)
                )
            elif suffix == "_count":
                entry["count"] = value
        for ident, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                raise ExpositionError(f"{fam}{dict(ident)}: no buckets")
            les = [le for le, _ in buckets]
            counts = [c for _, c in buckets]
            if les != sorted(les) or len(set(les)) != len(les):
                raise ExpositionError(
                    f"{fam}{dict(ident)}: bucket bounds not increasing"
                )
            if counts != sorted(counts):
                raise ExpositionError(
                    f"{fam}{dict(ident)}: bucket counts not cumulative"
                )
            if not math.isinf(les[-1]):
                raise ExpositionError(
                    f"{fam}{dict(ident)}: missing +Inf bucket"
                )
            if entry["count"] is not None and entry["count"] != counts[-1]:
                raise ExpositionError(
                    f"{fam}{dict(ident)}: _count {entry['count']} != "
                    f"+Inf bucket {counts[-1]}"
                )
