"""N-run trend checks over the run ledger.

The PR-4 perf gate (:mod:`repro.obs.baseline`) compares exactly two
snapshots; with the ledger holding every run, a better question becomes
answerable: *did the latest run break from its own history?*  For each
ledger series — one (kind, name, config fingerprint) triple — and each
headline metric, the latest value is compared against the rolling
median of the preceding window:

* centre = median of the previous ``window`` values;
* spread = 1.4826 × MAD (the robust sigma; immune to one past outlier);
* a **break** needs the move to be in the *bad* direction for that
  metric (per :func:`repro.obs.baseline.metric_direction`), at least
  ``rel_floor`` relative to the centre (default 10%), *and* larger than
  ``threshold`` robust sigmas (so a metric that has always wobbled 15%
  does not page anyone).

Series with fewer than ``min_history`` prior runs report
``insufficient`` and never fail the check.  ``repro-ledger check
--fail-on-break`` turns a break into a non-zero exit for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.baseline import metric_direction
from repro.obs.ledger import LedgerRecord

__all__ = [
    "TrendPoint",
    "TrendReport",
    "check_records",
    "check_series",
    "robust_center",
]

SCHEMA = "repro.trend/v1"

#: Metrics that identify a configuration rather than measure it; a
#: change here means the fingerprint should have changed, so they are
#: skipped rather than judged.
_SKIP_METRICS = frozenset({"levels"})


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def robust_center(values: list[float]) -> tuple[float, float]:
    """(median, robust sigma) of ``values``; sigma is 1.4826 × MAD."""
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    return med, 1.4826 * mad


@dataclass
class TrendPoint:
    """Verdict for one metric of one series."""

    kind: str
    name: str
    fingerprint: str
    metric: str
    #: ``ok`` | ``break`` | ``insufficient``
    status: str
    latest: float
    center: float = 0.0
    sigma: float = 0.0
    #: Relative change of latest vs center, signed (+ = larger).
    rel_change: float = 0.0
    history: int = 0

    @property
    def series(self) -> tuple[str, str, str]:
        """The (kind, name, fingerprint) triple this verdict belongs to."""
        return (self.kind, self.name, self.fingerprint)

    def as_dict(self) -> dict:
        """The verdict as a plain JSON-ready dict."""
        return {
            "kind": self.kind,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "metric": self.metric,
            "status": self.status,
            "latest": self.latest,
            "center": self.center,
            "sigma": self.sigma,
            "rel_change": self.rel_change,
            "history": self.history,
        }


@dataclass
class TrendReport:
    """All trend verdicts for one ledger sweep."""

    points: list[TrendPoint] = field(default_factory=list)
    window: int = 8
    threshold: float = 4.0
    rel_floor: float = 0.10

    @property
    def breaks(self) -> list[TrendPoint]:
        """The verdicts that broke from their series' history."""
        return [p for p in self.points if p.status == "break"]

    @property
    def ok(self) -> bool:
        """True when no series broke."""
        return not self.breaks

    def as_dict(self) -> dict:
        """The report as a plain JSON-ready dict (``repro.trend/v1``)."""
        return {
            "schema": SCHEMA,
            "ok": self.ok,
            "window": self.window,
            "threshold": self.threshold,
            "rel_floor": self.rel_floor,
            "points": [p.as_dict() for p in self.points],
        }

    def to_text(self, all_points: bool = False) -> str:
        """Terminal table; breaks only unless ``all_points``."""
        from repro.util.formatting import format_table

        shown = self.points if all_points else self.breaks
        rows = []
        for p in sorted(
            shown, key=lambda p: (p.status != "break", p.series, p.metric)
        ):
            rows.append(
                [
                    p.kind,
                    p.name,
                    p.fingerprint,
                    p.metric,
                    p.status,
                    f"{p.latest:.4g}",
                    f"{p.center:.4g}" if p.history else "-",
                    f"{p.rel_change * 100:+.1f}%" if p.history else "-",
                    str(p.history),
                ]
            )
        checked = len({p.series for p in self.points})
        title = (
            f"trend check: {checked} series, {len(self.points)} metrics, "
            f"{len(self.breaks)} break(s)"
        )
        if not rows:
            return title + "\n(nothing to show)"
        return format_table(
            [
                "kind",
                "name",
                "fingerprint",
                "metric",
                "status",
                "latest",
                "median",
                "change",
                "n",
            ],
            rows,
            title=title,
        )


def check_series(
    records: list[LedgerRecord],
    window: int = 8,
    threshold: float = 4.0,
    rel_floor: float = 0.10,
    min_history: int = 3,
) -> list[TrendPoint]:
    """Judge the last record of one chronological series against the
    rolling history of the records before it."""
    if not records:
        return []
    latest = records[-1]
    history = records[:-1][-window:]
    points: list[TrendPoint] = []
    for metric, value in sorted(latest.metrics.items()):
        if metric in _SKIP_METRICS or not isinstance(value, (int, float)):
            continue
        direction = metric_direction(metric)
        if direction == "info":
            continue
        past = [
            r.metrics[metric]
            for r in history
            if isinstance(r.metrics.get(metric), (int, float))
        ]
        point = TrendPoint(
            kind=latest.kind,
            name=latest.name,
            fingerprint=latest.fingerprint,
            metric=metric,
            status="insufficient",
            latest=float(value),
            history=len(past),
        )
        if len(past) >= min_history:
            center, sigma = robust_center(past)
            point.center = center
            point.sigma = sigma
            point.rel_change = (
                (value - center) / abs(center) if center else 0.0
            )
            if direction == "equal":
                # Determinism invariant: any real move from the historic
                # median is a break, regardless of sign or size.
                drifted = abs(point.rel_change) > 1e-4 or (
                    center == 0 and value != 0
                )
                point.status = "break" if drifted else "ok"
            else:
                worse = (
                    point.rel_change < 0
                    if direction == "higher"
                    else point.rel_change > 0
                )
                big_enough = abs(point.rel_change) >= rel_floor
                # With a dead-flat history (sigma 0) the relative floor
                # alone decides; otherwise the move must also clear the
                # robust-sigma bar.
                outlier = (
                    abs(value - center) > threshold * sigma if sigma else True
                )
                point.status = (
                    "break" if (worse and big_enough and outlier) else "ok"
                )
        points.append(point)
    return points


def check_records(
    records: list[LedgerRecord],
    window: int = 8,
    threshold: float = 4.0,
    rel_floor: float = 0.10,
    min_history: int = 3,
) -> TrendReport:
    """Group ledger records into series and judge each one's latest run.

    ``records`` must be in append (chronological) order, as
    :meth:`repro.obs.ledger.RunLedger.records` returns them.
    """
    series: dict[tuple[str, str, str], list[LedgerRecord]] = {}
    for rec in records:
        series.setdefault(rec.series, []).append(rec)
    report = TrendReport(
        window=window, threshold=threshold, rel_floor=rel_floor
    )
    for key in sorted(series):
        report.points.extend(
            check_series(
                series[key],
                window=window,
                threshold=threshold,
                rel_floor=rel_floor,
                min_history=min_history,
            )
        )
    return report
