"""Telemetry exporters: Chrome trace-event JSON, JSONL log, terminal table.

The Chrome trace (load it at https://ui.perfetto.dev or
``chrome://tracing``) renders the *simulated* timeline of one BFS run:
one track per simulated MPI rank, one span per level phase (switch /
communication / compute / stall), with timestamps reconstructed from the
run's :class:`~repro.core.timing.BfsTiming` exactly as the cost model
priced it — per-rank compute durations, uniform collective times, and
barrier alignment at the end of every level (the stall phase).

The JSONL log serializes the wall-clock spans and per-collective
:class:`~repro.obs.tracer.CommEvent` records for ad-hoc analysis
(``jq``/pandas), and :func:`summary_table` renders a metrics registry as
a terminal table.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs <- core)
    from repro.core.engine import BFSResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import RunTelemetry

__all__ = [
    "rank_timeline",
    "chrome_trace",
    "write_chrome_trace",
    "serve_chrome_trace",
    "write_serve_trace",
    "request_chain",
    "events_jsonl",
    "write_events_jsonl",
    "summary_table",
]


def rank_timeline(result: "BFSResult") -> list[list[dict]]:
    """Per-rank lists of non-overlapping simulated phase intervals.

    Each interval is ``{"name", "cat", "level", "direction", "start_ns",
    "duration_ns", "args"}``; within one rank's list the intervals are
    monotone and disjoint, and every level ends with all ranks aligned at
    the barrier (ranks that finish compute early get a ``stall``
    interval).  Phase order mirrors the engine's level structure: the
    representation switch first, then — top-down — compute before the
    pair exchange, or — bottom-up — the allgathers before the scan.
    """
    num_ranks = result.counts.num_ranks
    tracks: list[list[dict]] = [[] for _ in range(num_ranks)]
    clock = np.zeros(num_ranks, dtype=np.float64)

    def add(rank: int, name: str, cat: str, lt, start: float, dur: float, args=None):
        if dur <= 0:
            return
        tracks[rank].append(
            {
                "name": name,
                "cat": cat,
                "level": lt.level,
                "direction": lt.direction,
                "start_ns": float(start),
                "duration_ns": float(dur),
                "args": args or {},
            }
        )

    for lt in result.timing.levels:
        comp = lt.compute_rank_ns
        if comp is None or len(comp) != num_ranks:
            comp = np.full(num_ranks, lt.compute_mean_ns)
        comp = np.asarray(comp, dtype=np.float64)
        comp_max = float(comp.max(initial=0.0))
        comm_first = lt.direction == "bottom_up"
        for r in range(num_ranks):
            t = clock[r]
            if lt.switch_ns > 0:
                add(r, "switch", "switch", lt, t, lt.switch_ns)
                t += lt.switch_ns
            if comm_first and lt.comm_ns > 0:
                add(r, f"comm:{lt.direction}", "comm", lt, t, lt.comm_ns,
                    args=dict(lt.comm_steps))
                t += lt.comm_ns
            add(r, f"compute:{lt.direction}", "compute", lt, t, comp[r])
            t += comp[r]
            if comp_max > comp[r]:
                add(r, "stall", "stall", lt, t, comp_max - comp[r])
                t += comp_max - comp[r]
            if not comm_first and lt.comm_ns > 0:
                add(r, f"comm:{lt.direction}", "comm", lt, t, lt.comm_ns,
                    args=dict(lt.comm_steps))
                t += lt.comm_ns
            clock[r] = t
        # Defensive alignment: all ranks leave the level at the barrier.
        clock[:] = clock.max(initial=0.0)
    return tracks


def chrome_trace(result: "BFSResult") -> dict:
    """One BFS run as a Chrome trace-event document (Perfetto-loadable).

    One process ("track") per simulated rank; ``ts``/``dur`` are the
    *simulated* timestamps in microseconds, as the trace-event format
    requires.  Level/direction and the collective step breakdown ride
    along in each event's ``args``.
    """
    events: list[dict] = []
    tracks = rank_timeline(result)
    for rank, intervals in enumerate(tracks):
        events.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        for iv in intervals:
            args = {"level": iv["level"], "direction": iv["direction"]}
            args.update(iv["args"])
            events.append(
                {
                    "ph": "X",
                    "pid": rank,
                    "tid": 0,
                    "name": iv["name"],
                    "cat": iv["cat"],
                    "ts": iv["start_ns"] / 1e3,
                    "dur": iv["duration_ns"] / 1e3,
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "root": result.root,
            "levels": result.levels,
            "num_ranks": result.counts.num_ranks,
            "simulated_seconds": result.seconds,
            "teps": result.teps,
        },
    }


def write_chrome_trace(path: str, result: "BFSResult") -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(result), fh)


# ---------------------------------------------------------------------------
# Serving (wall-clock) trace
# ---------------------------------------------------------------------------


def serve_chrome_trace(tracer) -> dict:
    """A serving run's *wall-clock* spans as a Chrome trace document.

    Unlike :func:`chrome_trace` (one simulated run, simulated clock),
    this renders what the serving process itself did: the scheduler's
    pipeline — batch assembly, ``batch.run`` / ``batch.level`` engine
    spans, with each batched lane labelled ``lane L src V`` so
    multi-source batches are readable in Perfetto — on one track, and
    every request's ``serve.queue_wait`` / ``serve.cache_hit`` span on
    its own per-``trace_id`` track.  ``tracer`` is anything with a
    ``spans`` list (:class:`~repro.obs.tracer.SpanTracer` or
    :class:`~repro.obs.tracer.RunTelemetry`).
    """
    spans = list(tracer.spans)
    t0 = min((sp.start_ns for sp in spans), default=0)

    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "serving"},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "pipeline"},
        },
    ]
    # Request spans get one track each, keyed (and sorted) by trace_id.
    request_tids: dict[str, int] = {}

    def tid_for(trace_id: str) -> int:
        if trace_id not in request_tids:
            tid = len(request_tids) + 1
            request_tids[trace_id] = tid
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": str(trace_id)},
                }
            )
        return request_tids[trace_id]

    for sp in spans:
        attrs = dict(sp.attrs)
        if sp.cat == "request":
            tid = tid_for(str(attrs.get("trace_id")))
        else:
            tid = 0
        if sp.name == "batch.lane":
            # Satellite of the multi-source work: name each lane after
            # its index and source vertex so Perfetto shows which root
            # rode which lane.
            name = f"lane {attrs.get('lane')} src {attrs.get('source')}"
        else:
            name = sp.name
        ts = (sp.start_ns - t0) / 1e3
        if sp.end_ns is not None and sp.end_ns > sp.start_ns:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "name": name,
                    "cat": sp.cat,
                    "ts": ts,
                    "dur": (sp.end_ns - sp.start_ns) / 1e3,
                    "args": attrs,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "name": name,
                    "cat": sp.cat,
                    "ts": ts,
                    "args": attrs,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "kind": "serving",
            "spans": len(spans),
            "requests": len(request_tids),
        },
    }


def write_serve_trace(path: str, tracer) -> None:
    """Write :func:`serve_chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(serve_chrome_trace(tracer), fh)


def request_chain(spans, trace_id: str) -> dict:
    """Resolve one request's queue → batch → engine span chain.

    Walks the links the serving layer recorded: the request's
    ``serve.queue_wait`` span carries its ``batch_id``; that id names
    the ``serve.batch_assembly`` span, the engine's ``batch.run`` span,
    and the ``batch.lane`` marker whose ``trace_ids`` include this
    request; the per-round ``batch.level`` spans are ``batch.run``'s
    children.  Cache hits short-circuit to their ``serve.cache_hit``
    marker.  Raises ``ValueError`` when any link is missing — the trace
    does not connect — which is exactly what the tracing tests assert
    never happens for a served request.
    """
    spans = list(spans)

    def named(name):
        return [sp for sp in spans if sp.name == name]

    hits = [
        sp
        for sp in named("serve.cache_hit")
        if sp.attrs.get("trace_id") == trace_id
    ]
    waits = [
        sp
        for sp in named("serve.queue_wait")
        if sp.attrs.get("trace_id") == trace_id
    ]
    if not waits:
        if hits:
            return {
                "trace_id": trace_id,
                "cache_hit": True,
                "queue_wait": None,
                "batch_id": None,
                "spans": [hits[0].index],
            }
        raise ValueError(f"no span recorded for trace_id {trace_id!r}")
    wait = waits[0]
    batch_id = wait.attrs.get("batch_id")
    assembly = [
        sp
        for sp in named("serve.batch_assembly")
        if sp.attrs.get("batch_id") == batch_id
    ]
    runs = [
        sp
        for sp in named("batch.run")
        if sp.attrs.get("batch_id") == batch_id
    ]
    if not assembly or not runs:
        raise ValueError(
            f"trace_id {trace_id!r}: batch {batch_id!r} has no "
            f"assembly/run span"
        )
    run = runs[0]
    lanes = [
        sp
        for sp in named("batch.lane")
        if sp.attrs.get("batch_id") == batch_id
        and trace_id in (sp.attrs.get("trace_ids") or [])
    ]
    if not lanes:
        raise ValueError(
            f"trace_id {trace_id!r}: no lane in batch {batch_id!r} "
            f"carries it"
        )
    levels = [sp for sp in named("batch.level") if sp.parent == run.index]
    if not levels:
        raise ValueError(
            f"trace_id {trace_id!r}: batch {batch_id!r} ran no levels"
        )
    return {
        "trace_id": trace_id,
        "cache_hit": False,
        "batch_id": batch_id,
        "queue_wait": wait.index,
        "assembly": assembly[0].index,
        "run": run.index,
        "lane": lanes[0].attrs.get("lane"),
        "source": lanes[0].attrs.get("source"),
        "levels": [sp.index for sp in levels],
        "spans": [
            wait.index,
            assembly[0].index,
            run.index,
            lanes[0].index,
            *(sp.index for sp in levels),
        ],
    }


def events_jsonl(telemetry: "RunTelemetry") -> str:
    """Wall-clock spans and collective events as JSON lines.

    Span lines have ``"kind": "span"``, collective lines
    ``"kind": "comm_event"`` — filter with ``jq 'select(.kind == ...)'``.
    """
    lines = [json.dumps(sp.as_dict()) for sp in telemetry.spans]
    lines.extend(json.dumps(ev.as_dict()) for ev in telemetry.comm_events)
    return "\n".join(lines) + ("\n" if lines else "")


def write_events_jsonl(path: str, telemetry: "RunTelemetry") -> None:
    """Write :func:`events_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_jsonl(telemetry))


def _split_labels(formatted: str) -> tuple[str, str]:
    """``name{k=v,...}`` -> ``(name, "k=v,...")`` (labels empty if none)."""
    if formatted.endswith("}") and "{" in formatted:
        name, _, labels = formatted.partition("{")
        return name, labels[:-1]
    return formatted, ""


def summary_table(metrics: "MetricsRegistry", title: str = "telemetry") -> str:
    """A metrics registry rendered as a terminal table.

    Labels get their own column so series with different label arity
    (``bfs.runs_total`` next to ``comm.step_sim_time_ns_total{op=,step=}``)
    stay aligned, and rows are sorted by metric name / labels / type
    across all three families so the output is deterministic and related
    series are adjacent regardless of metric kind.
    """
    from repro.util.formatting import format_table

    snapshot = metrics.as_dict()
    rows: list[list] = []
    for name, value in snapshot["counters"].items():
        rows.append([*_split_labels(name), "counter", f"{value:,.0f}"])
    for name, value in snapshot["gauges"].items():
        rows.append([*_split_labels(name), "gauge", f"{value:.4g}"])
    for name, summ in snapshot["histograms"].items():
        rows.append(
            [
                *_split_labels(name),
                "histogram",
                f"n={summ['count']} mean={summ['mean']:.4g} "
                f"p50={summ['p50']:.4g} p99={summ['p99']:.4g} "
                f"min={summ['min']:.4g} max={summ['max']:.4g}",
            ]
        )
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    if not rows:
        rows.append(["(no metrics recorded)", "", "", ""])
    return format_table(
        ["metric", "labels", "type", "value"], rows, title=title
    )
