"""Telemetry exporters: Chrome trace-event JSON, JSONL log, terminal table.

The Chrome trace (load it at https://ui.perfetto.dev or
``chrome://tracing``) renders the *simulated* timeline of one BFS run:
one track per simulated MPI rank, one span per level phase (switch /
communication / compute / stall), with timestamps reconstructed from the
run's :class:`~repro.core.timing.BfsTiming` exactly as the cost model
priced it — per-rank compute durations, uniform collective times, and
barrier alignment at the end of every level (the stall phase).

The JSONL log serializes the wall-clock spans and per-collective
:class:`~repro.obs.tracer.CommEvent` records for ad-hoc analysis
(``jq``/pandas), and :func:`summary_table` renders a metrics registry as
a terminal table.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs <- core)
    from repro.core.engine import BFSResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import RunTelemetry

__all__ = [
    "rank_timeline",
    "chrome_trace",
    "write_chrome_trace",
    "events_jsonl",
    "write_events_jsonl",
    "summary_table",
]


def rank_timeline(result: "BFSResult") -> list[list[dict]]:
    """Per-rank lists of non-overlapping simulated phase intervals.

    Each interval is ``{"name", "cat", "level", "direction", "start_ns",
    "duration_ns", "args"}``; within one rank's list the intervals are
    monotone and disjoint, and every level ends with all ranks aligned at
    the barrier (ranks that finish compute early get a ``stall``
    interval).  Phase order mirrors the engine's level structure: the
    representation switch first, then — top-down — compute before the
    pair exchange, or — bottom-up — the allgathers before the scan.
    """
    num_ranks = result.counts.num_ranks
    tracks: list[list[dict]] = [[] for _ in range(num_ranks)]
    clock = np.zeros(num_ranks, dtype=np.float64)

    def add(rank: int, name: str, cat: str, lt, start: float, dur: float, args=None):
        if dur <= 0:
            return
        tracks[rank].append(
            {
                "name": name,
                "cat": cat,
                "level": lt.level,
                "direction": lt.direction,
                "start_ns": float(start),
                "duration_ns": float(dur),
                "args": args or {},
            }
        )

    for lt in result.timing.levels:
        comp = lt.compute_rank_ns
        if comp is None or len(comp) != num_ranks:
            comp = np.full(num_ranks, lt.compute_mean_ns)
        comp = np.asarray(comp, dtype=np.float64)
        comp_max = float(comp.max(initial=0.0))
        comm_first = lt.direction == "bottom_up"
        for r in range(num_ranks):
            t = clock[r]
            if lt.switch_ns > 0:
                add(r, "switch", "switch", lt, t, lt.switch_ns)
                t += lt.switch_ns
            if comm_first and lt.comm_ns > 0:
                add(r, f"comm:{lt.direction}", "comm", lt, t, lt.comm_ns,
                    args=dict(lt.comm_steps))
                t += lt.comm_ns
            add(r, f"compute:{lt.direction}", "compute", lt, t, comp[r])
            t += comp[r]
            if comp_max > comp[r]:
                add(r, "stall", "stall", lt, t, comp_max - comp[r])
                t += comp_max - comp[r]
            if not comm_first and lt.comm_ns > 0:
                add(r, f"comm:{lt.direction}", "comm", lt, t, lt.comm_ns,
                    args=dict(lt.comm_steps))
                t += lt.comm_ns
            clock[r] = t
        # Defensive alignment: all ranks leave the level at the barrier.
        clock[:] = clock.max(initial=0.0)
    return tracks


def chrome_trace(result: "BFSResult") -> dict:
    """One BFS run as a Chrome trace-event document (Perfetto-loadable).

    One process ("track") per simulated rank; ``ts``/``dur`` are the
    *simulated* timestamps in microseconds, as the trace-event format
    requires.  Level/direction and the collective step breakdown ride
    along in each event's ``args``.
    """
    events: list[dict] = []
    tracks = rank_timeline(result)
    for rank, intervals in enumerate(tracks):
        events.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        for iv in intervals:
            args = {"level": iv["level"], "direction": iv["direction"]}
            args.update(iv["args"])
            events.append(
                {
                    "ph": "X",
                    "pid": rank,
                    "tid": 0,
                    "name": iv["name"],
                    "cat": iv["cat"],
                    "ts": iv["start_ns"] / 1e3,
                    "dur": iv["duration_ns"] / 1e3,
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "root": result.root,
            "levels": result.levels,
            "num_ranks": result.counts.num_ranks,
            "simulated_seconds": result.seconds,
            "teps": result.teps,
        },
    }


def write_chrome_trace(path: str, result: "BFSResult") -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(result), fh)


def events_jsonl(telemetry: "RunTelemetry") -> str:
    """Wall-clock spans and collective events as JSON lines.

    Span lines have ``"kind": "span"``, collective lines
    ``"kind": "comm_event"`` — filter with ``jq 'select(.kind == ...)'``.
    """
    lines = [json.dumps(sp.as_dict()) for sp in telemetry.spans]
    lines.extend(json.dumps(ev.as_dict()) for ev in telemetry.comm_events)
    return "\n".join(lines) + ("\n" if lines else "")


def write_events_jsonl(path: str, telemetry: "RunTelemetry") -> None:
    """Write :func:`events_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_jsonl(telemetry))


def _split_labels(formatted: str) -> tuple[str, str]:
    """``name{k=v,...}`` -> ``(name, "k=v,...")`` (labels empty if none)."""
    if formatted.endswith("}") and "{" in formatted:
        name, _, labels = formatted.partition("{")
        return name, labels[:-1]
    return formatted, ""


def summary_table(metrics: "MetricsRegistry", title: str = "telemetry") -> str:
    """A metrics registry rendered as a terminal table.

    Labels get their own column so series with different label arity
    (``bfs.runs_total`` next to ``comm.step_sim_time_ns_total{op=,step=}``)
    stay aligned, and rows are sorted by metric name / labels / type
    across all three families so the output is deterministic and related
    series are adjacent regardless of metric kind.
    """
    from repro.util.formatting import format_table

    snapshot = metrics.as_dict()
    rows: list[list] = []
    for name, value in snapshot["counters"].items():
        rows.append([*_split_labels(name), "counter", f"{value:,.0f}"])
    for name, value in snapshot["gauges"].items():
        rows.append([*_split_labels(name), "gauge", f"{value:.4g}"])
    for name, summ in snapshot["histograms"].items():
        rows.append(
            [
                *_split_labels(name),
                "histogram",
                f"n={summ['count']} mean={summ['mean']:.4g} "
                f"p50={summ['p50']:.4g} p99={summ['p99']:.4g} "
                f"min={summ['min']:.4g} max={summ['max']:.4g}",
            ]
        )
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    if not rows:
        rows.append(["(no metrics recorded)", "", "", ""])
    return format_table(
        ["metric", "labels", "type", "value"], rows, title=title
    )
