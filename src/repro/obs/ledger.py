"""Persistent, append-only ledger of every measured run (`repro.run/v1`).

The paper's evaluation is longitudinal: every optimization (Figs. 9-16)
is judged by how TEPS, communication volume and per-phase time move
*across* configurations and versions.  The tracer/metrics layer sees one
run and the baseline differ sees one pair; this module is the durable
record in between — every ``repro-experiment``, benchmark, chaos
campaign and perf-gate run appends one JSONL record carrying:

* **identity** — kind (experiment / benchmark / chaos / perf-gate),
  name, UTC timestamp, git commit;
* **config fingerprint** — the resolved (kernel × codec × CommConfig ×
  scale/nodes/ppn ...) axes as a dict plus a stable short hash, so
  trend analysis (:mod:`repro.obs.trend`) never compares runs of
  different configurations;
* **headline metrics** — TEPS, simulated seconds, raw/wire allgather
  bytes, recovery overhead, levels ... (flat name → float);
* **attribution summary** — the Fig. 11 compute/comm split of the run,
  when it was traced;
* **environment provenance** — python/numpy versions, platform,
  hostname, CPU count — so host-dependent numbers are attributable.

Storage is a plain JSONL file under ``.repro/ledger/`` (override with
``$REPRO_LEDGER_DIR``): one JSON object per line, append-only, readable
with ``jq`` and diffable in review.  The ``repro-ledger`` CLI
(:mod:`repro.obs.ledgercli`) wraps this store; the trend checker and the
HTML dashboard (:mod:`repro.obs.dash`) read from it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "SCHEMA",
    "LedgerRecord",
    "RunLedger",
    "config_fingerprint",
    "engine_fingerprint",
    "environment_provenance",
    "git_commit",
    "default_ledger",
    "record_for_result",
    "records_from_benchmark_json",
    "record_from_chaos_report",
    "record_from_perfdiff",
]

SCHEMA = "repro.run/v1"

#: Default ledger location, relative to the working directory.
DEFAULT_DIR = os.path.join(".repro", "ledger")
_FILENAME = "runs.jsonl"


# ---------------------------------------------------------------------------
# Provenance and fingerprinting
# ---------------------------------------------------------------------------


def environment_provenance() -> dict:
    """Where a measurement ran: interpreter, numpy, platform, host, CPUs.

    The same block is stamped into ``BENCH_*.json`` ``extra_info`` by
    ``benchmarks/conftest.py`` and compared (as a warning, never a gate)
    by :func:`repro.obs.baseline.diff_baselines`.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "hostname": platform.node(),
        "cpu_count": os.cpu_count() or 0,
    }


def git_commit(cwd: str | Path | None = None) -> str | None:
    """Short commit hash of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def config_fingerprint(axes: dict) -> str:
    """Stable 12-hex-digit hash of a configuration-axes dict."""
    blob = json.dumps(axes, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def engine_fingerprint(engine) -> tuple[str, dict]:
    """The resolved configuration axes of a built engine.

    Uses the *resolved* kernel/codec/ppn (what actually ran), not the
    config's unresolved Nones, so two runs that differ only in how the
    same backend was selected share a fingerprint.
    """
    config = engine.config
    comm = config.comm
    n = engine.graph.num_vertices
    axes = {
        "scale": int(round(math.log2(n))) if n > 0 else 0,
        "nodes": engine.cluster.nodes,
        "ppn": config.resolve_ppn(engine.cluster),
        "kernel": engine.kernel.name,
        "codec": engine.codec.name if engine.codec is not None else "raw",
        "sharing": comm.sharing.value,
        "parallel_allgather": comm.parallel_allgather,
        "subgroups": comm.subgroups,
        "allgather": (
            comm.allgather.value if comm.allgather is not None else None
        ),
        "granularity": comm.summary_granularity,
        "use_summary": comm.use_summary,
        "mode": config.mode.value,
        "binding": config.binding.value,
        "degree_balanced": config.degree_balanced,
        "alpha": config.alpha,
        "beta": config.beta,
    }
    return config_fingerprint(axes), axes


# ---------------------------------------------------------------------------
# The record
# ---------------------------------------------------------------------------


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class LedgerRecord:
    """One measured run, as stored in the ledger."""

    kind: str  # experiment | benchmark | chaos | perf-gate
    name: str
    ts: str = field(default_factory=_utc_now)
    commit: str | None = None
    fingerprint: str = ""
    config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    attribution: dict | None = None
    env: dict = field(default_factory=dict)
    labels: dict = field(default_factory=dict)
    #: Free-form structured payload (per-scenario overheads, claim text
    #: ...) that trend analysis ignores but the dashboard may render.
    extra: dict = field(default_factory=dict)

    @property
    def series(self) -> tuple[str, str, str]:
        """The trend-series identity: runs are only ever compared within
        one (kind, name, fingerprint) triple."""
        return (self.kind, self.name, self.fingerprint)

    def as_dict(self) -> dict:
        """The record as a plain JSON-ready dict (one ledger line)."""
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
            "commit": self.commit,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "metrics": dict(self.metrics),
            "attribution": (
                dict(self.attribution) if self.attribution is not None else None
            ),
            "env": dict(self.env),
            "labels": dict(self.labels),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LedgerRecord":
        """Rebuild a record from one parsed ledger line."""
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported ledger record schema {schema!r} "
                f"(expected {SCHEMA})"
            )
        return cls(
            kind=doc["kind"],
            name=doc["name"],
            ts=doc.get("ts", ""),
            commit=doc.get("commit"),
            fingerprint=doc.get("fingerprint", ""),
            config=dict(doc.get("config") or {}),
            metrics=dict(doc.get("metrics") or {}),
            attribution=doc.get("attribution"),
            env=dict(doc.get("env") or {}),
            labels=dict(doc.get("labels") or {}),
            extra=dict(doc.get("extra") or {}),
        )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class RunLedger:
    """Append-only JSONL store of :class:`LedgerRecord` lines.

    The directory is created on first append; reads of a missing ledger
    return no records rather than failing, so "no history yet" and
    "clean trend" are the same state for callers.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_LEDGER_DIR") or DEFAULT_DIR
        self.root = Path(root)

    @property
    def path(self) -> Path:
        """The JSONL file all records live in."""
        return self.root / _FILENAME

    def append(self, record: LedgerRecord) -> LedgerRecord:
        """Write one record as a new last line (fills commit/env/ts when
        the caller left them empty)."""
        if not record.ts:
            record.ts = _utc_now()
        if record.commit is None:
            record.commit = git_commit()
        if not record.env:
            record.env = environment_provenance()
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.as_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return record

    def records(
        self,
        kind: str | None = None,
        name: str | None = None,
        fingerprint: str | None = None,
        last: int | None = None,
    ) -> list[LedgerRecord]:
        """All records in append order, optionally filtered; ``last``
        keeps only the newest N *after* filtering."""
        out: list[LedgerRecord] = []
        if not self.path.exists():
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = LedgerRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt ledger line ({exc})"
                    ) from exc
                if kind is not None and rec.kind != kind:
                    continue
                if name is not None and rec.name != name:
                    continue
                if fingerprint is not None and rec.fingerprint != fingerprint:
                    continue
                out.append(rec)
        if last is not None and last >= 0:
            out = out[-last:] if last else []
        return out

    def series(self) -> dict[tuple[str, str, str], list[LedgerRecord]]:
        """Records grouped by trend series, preserving append order."""
        grouped: dict[tuple[str, str, str], list[LedgerRecord]] = {}
        for rec in self.records():
            grouped.setdefault(rec.series, []).append(rec)
        return grouped

    def __len__(self) -> int:
        return len(self.records())


# ---------------------------------------------------------------------------
# Record builders
# ---------------------------------------------------------------------------


def _attribution_summary(attr) -> dict | None:
    """Compress a RunAttribution (or its as_dict) to the headline split."""
    if attr is None:
        return None
    doc = attr.as_dict() if hasattr(attr, "as_dict") else dict(attr)
    return {
        "compute_ns": dict(doc.get("compute_ns") or {}),
        "comm_ns": dict(doc.get("comm_ns") or {}),
        "switch_ns": float(doc.get("switch_ns") or 0.0),
        "stall_ns": float(doc.get("stall_ns") or 0.0),
        "total_ns": float(doc.get("total_ns") or 0.0),
        "comm_fraction": float(doc.get("comm_fraction") or 0.0),
    }


def record_for_result(
    kind: str,
    name: str,
    result,
    engine,
    labels: dict | None = None,
    extra_metrics: dict | None = None,
) -> LedgerRecord:
    """Build a ledger record from one executed BFS run.

    ``result`` is a :class:`~repro.core.engine.BFSResult`, ``engine``
    the :class:`~repro.core.engine.BFSEngine` that produced it (needed
    for the resolved configuration axes).  Attribution is included when
    the run was traced.
    """
    fingerprint, axes = engine_fingerprint(engine)
    levels = result.counts.levels
    raw_b = sum(
        lc.inq_raw_total_bytes + lc.summary_raw_total_bytes for lc in levels
    )
    wire_b = sum(
        lc.inq_wire_total_bytes + lc.summary_wire_total_bytes for lc in levels
    )
    td_b = sum(
        float(lc.td_send_bytes.sum())
        for lc in levels
        if lc.td_send_bytes is not None
    )
    metrics = {
        "teps": result.teps,
        "simulated_seconds": result.seconds,
        "levels": float(result.levels),
        "visited": float(result.visited),
        "traversed_edges": float(result.traversed_edges),
        "allgather_raw_bytes": raw_b,
        "allgather_wire_bytes": wire_b,
        "alltoallv_bytes": td_b,
        "recovery_overhead_seconds": (
            result.recovery.overhead_seconds
            if result.recovery is not None
            else 0.0
        ),
    }
    if extra_metrics:
        metrics.update(
            {k: float(v) for k, v in extra_metrics.items() if v is not None}
        )
    attribution = None
    if result.telemetry is not None:
        attribution = _attribution_summary(result.telemetry.attribution)
    return LedgerRecord(
        kind=kind,
        name=name,
        fingerprint=fingerprint,
        config=axes,
        metrics=metrics,
        attribution=attribution,
        labels=dict(labels or {}),
    )


def records_from_benchmark_json(path: str | Path) -> list[LedgerRecord]:
    """One ledger record per benchmark of a pytest-benchmark JSON file.

    Reuses the canonical schema of :mod:`repro.obs.baseline`: context
    keys become configuration axes, numeric extra_info plus the
    wall-clock stats become metrics, and the provenance block stamped by
    ``benchmarks/conftest.py`` (when present) becomes the environment.
    """
    from repro.obs.baseline import Baseline

    base = Baseline.from_benchmark_json(path)
    records = []
    for bench_name, rec in sorted(base.records.items()):
        axes = dict(sorted(rec.context.items()))
        records.append(
            LedgerRecord(
                kind="benchmark",
                name=bench_name,
                ts=base.datetime or "",
                commit=base.commit,
                fingerprint=config_fingerprint(axes),
                config=axes,
                metrics=dict(rec.metrics),
                env=dict(rec.provenance),
                labels={"source": str(path)},
            )
        )
    return records


def record_from_chaos_report(report: dict, source: str = "") -> LedgerRecord:
    """A ledger record summarizing one ``repro.chaos/v1`` campaign."""
    if report.get("schema") != "repro.chaos/v1":
        raise ValueError(
            f"not a chaos report: schema {report.get('schema')!r}"
        )
    scenarios = report.get("scenarios", [])
    finished = [s for s in scenarios if s.get("outcome") != "aborted"]
    overheads = {
        s["name"]: float(s.get("overhead_pct", 0.0)) for s in finished
    }
    axes = {
        "scale": report.get("scale"),
        "nodes": report.get("nodes"),
        "ppn": report.get("ppn"),
        "seed": report.get("seed"),
        "checkpoint_every": report.get("checkpoint_every"),
    }
    baseline = report.get("baseline") or {}
    metrics = {
        "baseline_teps": float(baseline.get("teps", 0.0)),
        "baseline_simulated_seconds": float(baseline.get("seconds", 0.0)),
        "scenarios_total": float(len(scenarios)),
        "scenarios_recovered": float(
            sum(1 for s in scenarios if s.get("outcome") == "recovered")
        ),
        "scenarios_failed": float(
            sum(
                1
                for s in scenarios
                if s.get("outcome") in ("aborted", "mismatch")
            )
        ),
        "recovery_overhead_pct_max": max(overheads.values(), default=0.0),
        "recovery_overhead_pct_mean": (
            sum(overheads.values()) / len(overheads) if overheads else 0.0
        ),
    }
    return LedgerRecord(
        kind="chaos",
        name="campaign",
        fingerprint=config_fingerprint(axes),
        config=axes,
        metrics=metrics,
        labels={"source": source, "ok": str(bool(report.get("ok")))},
        extra={"scenario_overhead_pct": overheads},
    )


def record_from_perfdiff(verdict: dict, source: str = "") -> LedgerRecord:
    """A ledger record summarizing one ``repro.perfdiff/v1`` verdict."""
    if verdict.get("schema") != "repro.perfdiff/v1":
        raise ValueError(
            f"not a perf-diff verdict: schema {verdict.get('schema')!r}"
        )
    rows = verdict.get("rows", [])
    statuses: dict[str, int] = {}
    for row in rows:
        statuses[row["status"]] = statuses.get(row["status"], 0) + 1
    axes = {
        "old": os.path.basename(str(verdict.get("old", ""))),
        "new": os.path.basename(str(verdict.get("new", ""))),
        "tolerance_pct": verdict.get("tolerance_pct"),
        "include_wall": verdict.get("include_wall"),
    }
    metrics = {
        "ok": 1.0 if verdict.get("ok") else 0.0,
        "rows": float(len(rows)),
        "regressions": float(len(verdict.get("regressions", []))),
        "improvements": float(statuses.get("improved", 0)),
        "incomparable": float(statuses.get("incomparable", 0)),
    }
    return LedgerRecord(
        kind="perf-gate",
        name=axes["old"] or "diff",
        fingerprint=config_fingerprint(axes),
        config=axes,
        metrics=metrics,
        labels={"source": source},
    )


def default_ledger() -> RunLedger:
    """The ledger at the default (or ``$REPRO_LEDGER_DIR``) location."""
    return RunLedger()
