"""``repro-perf``: attribution, drift and baseline-diff from the shell.

Three subcommands on top of :mod:`repro.obs.analyze` and
:mod:`repro.obs.baseline`:

* ``repro-perf attribute [--experiment fig11]`` — run the experiment's
  instrumented reference BFS and print the Fig. 11/12/14-style
  per-level and whole-run breakdown (compute vs. the four communication
  components, critical rank, imbalance, stragglers).
* ``repro-perf drift [--experiment fig11]`` — same run, then check the
  pricing / trace / analytic prediction layers against the simulated
  actuals; ``--fail-on-drift`` turns flags into a non-zero exit.
* ``repro-perf diff OLD.json NEW.json --fail-on-regress PCT`` — compare
  two pytest-benchmark files under the direction policy and exit
  non-zero on any gated regression (the CI perf-gate).  ``--json -``
  writes the verdict to stdout instead of a file.

Exit codes: 0 clean; 1 gate failure (regression / drift); 2 usage, or
— for ``diff --fail-on-incomparable`` — context-incomparable benchmark
pairs with no regression (so CI can tell "slower" from "not the same
measurement").  A regression always wins: 1 beats 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-perf`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="performance attribution, model-drift and baseline diffing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_attr = sub.add_parser(
        "attribute",
        help="per-level / whole-run attribution of an instrumented run",
    )
    p_attr.add_argument(
        "--experiment",
        default="fig11",
        help="experiment whose reference configuration to run (default fig11)",
    )
    p_attr.add_argument(
        "--quick", action="store_true", help="smallest functional scale"
    )
    p_attr.add_argument(
        "--top", type=int, default=3, help="straggler levels to list"
    )
    p_attr.add_argument(
        "--json", metavar="PATH", help="also write the attribution as JSON"
    )

    p_drift = sub.add_parser(
        "drift", help="check model predictions against simulated actuals"
    )
    p_drift.add_argument("--experiment", default="fig11")
    p_drift.add_argument("--quick", action="store_true")
    p_drift.add_argument(
        "--threshold",
        type=float,
        default=1.0,
        help="flagging threshold for pricing/trace layers, %% (default 1)",
    )
    p_drift.add_argument(
        "--analytic-threshold",
        type=float,
        default=100.0,
        help="flagging threshold for the closed-form analytic layer, %% "
        "(default 100: the model approximates, it does not reprice)",
    )
    p_drift.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit 1 when any component drifts past its threshold",
    )
    p_drift.add_argument("--json", metavar="PATH")

    p_diff = sub.add_parser(
        "diff", help="diff two pytest-benchmark JSON files"
    )
    p_diff.add_argument("old", help="baseline BENCH_*.json")
    p_diff.add_argument("new", help="candidate BENCH_*.json")
    p_diff.add_argument(
        "--fail-on-regress",
        type=float,
        default=10.0,
        metavar="PCT",
        help="tolerance for directional metrics, %% (default 10)",
    )
    p_diff.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="PCT",
        help="tolerance for wall-clock stats, %% (default 5x the main one)",
    )
    p_diff.add_argument(
        "--no-wall",
        action="store_true",
        help="ignore wall-clock stats (baselines from another machine)",
    )
    p_diff.add_argument(
        "--json",
        metavar="PATH",
        help="write the JSON verdict here ('-' for stdout)",
    )
    p_diff.add_argument(
        "--fail-on-incomparable",
        action="store_true",
        help="exit 2 when any benchmark pair is context-incomparable "
        "(a regression still exits 1)",
    )
    return parser


def _traced_run(experiment: str, quick: bool):
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.registry import reference_engine
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import SpanTracer

    settings = ExperimentSettings()
    if quick:
        settings = settings.quick()
    engine, root = reference_engine(
        experiment,
        settings,
        tracer=SpanTracer(),
        metrics=MetricsRegistry(),
    )
    return engine, engine.run(root)


def _cmd_attribute(args) -> int:
    from repro.obs.analyze import attribute_run

    _, result = _traced_run(args.experiment, args.quick)
    attr = (
        result.telemetry.attribution
        if result.telemetry is not None
        and result.telemetry.attribution is not None
        else attribute_run(result)
    )
    print(attr.to_text(top=args.top))
    if args.json:
        Path(args.json).write_text(json.dumps(attr.as_dict(), indent=2))
        print(f"attribution JSON written to {args.json}", file=sys.stderr)
    return 0


def _cmd_drift(args) -> int:
    from repro.obs.analyze import ModelDriftReport, detect_model_drift

    engine, result = _traced_run(args.experiment, args.quick)
    exact = detect_model_drift(
        result,
        engine,
        threshold=args.threshold / 100.0,
        sources=("pricing", "trace"),
    )
    analytic = detect_model_drift(
        result,
        engine,
        threshold=args.analytic_threshold / 100.0,
        sources=("analytic",),
    )
    report = ModelDriftReport(
        threshold=args.threshold / 100.0,
        components=exact.components + analytic.components,
    )
    print(report.to_text())
    if args.json:
        doc = report.as_dict()
        doc["analytic_threshold"] = args.analytic_threshold / 100.0
        Path(args.json).write_text(json.dumps(doc, indent=2))
        print(f"drift JSON written to {args.json}", file=sys.stderr)
    if args.fail_on_drift and not report.ok:
        return 1
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.baseline import Baseline, diff_baselines

    old = Baseline.from_benchmark_json(args.old)
    new = Baseline.from_benchmark_json(args.new)
    verdict = diff_baselines(
        old,
        new,
        tolerance_pct=args.fail_on_regress,
        wall_tolerance_pct=args.wall_tolerance,
        include_wall=not args.no_wall,
    )
    if args.json == "-":
        # Verdict JSON owns stdout; the human table moves to stderr.
        print(verdict.to_text(), file=sys.stderr)
        print(verdict.to_json())
    else:
        print(verdict.to_text())
        if args.json:
            Path(args.json).write_text(verdict.to_json())
            print(f"verdict JSON written to {args.json}", file=sys.stderr)
    if not verdict.ok:
        return 1
    if args.fail_on_incomparable and verdict.incomparable:
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "attribute":
        return _cmd_attribute(args)
    if args.command == "drift":
        return _cmd_drift(args)
    if args.command == "diff":
        return _cmd_diff(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
