"""Self-contained static HTML dashboard over the run ledger.

``repro-ledger dash`` renders the ledger's history as one standalone
HTML file — inline SVG, inline CSS, zero external assets or scripts —
so it can be committed, attached to CI, or opened from a tarball:

* stat tiles (runs on record, latest commit, latest TEPS);
* TEPS trend lines per experiment, one series per config fingerprint;
* stacked simulated-time attribution bars per run;
* codec wire-vs-raw byte reduction bars;
* chaos recovery-overhead history;
* a plain table of recent records (the accessibility view of the same
  data the charts show).

Colors follow the validated reference palette (light and dark both
selected, swapped via CSS custom properties); series hues are assigned
in fixed slot order, never cycled, with overflow folded into "other".
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.obs.ledger import LedgerRecord

__all__ = ["render_dashboard", "write_dashboard"]

#: Validated categorical palette, fixed assignment order (light, dark).
_SERIES = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)

#: Attribution components in fixed stack order → fixed palette slot.
_ATTR_COMPONENTS = (
    ("compute_ns", "compute"),
    ("comm_ns", "comm"),
    ("switch_ns", "switch"),
    ("stall_ns", "stall"),
)

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
}
.viz-root {
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
"""
_CSS_LIGHT_SERIES = "".join(
    f"  --s{i + 1}: {light};\n" for i, (light, _) in enumerate(_SERIES)
)
_CSS_DARK = """}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
"""
_CSS_DARK_SERIES = "".join(
    f"    --s{i + 1}: {dark};\n" for i, (_, dark) in enumerate(_SERIES)
)
_CSS_TAIL = """  }
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 14px; font-weight: 600; margin: 24px 0 8px; }
.sub { color: var(--ink-2); font-size: 12px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 140px;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { font-size: 11px; color: var(--ink-2); margin-top: 2px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 12px 0;
}
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0 0;
  font-size: 11px; color: var(--ink-2); }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
svg text { font-family: inherit; font-size: 10px; fill: var(--muted); }
svg .lbl { fill: var(--ink-2); }
table { border-collapse: collapse; font-size: 12px; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
.empty { color: var(--muted); font-size: 12px; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact human number for labels and table cells."""
    v = float(value)
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= scale:
            return f"{v / scale:.2f}{suffix}"
    if v == int(v):
        return str(int(v))
    return f"{v:.3g}"


def _ticks(vmax: float, n: int = 4) -> list[float]:
    """n evenly spaced ticks from 0 to a rounded-up vmax."""
    if vmax <= 0:
        return [0.0, 1.0]
    step = vmax / n
    # Snap to 1/2/5 × power of ten.
    mag = 10 ** (len(f"{int(step)}") - 1) if step >= 1 else 1.0
    while mag > step:
        mag /= 10
    for mult in (1, 2, 5, 10):
        if mag * mult >= step:
            step = mag * mult
            break
    return [step * i for i in range(n + 1)]


def _legend(entries: list[tuple[int, str]]) -> str:
    """Legend chips for (slot, label) pairs — only shown for ≥2 series."""
    if len(entries) < 2:
        return ""
    chips = "".join(
        f'<span><span class="sw" style="background:var(--s{slot})"></span>'
        f"{_esc(label)}</span>"
        for slot, label in entries
    )
    return f'<div class="legend">{chips}</div>'


def _frame(width: int, height: int, pad: tuple, ymax: float, ylabel: str):
    """Shared chart frame: gridlines + y ticks + baseline.

    Returns (svg-prefix parts, x0, x1, y0, y1, y-scale fn).
    """
    top, right, bottom, left = pad
    x0, x1 = left, width - right
    y0, y1 = height - bottom, top

    def sy(v: float) -> float:
        return y0 - (v / ymax) * (y0 - y1) if ymax else y0

    parts = []
    for t in _ticks(ymax):
        if t > ymax * 1.05:
            continue
        y = sy(t)
        parts.append(
            f'<line x1="{x0}" y1="{y:.1f}" x2="{x1}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x0 - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{x0}" y="{y1 - 6}" class="lbl">{_esc(ylabel)}</text>'
    )
    return parts, x0, x1, y0, y1, sy


def _line_chart(
    series: list[tuple[str, list[tuple[str, float]]]],
    ylabel: str,
    width: int = 640,
    height: int = 220,
) -> str:
    """Multi-series line chart; each series is (label, [(xlabel, y)])."""
    pad = (18, 12, 24, 56)
    npoints = max(len(pts) for _, pts in series)
    ymax = max(
        (y for _, pts in series for _, y in pts), default=0.0
    ) * 1.08 or 1.0
    parts, x0, x1, y0, y1, sy = _frame(width, height, pad, ymax, ylabel)

    def sx(i: int) -> float:
        if npoints <= 1:
            return (x0 + x1) / 2
        return x0 + (i / (npoints - 1)) * (x1 - x0)

    entries = []
    for s_idx, (label, pts) in enumerate(series[: len(_SERIES)]):
        slot = s_idx + 1
        entries.append((slot, label))
        coords = [(sx(i), sy(y)) for i, (_, y) in enumerate(pts)]
        if len(coords) > 1:
            d = "M" + " L".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(
                f'<path d="{d}" fill="none" stroke="var(--s{slot})" '
                f'stroke-width="2" stroke-linejoin="round"/>'
            )
        for (x, y), (xl, v) in zip(coords, pts):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
                f'fill="var(--s{slot})" stroke="var(--surface)" '
                f'stroke-width="2"><title>'
                f"{_esc(label)} · {_esc(xl)}: {_fmt(v)}</title></circle>"
            )
        # Direct label at the last point.
        if coords:
            lx, ly = coords[-1]
            parts.append(
                f'<text x="{lx - 4:.1f}" y="{ly - 8:.1f}" text-anchor="end" '
                f'class="lbl">{_esc(label)}</text>'
            )
    # x labels: first and last point only (commit-ish, keep sparse).
    ref = max(series, key=lambda s: len(s[1]))[1]
    for i in (0, npoints - 1):
        if 0 <= i < len(ref):
            anchor = "start" if i == 0 else "end"
            parts.append(
                f'<text x="{sx(i):.1f}" y="{y0 + 14}" '
                f'text-anchor="{anchor}">{_esc(ref[i][0])}</text>'
            )
    body = "".join(parts)
    svg = (
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img">{body}</svg>'
    )
    return svg + _legend(entries)


def _stacked_bars(
    bars: list[tuple[str, list[float]]],
    labels: list[str],
    ylabel: str,
    width: int = 640,
    height: int = 220,
) -> str:
    """Stacked bars; each bar is (xlabel, [component values])."""
    pad = (18, 12, 24, 56)
    ymax = max((sum(vals) for _, vals in bars), default=0.0) * 1.08 or 1.0
    parts, x0, x1, y0, y1, sy = _frame(width, height, pad, ymax, ylabel)
    n = len(bars)
    slot_w = (x1 - x0) / max(n, 1)
    bar_w = min(28.0, slot_w * 0.6)
    for b_idx, (xlabel, vals) in enumerate(bars):
        cx = x0 + slot_w * (b_idx + 0.5)
        base = 0.0
        for c_idx, v in enumerate(vals):
            if v <= 0:
                continue
            y_top = sy(base + v)
            y_bot = sy(base)
            # 2px surface gap between stacked segments.
            h = max(y_bot - y_top - 2, 1.0)
            slot = c_idx + 1
            parts.append(
                f'<rect x="{cx - bar_w / 2:.1f}" y="{y_top:.1f}" '
                f'width="{bar_w:.1f}" height="{h:.1f}" rx="2" '
                f'fill="var(--s{slot})"><title>'
                f"{_esc(xlabel)} · {_esc(labels[c_idx])}: {_fmt(v)}"
                f"</title></rect>"
            )
            base += v
        parts.append(
            f'<text x="{cx:.1f}" y="{y0 + 14}" text-anchor="middle">'
            f"{_esc(xlabel)}</text>"
        )
    body = "".join(parts)
    svg = (
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img">{body}</svg>'
    )
    entries = [(i + 1, lab) for i, lab in enumerate(labels)]
    return svg + _legend(entries)


def _card(title: str, body: str, sub: str = "") -> str:
    subline = f'<p class="sub">{_esc(sub)}</p>' if sub else ""
    return f'<div class="card"><h2>{_esc(title)}</h2>{subline}{body}</div>'


def _series_label(rec: LedgerRecord) -> str:
    cfg = rec.config
    bits = [str(cfg.get("kernel", "?"))]
    codec = cfg.get("codec")
    if codec and codec != "raw":
        bits.append(str(codec))
    bits.append(rec.fingerprint[:6])
    return "/".join(bits)


def _xlabel(rec: LedgerRecord) -> str:
    return rec.commit or (rec.ts or "")[:10] or "?"


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def _tiles(records: list[LedgerRecord]) -> str:
    exps = [r for r in records if r.kind == "experiment"]
    latest = records[-1] if records else None
    tiles = [
        (str(len(records)), "runs on record"),
        (str(len({r.series for r in records})), "config series"),
    ]
    if latest is not None:
        tiles.append((latest.commit or "?", "latest commit"))
    if exps:
        teps = exps[-1].metrics.get("teps")
        if teps:
            tiles.append((_fmt(teps), f"latest TEPS ({exps[-1].name})"))
    body = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for v, k in tiles
    )
    return f'<div class="tiles">{body}</div>'


def _teps_section(records: list[LedgerRecord]) -> str:
    by_name: dict[str, dict[tuple, list[LedgerRecord]]] = {}
    for rec in records:
        if rec.kind in ("experiment", "benchmark") and rec.metrics.get(
            "teps"
        ):
            by_name.setdefault(rec.name, {}).setdefault(
                rec.series, []
            ).append(rec)
    if not by_name:
        return _card(
            "TEPS trend", '<p class="empty">no experiment runs yet</p>'
        )
    cards = []
    for name in sorted(by_name):
        groups = by_name[name]
        series = []
        for key in sorted(groups)[: len(_SERIES)]:
            recs = groups[key]
            series.append(
                (
                    _series_label(recs[-1]),
                    [(_xlabel(r), r.metrics["teps"]) for r in recs],
                )
            )
        folded = len(groups) - len(series)
        sub = "one line per config fingerprint" + (
            f" ({folded} more folded)" if folded > 0 else ""
        )
        cards.append(
            _card(f"TEPS · {name}", _line_chart(series, "TEPS"), sub)
        )
    return "".join(cards)


def _attribution_section(records: list[LedgerRecord]) -> str:
    runs = [r for r in records if r.attribution][-12:]
    if not runs:
        return _card(
            "Simulated-time attribution",
            '<p class="empty">no attributed runs yet</p>',
        )
    labels = [label for _, label in _ATTR_COMPONENTS]
    bars = []
    for rec in runs:
        vals = []
        for key, _ in _ATTR_COMPONENTS:
            v = rec.attribution.get(key, 0)
            # compute_ns / comm_ns are per-component breakdown dicts.
            if isinstance(v, dict):
                v = sum(v.values())
            vals.append(float(v) / 1e6)
        bars.append((_xlabel(rec), vals))
    return _card(
        "Simulated-time attribution",
        _stacked_bars(bars, labels, "simulated ms"),
        f"per run, last {len(runs)} attributed runs",
    )


def _codec_section(records: list[LedgerRecord]) -> str:
    rows = []
    for rec in records:
        raw = rec.metrics.get("allgather_raw_bytes")
        wire = rec.metrics.get("allgather_wire_bytes")
        if raw and wire is not None and raw > 0:
            rows.append((rec, 100.0 * (1.0 - wire / raw)))
    rows = rows[-12:]
    if not rows:
        return _card(
            "Codec wire-byte reduction",
            '<p class="empty">no byte-accounted runs yet</p>',
        )
    bars = [
        (f"{_xlabel(rec)}·{rec.config.get('codec', 'raw')}", [pct])
        for rec, pct in rows
    ]
    return _card(
        "Codec wire-byte reduction",
        _stacked_bars(bars, ["reduction"], "% vs raw"),
        "allgather wire bytes vs raw bytes, higher is better",
    )


def _chaos_section(records: list[LedgerRecord]) -> str:
    runs = [r for r in records if r.kind == "chaos"]
    if not runs:
        return _card(
            "Chaos recovery overhead",
            '<p class="empty">no chaos campaigns yet</p>',
        )
    per_scenario: dict[str, list[tuple[str, float]]] = {}
    for rec in runs:
        overheads = (rec.extra or {}).get("scenario_overhead_pct", {})
        for scen, pct in sorted(overheads.items()):
            per_scenario.setdefault(scen, []).append(
                (_xlabel(rec), float(pct))
            )
    if not per_scenario:
        mean = [
            (_xlabel(r), float(r.metrics.get("recovery_overhead_pct_mean", 0)))
            for r in runs
        ]
        per_scenario = {"mean": mean}
    series = [
        (scen, pts)
        for scen, pts in sorted(per_scenario.items())[: len(_SERIES)]
    ]
    return _card(
        "Chaos recovery overhead",
        _line_chart(series, "overhead %"),
        "per scenario across campaigns, lower is better",
    )


def _slo_section(records: list[LedgerRecord], last: int = 12) -> str:
    """Serving SLO verdicts (kind ``slo``), breaches highlighted red."""
    runs = [r for r in records if r.kind == "slo"][-last:]
    if not runs:
        return _card(
            "Serving SLO burn rate",
            '<p class="empty">no SLO evaluations yet</p>',
        )
    rows = []
    for rec in reversed(runs):
        verdict = rec.labels.get("verdict", "?")
        # Breach (and warning burns) get the palette's red slot so a
        # failing SLO is visible without reading the table.
        if verdict == "breach":
            v_cell = (
                '<td style="color:var(--s8);font-weight:600">breach</td>'
            )
        elif verdict in ("fast_burn", "slow_burn"):
            v_cell = f'<td style="color:var(--s8)">{_esc(verdict)}</td>'
        else:
            v_cell = f"<td>{_esc(verdict)}</td>"
        objectives = (rec.extra or {}).get("objective_verdicts", {})
        obj_text = ", ".join(
            f"{label}: {v}" for label, v in sorted(objectives.items())
        )
        burn_keys = [k for k in rec.metrics if k.endswith(".burn_rate")]
        worst_burn = max(
            (rec.metrics[k] for k in burn_keys), default=None
        )
        rows.append(
            "<tr>"
            + f"<td>{_esc((rec.ts or '')[:19])}</td>"
            + f"<td>{_esc(rec.name)}</td>"
            + v_cell
            + f"<td>{_esc(obj_text or '-')}</td>"
            + f"<td>{_fmt(worst_burn) if worst_burn is not None else '-'}"
            + "</td>"
            + f"<td>{_fmt(rec.metrics.get('requests', 0))}</td>"
            + "</tr>"
        )
    table = (
        "<table><thead><tr>"
        + "".join(
            f"<th>{h}</th>"
            for h in (
                "when",
                "slo",
                "verdict",
                "objectives",
                "worst burn",
                "requests",
            )
        )
        + "</tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )
    return _card(
        "Serving SLO burn rate",
        table,
        f"last {len(runs)} evaluations; burn rate 1.0 = exactly on budget",
    )


def _table_section(records: list[LedgerRecord], last: int = 20) -> str:
    recent = records[-last:]
    if not recent:
        return _card("Recent runs", '<p class="empty">ledger is empty</p>')
    rows = []
    for rec in reversed(recent):
        teps = rec.metrics.get("teps")
        secs = rec.metrics.get("simulated_seconds")
        rows.append(
            "<tr>"
            + "".join(
                f"<td>{_esc(c)}</td>"
                for c in (
                    (rec.ts or "")[:19],
                    rec.kind,
                    rec.name,
                    rec.commit or "-",
                    rec.fingerprint[:8],
                    _fmt(teps) if teps else "-",
                    f"{secs:.4f}" if secs else "-",
                )
            )
            + "</tr>"
        )
    table = (
        "<table><thead><tr>"
        + "".join(
            f"<th>{h}</th>"
            for h in (
                "when",
                "kind",
                "name",
                "commit",
                "config",
                "teps",
                "sim s",
            )
        )
        + "</tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )
    return _card("Recent runs", table, f"last {len(recent)} records")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def render_dashboard(
    records: list[LedgerRecord], title: str = "repro run ledger"
) -> str:
    """The full dashboard as one standalone HTML document."""
    css = (
        _CSS
        + _CSS_LIGHT_SERIES
        + _CSS_DARK
        + _CSS_DARK_SERIES
        + _CSS_TAIL
    )
    sections = [
        _tiles(records),
        _teps_section(records),
        _attribution_section(records),
        _codec_section(records),
        _chaos_section(records),
        _slo_section(records),
        _table_section(records),
    ]
    span = ""
    if records:
        first = (records[0].ts or "")[:10]
        last = (records[-1].ts or "")[:10]
        span = f"{len(records)} records, {first} → {last}"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<style>{css}</style>\n"
        '</head><body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="sub">{_esc(span)}</p>\n'
        + "\n".join(sections)
        + "\n</body></html>\n"
    )


def write_dashboard(
    path: str | Path,
    records: list[LedgerRecord],
    title: str = "repro run ledger",
) -> Path:
    """Render and write the dashboard; returns the written path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(records, title=title))
    return out
