"""Deterministic synthetic graphs with analytically known BFS structure.

These are used by the test suite (BFS levels on a path, a grid or a binary
tree are known in closed form) and by the examples; the paper's evaluation
itself uses :mod:`repro.graph.rmat`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edge_arrays
from repro.graph.types import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "binary_tree_graph",
    "erdos_renyi_graph",
]


def path_graph(n: int) -> Graph:
    """Path 0 - 1 - ... - (n-1)."""
    if n < 1:
        raise GraphError("path_graph requires n >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    return from_edge_arrays(n, src, src + 1, meta={"kind": "path", "n": n})


def cycle_graph(n: int) -> Graph:
    """Cycle over n >= 3 vertices."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return from_edge_arrays(n, src, dst, meta={"kind": "cycle", "n": n})


def star_graph(n: int) -> Graph:
    """Star: vertex 0 connected to vertices 1..n-1."""
    if n < 2:
        raise GraphError("star_graph requires n >= 2")
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return from_edge_arrays(n, src, dst, meta={"kind": "star", "n": n})


def complete_graph(n: int) -> Graph:
    """Complete graph K_n."""
    if n < 1:
        raise GraphError("complete_graph requires n >= 1")
    idx = np.arange(n, dtype=np.int64)
    src, dst = np.meshgrid(idx, idx, indexing="ij")
    mask = src < dst
    return from_edge_arrays(
        n, src[mask], dst[mask], meta={"kind": "complete", "n": n}
    )


def grid_graph(rows: int, cols: int) -> Graph:
    """4-connected rows x cols grid; vertex (r, c) has id r * cols + c."""
    if rows < 1 or cols < 1:
        raise GraphError("grid_graph requires positive dimensions")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return from_edge_arrays(
        n, src, dst, meta={"kind": "grid", "rows": rows, "cols": cols}
    )


def binary_tree_graph(depth: int) -> Graph:
    """Complete binary tree with 2**(depth+1) - 1 vertices, root 0.

    Vertex v has children 2v + 1 and 2v + 2; BFS level of v from the root
    is floor(log2(v + 1)).
    """
    if depth < 0:
        raise GraphError("binary_tree_graph requires depth >= 0")
    n = (1 << (depth + 1)) - 1
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    return from_edge_arrays(
        n, parent, child, meta={"kind": "binary_tree", "depth": depth}
    )


def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) random graph (dense sampling; intended for small n)."""
    if n < 1:
        raise GraphError("erdos_renyi_graph requires n >= 1")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    mat = rng.random((n, n)) < p
    iu = np.triu_indices(n, k=1)
    mask = mat[iu]
    src = iu[0][mask].astype(np.int64)
    dst = iu[1][mask].astype(np.int64)
    return from_edge_arrays(
        n, src, dst, meta={"kind": "erdos_renyi", "n": n, "p": p, "seed": seed}
    )
