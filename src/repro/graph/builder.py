"""Construction of CSR :class:`~repro.graph.types.Graph` objects from raw
edge lists.

Mirrors the preprocessing of the Graph500 reference code: the generator's
edge list is symmetrized, self-loops are dropped, duplicate edges are
merged, and the adjacency of every vertex is sorted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.types import EdgeList, Graph

__all__ = ["build_graph", "from_edge_arrays"]


def from_edge_arrays(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    meta: dict | None = None,
) -> Graph:
    """Build a :class:`Graph` from parallel source/target arrays."""
    edges = EdgeList(
        num_vertices=num_vertices,
        sources=np.asarray(sources, dtype=np.int64),
        targets=np.asarray(targets, dtype=np.int64),
    )
    return build_graph(edges, meta=meta)


def build_graph(edges: EdgeList, meta: dict | None = None) -> Graph:
    """Symmetrize, deduplicate, drop self-loops and produce sorted CSR."""
    n = edges.num_vertices
    src = edges.sources.astype(np.int64, copy=False)
    dst = edges.targets.astype(np.int64, copy=False)

    keep = src != dst
    src, dst = src[keep], dst[keep]

    # Symmetrize: store both directions.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])

    if all_src.size:
        # Deduplicate directed arcs by sorting on a combined key.
        key = all_src * np.int64(n) + all_dst
        order = np.argsort(key, kind="stable")
        key = key[order]
        uniq = np.empty(key.size, dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        all_src = all_src[order][uniq]
        all_dst = all_dst[order][uniq]

    counts = np.bincount(all_src, minlength=n).astype(np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    # After the sort, arcs are grouped by source with targets ascending,
    # so all_dst is already CSR-ordered.
    graph = Graph(
        num_vertices=n,
        offsets=offsets,
        targets=all_dst.astype(np.int64, copy=False),
        meta=dict(meta or {}),
    )
    _check_csr_invariants(graph)
    return graph


def _check_csr_invariants(graph: Graph) -> None:
    """Cheap invariant checks: adjacency sorted, no self loops."""
    n = graph.num_vertices
    t = graph.targets
    if t.size == 0:
        return
    # Sorted within each row: a decrease may only happen at row boundaries.
    dec = np.flatnonzero(t[1:] <= t[:-1]) + 1
    boundaries = graph.offsets[1:-1]
    if not np.all(np.isin(dec, boundaries)):
        raise GraphError("CSR adjacency is not sorted/deduplicated")
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    if np.any(row_of == t):
        raise GraphError("CSR contains self loops")
