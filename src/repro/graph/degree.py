"""Degree statistics of a graph.

Graph500 requires BFS roots to have degree >= 1, and the paper's analysis
(e.g. the share of isolated vertices in an R-MAT graph, which affects
frontier densities) relies on the degree distribution; this module computes
both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.types import Graph

__all__ = ["DegreeStatistics", "degree_statistics", "sample_roots"]


@dataclass(frozen=True)
class DegreeStatistics:
    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    isolated_vertices: int

    @property
    def isolated_fraction(self) -> float:
        """Share of degree-0 vertices."""
        if self.num_vertices == 0:
            return 0.0
        return self.isolated_vertices / self.num_vertices


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute summary degree statistics."""
    deg = graph.degrees()
    return DegreeStatistics(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=float(deg.mean()) if deg.size else 0.0,
        isolated_vertices=int(np.count_nonzero(deg == 0)),
    )


def sample_roots(graph: Graph, count: int, seed: int = 2) -> np.ndarray:
    """Sample distinct BFS roots with degree >= 1, Graph500 style.

    Raises ``ValueError`` if the graph has fewer than ``count`` non-isolated
    vertices.
    """
    deg = graph.degrees()
    candidates = np.flatnonzero(deg > 0)
    if candidates.size < count:
        raise ValueError(
            f"graph has only {candidates.size} non-isolated vertices, "
            f"cannot sample {count} roots"
        )
    rng = np.random.default_rng(seed)
    return rng.choice(candidates, size=count, replace=False).astype(np.int64)
