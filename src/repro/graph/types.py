"""Graph data types.

:class:`Graph` is an immutable undirected graph in CSR (compressed sparse
row) form — the layout the Graph500 reference code and the paper's BFS
kernels operate on.  Adjacency of vertex ``v`` is
``targets[offsets[v]:offsets[v + 1]]``, sorted ascending, with no
self-loops and no duplicate edges.  Both directions of every undirected
edge are stored, so ``offsets[-1] == 2 * num_edges``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError

__all__ = ["EdgeList", "Graph"]


@dataclass(frozen=True)
class EdgeList:
    """A raw (possibly duplicated, possibly self-looped) list of edges, as
    produced by a generator such as R-MAT before CSR construction."""

    num_vertices: int
    sources: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if self.num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        if self.sources.shape != self.targets.shape or self.sources.ndim != 1:
            raise GraphError("sources/targets must be 1-D arrays of equal length")
        if self.sources.size:
            lo = min(int(self.sources.min()), int(self.targets.min()))
            hi = max(int(self.sources.max()), int(self.targets.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise GraphError(
                    f"edge endpoints out of range [0, {self.num_vertices}): "
                    f"saw [{lo}, {hi}]"
                )

    @property
    def num_edges(self) -> int:
        """Number of raw edges (duplicates included)."""
        return int(self.sources.size)


@dataclass(frozen=True)
class Graph:
    """Undirected graph in CSR form (see module docstring for invariants)."""

    num_vertices: int
    offsets: np.ndarray  # int64, shape (num_vertices + 1,)
    targets: np.ndarray  # int64, shape (2 * num_edges,)
    # Metadata for provenance; benchmarks report it alongside results.
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.offsets.size != self.num_vertices + 1:
            raise GraphError(
                f"offsets must have length num_vertices + 1 = "
                f"{self.num_vertices + 1}, got {self.offsets.size}"
            )
        if self.offsets[0] != 0 or self.offsets[-1] != self.targets.size:
            raise GraphError("offsets must span the targets array")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")

    @property
    def num_directed_edges(self) -> int:
        """Number of stored directed arcs (2x the undirected edge count)."""
        return int(self.targets.size)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.num_directed_edges // 2

    def degree(self, v: int | np.ndarray) -> np.ndarray | int:
        """Degree of vertex/vertices ``v``."""
        d = self.offsets[np.asarray(v) + 1] - self.offsets[np.asarray(v)]
        return d

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as int64."""
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of vertex ``v`` (a view, do not mutate)."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge (u, v) is present."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def memory_bytes(self) -> int:
        """Bytes occupied by the CSR arrays (the `graph` of the paper's
        placement discussion)."""
        return int(self.offsets.nbytes + self.targets.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, meta={self.meta})"
        )
