"""Graph substrate: CSR representation, Graph500 R-MAT generator, synthetic
generators for testing, 1-D partitioning across MPI ranks, and edge-list IO.
"""

from repro.graph.types import Graph, EdgeList
from repro.graph.builder import build_graph, from_edge_arrays
from repro.graph.rmat import RmatParams, generate_rmat_edges, rmat_graph
from repro.graph.generators import (
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    grid_graph,
    erdos_renyi_graph,
    binary_tree_graph,
)
from repro.graph.partition import (
    Partition1D,
    degree_balanced_bounds,
    word_aligned_bounds,
)
from repro.graph.degree import degree_statistics, DegreeStatistics
from repro.graph.io import (
    save_edge_list,
    load_edge_list,
    save_graph,
    load_graph,
    load_text_edges,
    save_text_edges,
)

__all__ = [
    "Graph",
    "EdgeList",
    "build_graph",
    "from_edge_arrays",
    "RmatParams",
    "generate_rmat_edges",
    "rmat_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "erdos_renyi_graph",
    "binary_tree_graph",
    "Partition1D",
    "degree_balanced_bounds",
    "word_aligned_bounds",
    "degree_statistics",
    "DegreeStatistics",
    "save_edge_list",
    "load_edge_list",
    "save_graph",
    "load_graph",
    "load_text_edges",
    "save_text_edges",
]
