"""1-D block partitioning of the vertex space across MPI ranks.

The paper follows the Graph500 reference code: the graph is partitioned
into ``np`` contiguous vertex ranges, one per MPI process; each process
stores the adjacency (CSR rows) of its local vertices.  With one process
per socket and socket binding, this is exactly the "graph is naturally
partitioned into 8 parts" placement of Section II.D.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, GraphError
from repro.graph.types import Graph

__all__ = [
    "Partition1D",
    "LocalGraph",
    "degree_balanced_bounds",
    "word_aligned_bounds",
]


@dataclass(frozen=True)
class LocalGraph:
    """The CSR rows a single rank owns.

    ``offsets`` is re-based so that ``offsets[0] == 0``; local row ``i``
    corresponds to global vertex ``lo + i``.  ``targets`` keep *global*
    vertex ids, since bottom-up checks them against the global frontier
    bitmap.
    """

    rank: int
    lo: int
    hi: int
    offsets: np.ndarray
    targets: np.ndarray

    @property
    def num_local_vertices(self) -> int:
        """Vertices this rank owns."""
        return self.hi - self.lo

    @property
    def num_local_arcs(self) -> int:
        """Directed arcs stored by this rank."""
        return int(self.targets.size)

    def memory_bytes(self) -> int:
        """Bytes of this rank's CSR arrays."""
        return int(self.offsets.nbytes + self.targets.nbytes)


class Partition1D:
    """Block partition of ``num_vertices`` vertices over ``num_parts`` ranks.

    By default uses the balanced block rule (part sizes differ by at most
    one vertex); custom split points can be supplied via ``bounds`` — see
    :func:`degree_balanced_bounds` for the edge-balancing extension.
    """

    def __init__(
        self,
        num_vertices: int,
        num_parts: int,
        bounds: np.ndarray | None = None,
    ) -> None:
        if num_parts < 1:
            raise ConfigError(f"num_parts must be >= 1, got {num_parts}")
        if num_vertices < 0:
            raise ConfigError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self.num_parts = num_parts
        if bounds is None:
            base = num_vertices // num_parts
            extra = num_vertices % num_parts
            sizes = np.full(num_parts, base, dtype=np.int64)
            sizes[:extra] += 1
            bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        else:
            bounds = np.asarray(bounds, dtype=np.int64)
            if (
                bounds.shape != (num_parts + 1,)
                or bounds[0] != 0
                or bounds[-1] != num_vertices
                or np.any(np.diff(bounds) < 0)
            ):
                raise ConfigError(
                    "bounds must be a non-decreasing array of length "
                    "num_parts + 1 spanning [0, num_vertices]"
                )
        self._bounds = bounds

    @property
    def bounds(self) -> np.ndarray:
        """Array of length num_parts + 1; part p owns [bounds[p], bounds[p+1])."""
        return self._bounds

    def range_of(self, part: int) -> tuple[int, int]:
        """Half-open global vertex range owned by ``part``."""
        if not 0 <= part < self.num_parts:
            raise ConfigError(f"part {part} out of range [0, {self.num_parts})")
        return int(self._bounds[part]), int(self._bounds[part + 1])

    def size_of(self, part: int) -> int:
        """Number of vertices owned by ``part``."""
        lo, hi = self.range_of(part)
        return hi - lo

    def owner(self, vertices: np.ndarray | int) -> np.ndarray | int:
        """Owning part of vertex id(s)."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (int(v.min()) < 0 or int(v.max()) >= self.num_vertices):
            raise GraphError("vertex id out of range in owner()")
        result = np.searchsorted(self._bounds, v, side="right") - 1
        if np.isscalar(vertices) or np.ndim(vertices) == 0:
            return int(result)
        return result.astype(np.int64)

    def extract_local(self, graph: Graph, part: int) -> LocalGraph:
        """Slice the CSR rows owned by ``part`` out of a global graph."""
        if graph.num_vertices != self.num_vertices:
            raise GraphError(
                "partition was built for a different vertex count "
                f"({self.num_vertices} != {graph.num_vertices})"
            )
        lo, hi = self.range_of(part)
        row_start = graph.offsets[lo]
        row_end = graph.offsets[hi]
        offsets = (graph.offsets[lo : hi + 1] - row_start).astype(np.int64)
        targets = graph.targets[row_start:row_end]
        return LocalGraph(
            rank=part, lo=lo, hi=hi, offsets=offsets, targets=targets
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition1D(num_vertices={self.num_vertices}, "
            f"num_parts={self.num_parts})"
        )


def word_aligned_bounds(
    num_vertices: int, num_parts: int, alignment: int = 64
) -> np.ndarray:
    """Near-uniform split points rounded to ``alignment`` boundaries.

    The BFS engine's frontier bitmap parts must start at word boundaries
    so their concatenation is the full bitmap; this gives every rank a
    word-aligned range of (almost) equal size for *any* rank count, not
    just divisors of the vertex count.
    """
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    if alignment < 1:
        raise ConfigError("alignment must be >= 1")
    if num_vertices % alignment != 0:
        raise ConfigError(
            f"num_vertices={num_vertices} must be a multiple of "
            f"alignment={alignment}"
        )
    blocks = num_vertices // alignment
    cuts = np.rint(
        blocks * np.arange(num_parts + 1, dtype=np.float64) / num_parts
    ).astype(np.int64)
    return cuts * alignment


def degree_balanced_bounds(
    graph: Graph, num_parts: int, alignment: int = 64
) -> np.ndarray:
    """Split points that balance *edges* per part instead of vertices.

    An extension beyond the paper: R-MAT degree skew leaves the uniform
    block partition with unequal edge work per rank (the paper's "stall"
    phase).  This chooses bounds so every part holds roughly the same
    adjacency mass, rounded to ``alignment``-vertex boundaries so the
    frontier bitmap parts stay word-aligned.
    """
    if num_parts < 1:
        raise ConfigError("num_parts must be >= 1")
    if alignment < 1:
        raise ConfigError("alignment must be >= 1")
    n = graph.num_vertices
    if n % alignment != 0:
        raise ConfigError(
            f"num_vertices={n} must be a multiple of alignment={alignment}"
        )
    # Weight per vertex: its arcs plus 1 (so empty stretches still cost
    # their scan work).
    weights = graph.degrees() + 1
    csum = np.concatenate([[0], np.cumsum(weights, dtype=np.int64)])
    targets = csum[-1] * np.arange(1, num_parts, dtype=np.float64) / num_parts
    cuts = np.searchsorted(csum, targets, side="left")
    # Round to alignment and force strict monotonicity within [0, n].
    cuts = np.rint(cuts / alignment).astype(np.int64) * alignment
    bounds = np.concatenate([[0], cuts, [n]])
    bounds = np.maximum.accumulate(np.clip(bounds, 0, n))
    return bounds.astype(np.int64)
