"""Persistence of edge lists and CSR graphs as ``.npz`` archives.

Benchmarks that sweep many configurations over the same graph reuse a
cached on-disk copy instead of regenerating it; examples use this to hand
graphs between scripts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.types import EdgeList, Graph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_graph",
    "load_graph",
    "load_text_edges",
    "save_text_edges",
]

_FORMAT_VERSION = 1


def save_edge_list(path: str | Path, edges: EdgeList) -> None:
    """Write an edge list to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        format=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"edge_list"),
        num_vertices=np.int64(edges.num_vertices),
        sources=edges.sources,
        targets=edges.targets,
    )


def load_edge_list(path: str | Path) -> EdgeList:
    """Read an edge list written by :func:`save_edge_list`."""
    with np.load(path) as data:
        _check_kind(data, b"edge_list", path)
        return EdgeList(
            num_vertices=int(data["num_vertices"]),
            sources=data["sources"],
            targets=data["targets"],
        )


def save_graph(path: str | Path, graph: Graph) -> None:
    """Write a CSR graph to ``path`` (.npz); metadata is stored as JSON."""
    np.savez_compressed(
        path,
        format=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(graph.num_vertices),
        offsets=graph.offsets,
        targets=graph.targets,
        meta=np.bytes_(json.dumps(graph.meta).encode("utf-8")),
    )


def load_graph(path: str | Path) -> Graph:
    """Read a CSR graph written by :func:`save_graph`."""
    with np.load(path) as data:
        _check_kind(data, b"csr_graph", path)
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        return Graph(
            num_vertices=int(data["num_vertices"]),
            offsets=data["offsets"],
            targets=data["targets"],
            meta=meta,
        )


def load_text_edges(
    path: str | Path,
    num_vertices: int | None = None,
    comment: str = "#",
    align: int = 64,
) -> EdgeList:
    """Read a whitespace-separated text edge list (SNAP / Graph500 ASCII
    style: one ``u v`` pair per line, ``#`` comments).

    ``num_vertices`` defaults to the smallest multiple of ``align`` above
    the largest vertex id, so the result can feed the BFS engine
    directly.
    """
    src: list[int] = []
    dst: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            src.append(u)
            dst.append(v)
    sources = np.asarray(src, dtype=np.int64)
    targets = np.asarray(dst, dtype=np.int64)
    if num_vertices is None:
        top = int(max(sources.max(initial=-1), targets.max(initial=-1))) + 1
        num_vertices = max(align, -(-top // align) * align)
    return EdgeList(
        num_vertices=num_vertices, sources=sources, targets=targets
    )


def save_text_edges(path: str | Path, edges: EdgeList) -> None:
    """Write an edge list as SNAP-style text (one ``u v`` per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        for u, v in zip(edges.sources.tolist(), edges.targets.tolist()):
            fh.write(f"{u} {v}\n")


def _check_kind(data, expected: bytes, path: str | Path) -> None:
    kind = bytes(data["kind"]) if "kind" in data else b"?"
    if kind != expected:
        raise GraphError(
            f"{path} holds {kind!r}, expected {expected!r}"
        )
