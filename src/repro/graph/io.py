"""Persistence of edge lists and CSR graphs as ``.npz`` archives.

Benchmarks that sweep many configurations over the same graph reuse a
cached on-disk copy instead of regenerating it; examples use this to hand
graphs between scripts.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.types import EdgeList, Graph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_graph",
    "load_graph",
    "load_text_edges",
    "save_text_edges",
]

_FORMAT_VERSION = 1


def save_edge_list(path: str | Path, edges: EdgeList) -> None:
    """Write an edge list to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        format=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"edge_list"),
        num_vertices=np.int64(edges.num_vertices),
        sources=edges.sources,
        targets=edges.targets,
    )


def load_edge_list(path: str | Path) -> EdgeList:
    """Read an edge list written by :func:`save_edge_list`.

    A truncated or corrupt archive raises a :class:`GraphError` naming
    the damaged member and its byte offset in the file, never a raw
    numpy/zipfile traceback.
    """
    with _open_npz(path) as data:
        _check_kind(data, b"edge_list", path)
        num_vertices = int(_read_member(data, "num_vertices", path))
        sources = _read_member(data, "sources", path)
        targets = _read_member(data, "targets", path)
    if sources.ndim != 1 or sources.shape != targets.shape:
        raise GraphError(
            f"{path}: sources/targets must be equal-length 1-D arrays, "
            f"got shapes {sources.shape} and {targets.shape}",
            path=str(path),
        )
    return EdgeList(
        num_vertices=num_vertices, sources=sources, targets=targets
    )


def save_graph(path: str | Path, graph: Graph) -> None:
    """Write a CSR graph to ``path`` (.npz); metadata is stored as JSON."""
    np.savez_compressed(
        path,
        format=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"csr_graph"),
        num_vertices=np.int64(graph.num_vertices),
        offsets=graph.offsets,
        targets=graph.targets,
        meta=np.bytes_(json.dumps(graph.meta).encode("utf-8")),
    )


def load_graph(path: str | Path) -> Graph:
    """Read a CSR graph written by :func:`save_graph`.

    Beyond archive integrity (see :func:`load_edge_list`), the CSR
    structure itself is checked — offset monotonicity and agreement with
    the adjacency length — so a damaged file can never produce a
    silently wrong graph.
    """
    with _open_npz(path) as data:
        _check_kind(data, b"csr_graph", path)
        num_vertices = int(_read_member(data, "num_vertices", path))
        offsets = _read_member(data, "offsets", path)
        targets = _read_member(data, "targets", path)
        meta_raw = _read_member(data, "meta", path)
    try:
        meta = json.loads(bytes(meta_raw).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise GraphError(
            f"{path}: corrupt JSON metadata block: {exc}",
            path=str(path), member="meta",
        ) from exc
    if offsets.ndim != 1 or offsets.size != num_vertices + 1:
        raise GraphError(
            f"{path}: CSR offsets must have num_vertices+1 "
            f"(= {num_vertices + 1}) entries, got shape {offsets.shape}",
            path=str(path), member="offsets",
        )
    if offsets.size and (
        int(offsets[0]) != 0 or int(offsets[-1]) != targets.size
    ):
        raise GraphError(
            f"{path}: CSR offsets span [{int(offsets[0])}, "
            f"{int(offsets[-1])}] but the adjacency holds {targets.size} "
            f"entries",
            path=str(path), member="offsets",
        )
    if np.any(np.diff(offsets) < 0):
        bad = int(np.argmax(np.diff(offsets) < 0))
        raise GraphError(
            f"{path}: CSR offsets decrease at vertex {bad}",
            path=str(path), member="offsets", vertex=bad,
        )
    return Graph(
        num_vertices=num_vertices,
        offsets=offsets,
        targets=targets,
        meta=meta,
    )


def load_text_edges(
    path: str | Path,
    num_vertices: int | None = None,
    comment: str = "#",
    align: int = 64,
) -> EdgeList:
    """Read a whitespace-separated text edge list (SNAP / Graph500 ASCII
    style: one ``u v`` pair per line, ``#`` comments).

    ``num_vertices`` defaults to the smallest multiple of ``align`` above
    the largest vertex id, so the result can feed the BFS engine
    directly.
    """
    src: list[int] = []
    dst: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            src.append(u)
            dst.append(v)
    sources = np.asarray(src, dtype=np.int64)
    targets = np.asarray(dst, dtype=np.int64)
    if num_vertices is None:
        top = int(max(sources.max(initial=-1), targets.max(initial=-1))) + 1
        num_vertices = max(align, -(-top // align) * align)
    return EdgeList(
        num_vertices=num_vertices, sources=sources, targets=targets
    )


def save_text_edges(path: str | Path, edges: EdgeList) -> None:
    """Write an edge list as SNAP-style text (one ``u v`` per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        for u, v in zip(edges.sources.tolist(), edges.targets.tolist()):
            fh.write(f"{u} {v}\n")


def _file_bytes(path: str | Path) -> int:
    """Size of the archive on disk (-1 when it cannot be stat'ed)."""
    try:
        return Path(path).stat().st_size
    except OSError:
        return -1


def _member_offset(path: str | Path, member: str) -> int:
    """Byte offset of a member's local header in the zip (-1 unknown)."""
    import zipfile

    try:
        with zipfile.ZipFile(path) as zf:
            return zf.getinfo(member).header_offset
    except Exception:
        return -1


@contextmanager
def _open_npz(path: str | Path):
    """Open an ``.npz`` graph archive, mapping any low-level failure
    (missing file, truncated zip directory, not-a-zip) to a
    :class:`GraphError` that names the file and its on-disk size."""
    try:
        data = np.load(path)
    except FileNotFoundError:
        raise  # a missing file is not a damaged one — keep the usual error
    except Exception as exc:
        size = _file_bytes(path)
        raise GraphError(
            f"{path}: not a readable .npz graph archive "
            f"({type(exc).__name__}: {exc}); file is {size} bytes on disk "
            f"— truncated download or wrong file?",
            path=str(path), file_bytes=size,
        ) from exc
    try:
        yield data
    finally:
        data.close()


def _read_member(data, name: str, path: str | Path):
    """Read one array member, mapping truncation/corruption inside the
    archive to a :class:`GraphError` with the member's byte offset."""
    try:
        return data[name]
    except KeyError as exc:
        raise GraphError(
            f"{path}: archive has no member {name!r} "
            f"(present: {', '.join(sorted(data.files))})",
            path=str(path), member=name, file_bytes=_file_bytes(path),
        ) from exc
    except Exception as exc:
        offset = _member_offset(path, f"{name}.npy")
        raise GraphError(
            f"{path}: member {name!r} is truncated or corrupt at byte "
            f"offset {offset} ({type(exc).__name__}: {exc})",
            path=str(path), member=name, byte_offset=offset,
            file_bytes=_file_bytes(path),
        ) from exc


def _check_kind(data, expected: bytes, path: str | Path) -> None:
    kind = (
        bytes(_read_member(data, "kind", path)) if "kind" in data else b"?"
    )
    if kind != expected:
        raise GraphError(
            f"{path} holds {kind!r}, expected {expected!r}",
            path=str(path),
        )
