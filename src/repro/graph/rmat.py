"""Graph500-style R-MAT (Kronecker) graph generator [Chakrabarti et al.].

The paper evaluates on R-MAT graphs with the Graph500 parameters
(A, B, C, D) = (0.57, 0.19, 0.19, 0.05) and ``edgefactor = 16`` (so a
scale-32 graph has 2^32 vertices and 16 * 2^32 = 64 G undirected edges).
The generator is fully vectorized: one pass per scale level over all edges.

Vertex labels are randomly permuted by default, as mandated by the
Graph500 specification, which destroys the locality the recursive process
would otherwise put into low vertex IDs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import build_graph
from repro.graph.types import EdgeList, Graph

__all__ = ["RmatParams", "generate_rmat_edges", "rmat_graph"]

GRAPH500_EDGEFACTOR = 16


@dataclass(frozen=True)
class RmatParams:
    """Quadrant probabilities of the recursive matrix."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise GraphError(f"R-MAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise GraphError("R-MAT probabilities must be non-negative")


def generate_rmat_edges(
    scale: int,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    params: RmatParams = RmatParams(),
    seed: int = 1,
    permute_labels: bool = True,
) -> EdgeList:
    """Generate ``edgefactor * 2**scale`` raw edges over ``2**scale`` vertices.

    The returned edge list may contain duplicates and self-loops, exactly as
    the Graph500 generator's output does; CSR construction cleans them up.
    """
    if scale < 0:
        raise GraphError(f"scale must be non-negative, got {scale}")
    if edgefactor <= 0:
        raise GraphError(f"edgefactor must be positive, got {edgefactor}")
    n = 1 << scale
    m = edgefactor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    p_right = params.b + params.d  # P(column bit = 1)
    # Conditional probabilities of the row bit given the column bit.
    p_row1_given_right = params.d / p_right if p_right > 0 else 0.0
    p_row1_given_left = (
        params.c / (params.a + params.c) if (params.a + params.c) > 0 else 0.0
    )
    for _level in range(scale):
        col = rng.random(m) < p_right
        p_row1 = np.where(col, p_row1_given_right, p_row1_given_left)
        row = rng.random(m) < p_row1
        src = (src << 1) | row.astype(np.int64)
        dst = (dst << 1) | col.astype(np.int64)

    if permute_labels:
        perm = rng.permutation(n).astype(np.int64)
        src = perm[src]
        dst = perm[dst]
    # Randomize edge direction as the reference generator does.
    flip = rng.random(m) < 0.5
    src2 = np.where(flip, dst, src)
    dst2 = np.where(flip, src, dst)
    return EdgeList(num_vertices=n, sources=src2, targets=dst2)


def rmat_graph(
    scale: int,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    params: RmatParams = RmatParams(),
    seed: int = 1,
    permute_labels: bool = True,
) -> Graph:
    """Generate an R-MAT edge list and build the CSR graph."""
    edges = generate_rmat_edges(
        scale,
        edgefactor=edgefactor,
        params=params,
        seed=seed,
        permute_labels=permute_labels,
    )
    return build_graph(
        edges,
        meta={
            "kind": "rmat",
            "scale": scale,
            "edgefactor": edgefactor,
            "seed": seed,
            "raw_edges": edges.num_edges,
        },
    )
