"""Event-count records of a BFS run.

The engine is a *functional* simulator: it executes the real algorithm on
real data and records, per level and per rank, how many of each access
class occurred.  Timing is then a pure function of these counts plus the
machine model (:mod:`repro.core.timing`), which is also what allows the
paper-scale extrapolation in :mod:`repro.model`: counts scale linearly
with the graph, structure sizes are swapped for target-scale ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["Direction", "LevelCounts", "RunCounts"]


class Direction:
    """Direction labels for BFS levels (string constants)."""
    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"


@dataclass
class LevelCounts:
    """Per-rank event counts of one BFS level."""

    level: int
    direction: str
    # Did this level convert the frontier representation first?
    switched: bool = False

    # Per-rank arrays, shape (num_ranks,), all int64:
    frontier_local: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    candidates: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    examined_edges: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    inqueue_reads: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    discovered: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    # Top-down communication: (np, np) matrix of bytes sent rank->rank.
    td_send_bytes: np.ndarray | None = None

    # Bottom-up communication: allgather part sizes (uint64 words).
    # Floats: at small measured scales the exact per-rank share can be
    # fractional, and rounding it up would inflate the extrapolated
    # payload by large factors.
    inq_part_words: float = 0.0
    summary_part_words: float = 0.0

    # Frontier-codec outcome of this level's allgathers.  ``codec`` is
    # the concrete codec the level transmitted with (None/"raw" = no
    # encoding, wire == raw); wire bytes are post-encode payload sizes,
    # data-dependent and hence recorded rather than recomputed.  Raw
    # totals are kept alongside so compression ratios survive scaling.
    codec: str | None = None
    inq_raw_total_bytes: float = 0.0
    inq_wire_part_bytes: float = 0.0
    inq_wire_total_bytes: float = 0.0
    summary_raw_total_bytes: float = 0.0
    summary_wire_part_bytes: float = 0.0
    summary_wire_total_bytes: float = 0.0

    # Small collectives this level (frontier stats + termination checks).
    allreduces: int = 0

    def validate(self, num_ranks: int) -> None:
        """Check per-rank array shapes against the rank count."""
        for name in (
            "frontier_local",
            "candidates",
            "examined_edges",
            "inqueue_reads",
            "discovered",
        ):
            arr = getattr(self, name)
            if arr.shape != (num_ranks,):
                raise SimulationError(
                    f"level {self.level}: {name} has shape {arr.shape}, "
                    f"expected ({num_ranks},)"
                )
        if self.td_send_bytes is not None and self.td_send_bytes.shape != (
            num_ranks,
            num_ranks,
        ):
            raise SimulationError(
                f"level {self.level}: td_send_bytes has wrong shape"
            )

    def scaled(self, factor: float) -> "LevelCounts":
        """Counts of the same level on a graph ``factor``x larger.

        Totals scale linearly with graph size for a fixed per-level
        frontier-density profile (R-MAT levels are scale-invariant to
        first order; see DESIGN.md §2).  Per-rank *imbalance*, however,
        does not: counts are sums of per-vertex contributions, so their
        relative deviation from the mean shrinks like ``1/sqrt(factor)``
        as each rank's share grows.  Extrapolation therefore shrinks the
        deviations accordingly — otherwise the stall (load-imbalance)
        phase of a tiny measured run would be wildly overstated at paper
        scale.
        """
        if factor <= 0:
            raise SimulationError("scale factor must be positive")
        shrink = np.sqrt(factor)

        def s(arr: np.ndarray) -> np.ndarray:
            if arr.size == 0:
                return arr.copy()
            mean = arr.mean()
            scaled = mean * factor + (arr - mean) * shrink
            return np.maximum(np.rint(scaled), 0).astype(np.int64)

        if self.td_send_bytes is None:
            td = None
        else:
            # Traffic spreads across sender ranks as the frontier grows:
            # on a tiny graph one hub's owner may be the only sender of a
            # level, while at paper scale the same level's frontier is
            # hashed over all ranks.  Off-diagonal entries therefore
            # regress toward the uniform mean with the same 1/sqrt law;
            # the (free) self-message diagonal scales linearly.
            td = self.td_send_bytes.astype(np.float64)
            n = td.shape[0]
            off = ~np.eye(n, dtype=bool)
            if n > 1:
                mean = td[off].mean()
                td[off] = np.maximum(
                    mean * factor + (td[off] - mean) * shrink, 0
                )
            td[~off] *= factor
            td = np.rint(td).astype(np.int64)

        return LevelCounts(
            level=self.level,
            direction=self.direction,
            switched=self.switched,
            frontier_local=s(self.frontier_local),
            candidates=s(self.candidates),
            examined_edges=s(self.examined_edges),
            inqueue_reads=s(self.inqueue_reads),
            discovered=s(self.discovered),
            td_send_bytes=td,
            inq_part_words=self.inq_part_words * factor,
            summary_part_words=self.summary_part_words * factor,
            # Compressed payloads are dominated by per-set-bit tokens
            # (RLE runs, sparse gaps), and set bits scale linearly with
            # the graph at fixed frontier density — so wire bytes scale
            # with the same factor as their raw counterparts, keeping
            # the level's compression ratio scale-invariant.
            codec=self.codec,
            inq_raw_total_bytes=self.inq_raw_total_bytes * factor,
            inq_wire_part_bytes=self.inq_wire_part_bytes * factor,
            inq_wire_total_bytes=self.inq_wire_total_bytes * factor,
            summary_raw_total_bytes=self.summary_raw_total_bytes * factor,
            summary_wire_part_bytes=self.summary_wire_part_bytes * factor,
            summary_wire_total_bytes=self.summary_wire_total_bytes * factor,
            allreduces=self.allreduces,
        )


@dataclass
class RunCounts:
    """All levels of one BFS run plus run-level facts."""

    num_vertices: int
    num_ranks: int
    levels: list[LevelCounts] = field(default_factory=list)
    # Undirected input edges inside the root's component (the Graph500
    # numerator for TEPS).
    traversed_edges: int = 0
    visited_vertices: int = 0

    def validate(self) -> None:
        """Validate every level's shapes."""
        for lvl in self.levels:
            lvl.validate(self.num_ranks)

    @property
    def num_levels(self) -> int:
        """Number of BFS levels in the run."""
        return len(self.levels)

    def total_examined_edges(self) -> int:
        """Edges examined across all levels and ranks."""
        return int(sum(lvl.examined_edges.sum() for lvl in self.levels))

    def scaled(self, factor: float) -> "RunCounts":
        """The run's counts on a graph ``factor``x larger (see
        :meth:`LevelCounts.scaled`)."""
        return RunCounts(
            num_vertices=int(round(self.num_vertices * factor)),
            num_ranks=self.num_ranks,
            levels=[lvl.scaled(factor) for lvl in self.levels],
            traversed_edges=int(round(self.traversed_edges * factor)),
            visited_vertices=int(round(self.visited_vertices * factor)),
        )
