"""Direction policy of the hybrid BFS (Beamer et al., the paper's [9]).

The policy sees global frontier statistics each level and decides the
next expansion direction:

* switch top-down -> bottom-up when the frontier's outgoing edges exceed
  the unexplored edges divided by ``alpha`` (the frontier is expensive to
  expand edge-by-edge);
* switch bottom-up -> top-down when the frontier shrinks below
  ``n / beta`` vertices (scanning all unvisited vertices would waste
  work).

On Graph500 R-MAT graphs this yields the three-phase run the paper
describes: top-down, then bottom-up for the few huge levels, then
top-down again for the stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BFSConfig, TraversalMode
from repro.core.counts import Direction

__all__ = ["FrontierStats", "DirectionPolicy"]


@dataclass(frozen=True)
class FrontierStats:
    """Global (allreduced) frontier statistics at the start of a level."""

    frontier_vertices: int
    frontier_edges: int  # sum of degrees of frontier vertices
    unexplored_edges: int  # sum of degrees of undiscovered vertices
    num_vertices: int


class DirectionPolicy:
    """Stateful next-direction chooser."""

    def __init__(self, config: BFSConfig) -> None:
        self.config = config
        self._direction = Direction.TOP_DOWN
        self._finished_bottom_up = False

    @property
    def direction(self) -> str:
        """Direction chosen for the current level."""
        return self._direction

    def decide(self, stats: FrontierStats, tracer=None) -> str:
        """Direction to use for the level about to be expanded.

        A run switches to bottom-up at most once: R-MAT frontiers ramp up
        and down exponentially, giving the paper's three-phase structure
        (II.A); near exhaustion the alpha test would otherwise re-trigger
        spuriously because the unexplored edge count goes to zero.

        A recording ``tracer`` receives one ``direction.decide`` marker
        per level with the allreduced statistics and the chosen
        direction — the raw data behind the hybrid switch points visible
        in the exported trace.
        """
        previous = self._direction
        mode = self.config.mode
        if mode is TraversalMode.TOP_DOWN:
            self._direction = Direction.TOP_DOWN
        elif mode is TraversalMode.BOTTOM_UP:
            self._direction = Direction.BOTTOM_UP
        elif self._direction == Direction.TOP_DOWN:
            if not self._finished_bottom_up and (
                stats.frontier_edges
                > stats.unexplored_edges / self.config.alpha
            ):
                self._direction = Direction.BOTTOM_UP
        else:
            if stats.frontier_vertices < stats.num_vertices / self.config.beta:
                self._direction = Direction.TOP_DOWN
                self._finished_bottom_up = True
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "direction.decide",
                cat="policy",
                direction=self._direction,
                switched=self._direction != previous,
                frontier_vertices=stats.frontier_vertices,
                frontier_edges=stats.frontier_edges,
                unexplored_edges=stats.unexplored_edges,
            )
        return self._direction
