"""BFS configuration: the paper's optimization stack as explicit knobs.

Each named variant of Fig. 9 is a preset:

==================  =====================================================
``Original.ppn=1``  one process per node, ``numactl --interleave=all``
``Original.ppn=8``  one process per socket, ``--bind-to-socket``
``Share in_queue``  node-shared ``in_queue`` (no broadcast step)
``Share all``       ``out_queue`` and summaries shared too (no gather)
``Par allgather``   the in_queue allgather runs in parallel subgroups
``Granularity``     summary granularity raised from 64 (best: 256)
==================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.machine.memory import Placement
from repro.machine.spec import ClusterSpec
from repro.mpi.collectives import AllgatherAlgorithm
from repro.mpi.mapping import BindingPolicy

__all__ = ["TraversalMode", "BFSConfig", "paper_variants"]


class TraversalMode(enum.Enum):
    """Which expansion kernels the engine may use."""

    HYBRID = "hybrid"
    TOP_DOWN = "top_down"  # pure mpi_simple-style BFS
    BOTTOM_UP = "bottom_up"  # pure mpi_replicated-style BFS


@dataclass(frozen=True)
class BFSConfig:
    """All knobs of one BFS execution."""

    # NUMA mapping (Section II.D / Fig. 10).
    ppn: int | None = None  # None = one process per socket
    binding: BindingPolicy = BindingPolicy.BIND_TO_SOCKET

    # Communication optimizations (Section III.A-B).
    share_in_queue: bool = False
    share_all: bool = False
    parallel_allgather: bool = False

    # Computation optimization (Section III.C).
    granularity: int = 64
    use_summary: bool = True

    # Kernel backend selection (repro.core.kernels).  None defers to the
    # REPRO_KERNEL environment variable and then the registry default
    # ("activeset").  All backends are bit-identical on the paper's
    # accounting, so this knob never changes a priced result.
    kernel: str | None = None
    # First-round chunk width of the active-set backend's wavefront
    # (edges tested per candidate per round; doubles each round).  Mid-BFS
    # candidates retire within the first edge or two, so the first rounds
    # should stay tiny.
    kernel_chunk: int = 2

    # Extension beyond the paper: balance the 1-D partition by edge mass
    # instead of vertex count, reducing the stall (load-imbalance) phase.
    degree_balanced: bool = False

    # The paper runs the OpenMP dynamic scheduler inside each rank to
    # avoid intra-rank load imbalance (IV.C); turning it off prices the
    # static-chunking penalty on the skewed per-vertex work.
    omp_dynamic: bool = True

    # Hybrid direction policy (Beamer et al.): switch to bottom-up when
    # frontier edges exceed unexplored edges / alpha, and back to top-down
    # when frontier vertices drop below n / beta.
    mode: TraversalMode = TraversalMode.HYBRID
    alpha: float = 14.0
    beta: float = 24.0

    label: str = "custom"

    def __post_init__(self) -> None:
        if self.ppn is not None and self.ppn < 1:
            raise ConfigError("ppn must be positive")
        if self.granularity < 64 or self.granularity % 64:
            raise ConfigError("granularity must be a positive multiple of 64")
        if self.kernel_chunk < 1:
            raise ConfigError("kernel_chunk must be >= 1")
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError("alpha/beta must be positive")
        if self.parallel_allgather and not self.shares_everything:
            raise ConfigError(
                "parallel_allgather builds on 'Share all' "
                "(set share_all=True as the paper's stack does)"
            )
        if self.share_all and not self.share_in_queue:
            raise ConfigError("share_all implies share_in_queue")

    # ---- derived properties -------------------------------------------------

    @property
    def shares_in_queue(self) -> bool:
        """True when in_queue lives in node-shared memory."""
        return self.share_in_queue or self.share_all

    @property
    def shares_everything(self) -> bool:
        """True when out_queue and summaries are shared too."""
        return self.share_all

    def resolve_ppn(self, cluster: ClusterSpec) -> int:
        """Processes per node (defaults to one per socket)."""
        return cluster.node.sockets if self.ppn is None else self.ppn

    def in_queue_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm used for the large in_queue payload."""
        if self.parallel_allgather:
            return AllgatherAlgorithm.PARALLEL_SHARED
        if self.share_all:
            return AllgatherAlgorithm.SHARED_ALL
        if self.share_in_queue:
            return AllgatherAlgorithm.SHARED_IN
        return AllgatherAlgorithm.DEFAULT

    def summary_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm for the (64x smaller) summary payload.

        Only 'Share all' shares the summaries (III.A.2: "in_queue_summary
        and out_queue_summary can be dealt in the same way"); the parallel
        optimization applies to the in_queue allgather only.
        """
        if self.share_all:
            return AllgatherAlgorithm.SHARED_ALL
        return AllgatherAlgorithm.DEFAULT

    def in_queue_placement(self, private: Placement) -> Placement:
        """Memory placement of in_queue under this configuration."""
        return Placement.NODE_SHARED if self.shares_in_queue else private

    def summary_placement(self, private: Placement) -> Placement:
        """Memory placement of the summary under this configuration."""
        return Placement.NODE_SHARED if self.share_all else private

    def named(self, label: str) -> "BFSConfig":
        """Copy of this configuration with a display label."""
        return replace(self, label=label)

    # ---- paper presets --------------------------------------------------------

    @classmethod
    def original_ppn1(cls, binding: BindingPolicy = BindingPolicy.INTERLEAVE):
        """'Original.ppn=1': one process per node, interleaved memory."""
        return cls(ppn=1, binding=binding, label="Original.ppn=1")

    @classmethod
    def original_ppn8(cls):
        """'Original.ppn=8': one process per socket, bound."""
        return cls(label="Original.ppn=8")

    @classmethod
    def share_in_queue_variant(cls):
        """'Share in_queue': node-shared in_queue (no broadcast step)."""
        return cls(share_in_queue=True, label="Share in_queue")

    @classmethod
    def share_all_variant(cls):
        """'Share all': out_queue and summaries shared too (no gather)."""
        return cls(
            share_in_queue=True, share_all=True, label="Share all"
        )

    @classmethod
    def par_allgather_variant(cls):
        """'Par allgather': the Fig. 7 parallel-subgroup allgather."""
        return cls(
            share_in_queue=True,
            share_all=True,
            parallel_allgather=True,
            label="Par allgather",
        )

    @classmethod
    def granularity_variant(cls, granularity: int = 256):
        """The full stack with a chosen summary granularity."""
        return cls(
            share_in_queue=True,
            share_all=True,
            parallel_allgather=True,
            granularity=granularity,
            label=f"Granularity={granularity}",
        )


def paper_variants(best_granularity: int = 256) -> dict[str, BFSConfig]:
    """The Fig. 9 optimization stack, in order."""
    return {
        "Original.ppn=1": BFSConfig.original_ppn1(),
        "Original.ppn=8": BFSConfig.original_ppn8(),
        "Share in_queue": BFSConfig.share_in_queue_variant(),
        "Share all": BFSConfig.share_all_variant(),
        "Par allgather": BFSConfig.par_allgather_variant(),
        "Granularity": BFSConfig.granularity_variant(best_granularity),
    }
