"""BFS configuration: the paper's optimization stack as explicit knobs.

Each named variant of Fig. 9 is a preset:

==================  =====================================================
``Original.ppn=1``  one process per node, ``numactl --interleave=all``
``Original.ppn=8``  one process per socket, ``--bind-to-socket``
``Share in_queue``  node-shared ``in_queue`` (no broadcast step)
``Share all``       ``out_queue`` and summaries shared too (no gather)
``Par allgather``   the in_queue allgather runs in parallel subgroups
``Granularity``     summary granularity raised from 64 (best: 256)
==================  =====================================================

Communication settings live in one place: :class:`CommConfig`, held as
``BFSConfig.comm``.  It consolidates the sharing variant, the parallel
subgroup schedule, an explicit allgather-algorithm override, the summary
granularity and the frontier codec (see docs/COMMUNICATION.md).  The
pre-PR-3 flat kwargs (``share_in_queue=…``, ``share_all=…``,
``parallel_allgather=…``, ``granularity=…``, ``use_summary=…``) went
through a deprecation cycle and are now rejected with a
:class:`~repro.errors.ConfigError` that spells out the equivalent
``comm=CommConfig(...)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.machine.memory import Placement
from repro.machine.spec import ClusterSpec
from repro.mpi.codecs import available_codecs
from repro.mpi.collectives import AllgatherAlgorithm
from repro.mpi.mapping import BindingPolicy

__all__ = [
    "TraversalMode",
    "SharingVariant",
    "CommConfig",
    "BFSConfig",
    "paper_variants",
]


class TraversalMode(enum.Enum):
    """Which expansion kernels the engine may use."""

    HYBRID = "hybrid"
    TOP_DOWN = "top_down"  # pure mpi_simple-style BFS
    BOTTOM_UP = "bottom_up"  # pure mpi_replicated-style BFS


class SharingVariant(enum.Enum):
    """How much of the frontier state lives in node-shared memory.

    Replaces the old ``share_in_queue``/``share_all`` boolean pair,
    whose fourth combination (``share_all`` without ``share_in_queue``)
    was invalid by construction.
    """

    #: All structures in rank-private memory ('Original' variants).
    PRIVATE = "private"
    #: Node-shared ``in_queue`` — the broadcast step disappears (Fig. 5b).
    IN_QUEUE = "in_queue"
    #: ``out_queue`` and summaries shared too — no gather step either.
    ALL = "all"


@dataclass(frozen=True)
class CommConfig:
    """All communication knobs of one BFS execution, in one place.

    Section III.A-B of the paper plus the PR-3 compression layer: the
    sharing variant, the Fig. 7 parallel-subgroup allgather (with its
    ablation knob ``subgroups``), an explicit algorithm override for the
    in_queue allgather, the in_queue summary (Section III.C), and the
    frontier codec.
    """

    #: Memory sharing variant (Fig. 5a/5b and 'Share all').
    sharing: SharingVariant = SharingVariant.PRIVATE
    #: Fig. 7: in_queue allgather over concurrent per-node subgroups.
    parallel_allgather: bool = False
    #: Subgroup count for the parallel allgather (None = ppn, the paper's
    #: choice; lower values are the ablation of bench_ablation).
    subgroups: int | None = None
    #: Explicit in_queue allgather algorithm; None derives it from the
    #: sharing variant as the paper's stack does.
    allgather: AllgatherAlgorithm | None = None
    #: Vertices per summary bit (Section III.C; multiple of 64).
    summary_granularity: int = 64
    #: Maintain and price the in_queue summary at all.
    use_summary: bool = True
    #: Frontier codec name (repro.mpi.codecs); None defers to the
    #: REPRO_CODEC environment variable and then the registry default
    #: ("raw").  Codecs are lossless, so this never changes the BFS
    #: result — only simulated communication bytes/seconds.
    codec: str | None = None

    def __post_init__(self) -> None:
        if self.summary_granularity < 64 or self.summary_granularity % 64:
            raise ConfigError(
                "summary_granularity must be a positive multiple of 64"
            )
        if self.parallel_allgather and self.sharing is not SharingVariant.ALL:
            raise ConfigError(
                "parallel_allgather builds on 'Share all' "
                "(set sharing=SharingVariant.ALL as the paper's stack does)"
            )
        if self.subgroups is not None:
            if not self.parallel_allgather:
                raise ConfigError("subgroups requires parallel_allgather")
            if self.subgroups < 1:
                raise ConfigError("subgroups must be >= 1")
        if self.codec is not None and self.codec not in available_codecs():
            raise ConfigError(
                f"unknown frontier codec {self.codec!r}; available: "
                f"{', '.join(available_codecs())}"
            )
        if (
            self.allgather is not None
            and self.allgather in _SHARED_FAMILY
            and self.sharing is SharingVariant.PRIVATE
        ):
            raise ConfigError(
                f"allgather={self.allgather.value} needs node-shared "
                f"buffers; pick a non-PRIVATE sharing variant"
            )

    # ---- derived ----------------------------------------------------------

    @property
    def shares_in_queue(self) -> bool:
        """True when in_queue lives in node-shared memory."""
        return self.sharing is not SharingVariant.PRIVATE

    @property
    def shares_everything(self) -> bool:
        """True when out_queue and summaries are shared too."""
        return self.sharing is SharingVariant.ALL

    def in_queue_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm used for the large in_queue payload."""
        if self.allgather is not None:
            return self.allgather
        if self.parallel_allgather:
            return AllgatherAlgorithm.PARALLEL_SHARED
        if self.sharing is SharingVariant.ALL:
            return AllgatherAlgorithm.SHARED_ALL
        if self.sharing is SharingVariant.IN_QUEUE:
            return AllgatherAlgorithm.SHARED_IN
        return AllgatherAlgorithm.DEFAULT

    def summary_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm for the (64x smaller) summary payload.

        Only 'Share all' shares the summaries (III.A.2: "in_queue_summary
        and out_queue_summary can be dealt in the same way"); the parallel
        optimization applies to the in_queue allgather only.
        """
        if self.sharing is SharingVariant.ALL:
            return AllgatherAlgorithm.SHARED_ALL
        return AllgatherAlgorithm.DEFAULT

    def in_queue_placement(self, private: Placement) -> Placement:
        """Memory placement of in_queue under this configuration."""
        return Placement.NODE_SHARED if self.shares_in_queue else private

    def summary_placement(self, private: Placement) -> Placement:
        """Memory placement of the summary under this configuration."""
        return (
            Placement.NODE_SHARED if self.shares_everything else private
        )

    # ---- presets ----------------------------------------------------------

    @classmethod
    def private(cls, **kwargs) -> "CommConfig":
        """The 'Original' variants: everything rank-private."""
        return cls(sharing=SharingVariant.PRIVATE, **kwargs)

    @classmethod
    def shared_in_queue(cls, **kwargs) -> "CommConfig":
        """'Share in_queue' (Fig. 5b)."""
        return cls(sharing=SharingVariant.IN_QUEUE, **kwargs)

    @classmethod
    def shared_all(cls, **kwargs) -> "CommConfig":
        """'Share all': sources and summaries shared too."""
        return cls(sharing=SharingVariant.ALL, **kwargs)

    @classmethod
    def parallel(cls, **kwargs) -> "CommConfig":
        """'Par allgather': Fig. 7 on top of 'Share all'."""
        return cls(
            sharing=SharingVariant.ALL, parallel_allgather=True, **kwargs
        )


_SHARED_FAMILY = (
    AllgatherAlgorithm.SHARED_IN,
    AllgatherAlgorithm.SHARED_ALL,
    AllgatherAlgorithm.PARALLEL_SHARED,
    AllgatherAlgorithm.MULTI_LEADER,
)

#: Legacy flat kwargs accepted (with a DeprecationWarning) by BFSConfig.
_LEGACY_COMM_KWARGS = (
    "share_in_queue",
    "share_all",
    "parallel_allgather",
    "granularity",
    "use_summary",
)


def _comm_from_legacy(legacy: dict) -> CommConfig:
    """Build a :class:`CommConfig` from pre-PR-3 flat kwargs.

    Reproduces the old validation semantics exactly (including the
    historical error messages' intent) so shimmed callers keep the
    behaviour they relied on.
    """
    share_in_queue = bool(legacy.get("share_in_queue") or False)
    share_all = bool(legacy.get("share_all") or False)
    if share_all and not share_in_queue:
        raise ConfigError("share_all implies share_in_queue")
    if share_all:
        sharing = SharingVariant.ALL
    elif share_in_queue:
        sharing = SharingVariant.IN_QUEUE
    else:
        sharing = SharingVariant.PRIVATE
    use_summary = legacy.get("use_summary")
    return CommConfig(
        sharing=sharing,
        parallel_allgather=bool(legacy.get("parallel_allgather") or False),
        summary_granularity=int(legacy.get("granularity") or 64),
        use_summary=True if use_summary is None else bool(use_summary),
    )


@dataclass(frozen=True)
class BFSConfig:
    """All knobs of one BFS execution."""

    # NUMA mapping (Section II.D / Fig. 10).
    ppn: int | None = None  # None = one process per socket
    binding: BindingPolicy = BindingPolicy.BIND_TO_SOCKET

    # Communication: sharing variant, allgather schedule, summary
    # granularity, frontier codec (Sections III.A-C + PR 3) — one
    # consolidated sub-config.
    comm: CommConfig = CommConfig()

    # Kernel backend selection (repro.core.kernels).  None defers to the
    # REPRO_KERNEL environment variable and then the registry default
    # ("activeset").  All backends are bit-identical on the paper's
    # accounting, so this knob never changes a priced result.
    kernel: str | None = None
    # First-round chunk width of the active-set backend's wavefront
    # (edges tested per candidate per round; doubles each round).  Mid-BFS
    # candidates retire within the first edge or two, so the first rounds
    # should stay tiny.
    kernel_chunk: int = 2

    # Extension beyond the paper: balance the 1-D partition by edge mass
    # instead of vertex count, reducing the stall (load-imbalance) phase.
    degree_balanced: bool = False

    # The paper runs the OpenMP dynamic scheduler inside each rank to
    # avoid intra-rank load imbalance (IV.C); turning it off prices the
    # static-chunking penalty on the skewed per-vertex work.
    omp_dynamic: bool = True

    # Hybrid direction policy (Beamer et al.): switch to bottom-up when
    # frontier edges exceed unexplored edges / alpha, and back to top-down
    # when frontier vertices drop below n / beta.
    mode: TraversalMode = TraversalMode.HYBRID
    alpha: float = 14.0
    beta: float = 24.0

    label: str = "custom"

    def __init__(
        self,
        ppn: int | None = None,
        binding: BindingPolicy = BindingPolicy.BIND_TO_SOCKET,
        comm: CommConfig | None = None,
        kernel: str | None = None,
        kernel_chunk: int = 2,
        degree_balanced: bool = False,
        omp_dynamic: bool = True,
        mode: TraversalMode = TraversalMode.HYBRID,
        alpha: float = 14.0,
        beta: float = 24.0,
        label: str = "custom",
        *,
        share_in_queue: bool | None = None,
        share_all: bool | None = None,
        parallel_allgather: bool | None = None,
        granularity: int | None = None,
        use_summary: bool | None = None,
    ) -> None:
        """Build a config; the old flat comm kwargs are rejected.

        ``comm`` is the single source of communication settings.  The
        keyword-only tail still *names* the pre-PR-3 flat kwargs so
        stale call sites fail with a :class:`ConfigError` carrying the
        exact ``comm=CommConfig(...)`` migration hint, rather than an
        opaque ``TypeError`` (they warned as deprecated for several
        releases; the serving layer's config-keyed caches need one
        canonical spelling per configuration).
        """
        legacy = {
            name: value
            for name, value in (
                ("share_in_queue", share_in_queue),
                ("share_all", share_all),
                ("parallel_allgather", parallel_allgather),
                ("granularity", granularity),
                ("use_summary", use_summary),
            )
            if value is not None
        }
        if legacy:
            try:
                hint = f"; the equivalent is comm={_comm_from_legacy(legacy)!r}"
            except ConfigError:
                # The legacy combination was itself invalid — no
                # equivalent exists; the migration pointer suffices.
                hint = ""
            raise ConfigError(
                f"BFSConfig({', '.join(f'{k}=...' for k in sorted(legacy))}) "
                "is no longer supported; pass comm=CommConfig(...) instead "
                f"(see docs/COMMUNICATION.md for the mapping){hint}"
            )
        if comm is None:
            comm = CommConfig()
        object.__setattr__(self, "ppn", ppn)
        object.__setattr__(self, "binding", binding)
        object.__setattr__(self, "comm", comm)
        object.__setattr__(self, "kernel", kernel)
        object.__setattr__(self, "kernel_chunk", kernel_chunk)
        object.__setattr__(self, "degree_balanced", degree_balanced)
        object.__setattr__(self, "omp_dynamic", omp_dynamic)
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "beta", beta)
        object.__setattr__(self, "label", label)
        self._validate()

    def _validate(self) -> None:
        if self.ppn is not None and self.ppn < 1:
            raise ConfigError("ppn must be positive")
        if not isinstance(self.comm, CommConfig):
            raise ConfigError("comm must be a CommConfig")
        if self.kernel_chunk < 1:
            raise ConfigError("kernel_chunk must be >= 1")
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError("alpha/beta must be positive")

    # ---- comm conveniences ---------------------------------------------------
    # Read-only views over ``comm`` so call sites (and the paper's
    # vocabulary) keep working; the settings themselves live on the
    # CommConfig only.

    @property
    def share_in_queue(self) -> bool:
        """True when in_queue is node-shared (``comm.sharing``)."""
        return self.comm.shares_in_queue

    @property
    def share_all(self) -> bool:
        """True under the 'Share all' variant (``comm.sharing``)."""
        return self.comm.shares_everything

    @property
    def parallel_allgather(self) -> bool:
        """Fig. 7 parallel subgroup allgather (``comm.parallel_allgather``)."""
        return self.comm.parallel_allgather

    @property
    def granularity(self) -> int:
        """Summary granularity (``comm.summary_granularity``)."""
        return self.comm.summary_granularity

    @property
    def use_summary(self) -> bool:
        """Whether the in_queue summary exists (``comm.use_summary``)."""
        return self.comm.use_summary

    @property
    def shares_in_queue(self) -> bool:
        """True when in_queue lives in node-shared memory."""
        return self.comm.shares_in_queue

    @property
    def shares_everything(self) -> bool:
        """True when out_queue and summaries are shared too."""
        return self.comm.shares_everything

    def resolve_ppn(self, cluster: ClusterSpec) -> int:
        """Processes per node (defaults to one per socket)."""
        return cluster.node.sockets if self.ppn is None else self.ppn

    def in_queue_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm for in_queue (``comm.in_queue_algorithm``)."""
        return self.comm.in_queue_algorithm()

    def summary_algorithm(self) -> AllgatherAlgorithm:
        """Allgather algorithm for the summary (``comm.summary_algorithm``)."""
        return self.comm.summary_algorithm()

    def in_queue_placement(self, private: Placement) -> Placement:
        """Memory placement of in_queue under this configuration."""
        return self.comm.in_queue_placement(private)

    def summary_placement(self, private: Placement) -> Placement:
        """Memory placement of the summary under this configuration."""
        return self.comm.summary_placement(private)

    def named(self, label: str) -> "BFSConfig":
        """Copy of this configuration with a display label."""
        return replace(self, label=label)

    # ---- paper presets --------------------------------------------------------

    @classmethod
    def original_ppn1(cls, binding: BindingPolicy = BindingPolicy.INTERLEAVE):
        """'Original.ppn=1': one process per node, interleaved memory."""
        return cls(ppn=1, binding=binding, label="Original.ppn=1")

    @classmethod
    def original_ppn8(cls):
        """'Original.ppn=8': one process per socket, bound."""
        return cls(label="Original.ppn=8")

    @classmethod
    def share_in_queue_variant(cls):
        """'Share in_queue': node-shared in_queue (no broadcast step)."""
        return cls(comm=CommConfig.shared_in_queue(), label="Share in_queue")

    @classmethod
    def share_all_variant(cls):
        """'Share all': out_queue and summaries shared too (no gather)."""
        return cls(comm=CommConfig.shared_all(), label="Share all")

    @classmethod
    def par_allgather_variant(cls):
        """'Par allgather': the Fig. 7 parallel-subgroup allgather."""
        return cls(comm=CommConfig.parallel(), label="Par allgather")

    @classmethod
    def granularity_variant(cls, granularity: int = 256):
        """The full stack with a chosen summary granularity."""
        return cls(
            comm=CommConfig.parallel(summary_granularity=granularity),
            label=f"Granularity={granularity}",
        )


def paper_variants(best_granularity: int = 256) -> dict[str, BFSConfig]:
    """The Fig. 9 optimization stack, in order."""
    return {
        "Original.ppn=1": BFSConfig.original_ppn1(),
        "Original.ppn=8": BFSConfig.original_ppn8(),
        "Share in_queue": BFSConfig.share_in_queue_variant(),
        "Share all": BFSConfig.share_all_variant(),
        "Par allgather": BFSConfig.par_allgather_variant(),
        "Granularity": BFSConfig.granularity_variant(best_granularity),
    }
