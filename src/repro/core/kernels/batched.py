"""Batched (multi-source) bottom-up lane scan.

One scan pass over the unvisited vertices serves up to 64 BFS sources
at once: every per-vertex structure of the sequential scan — "is this
vertex in the frontier", "is this vertex still unvisited", "is this
summary block non-empty" — generalizes from one bit to one ``uint64``
*lane word* whose bit ``j`` answers the question for batch lane ``j``
(the natural extension of :mod:`repro.core.bitmap`).

The scan gathers each candidate's adjacency **once** and answers all
lanes from the gathered neighbours, which is where the batching win
comes from: the expensive scattered loads (CSR targets, frontier words)
are amortized over the whole batch while the per-lane work is cheap
dense bit arithmetic.

Accounting is *windowing-independent* and therefore bit-identical to
the sequential kernels regardless of the chunk schedule:

* ``examined_edges`` for (vertex ``v``, lane ``j``) is the position of
  ``v``'s first lane-``j`` frontier neighbour (inclusive), or ``deg(v)``
  when there is none — exactly the sequential early-exit count;
* ``inqueue_reads`` counts the examined prefix positions whose summary
  block is non-empty *for that lane* (Section II.B.2's filter), or
  equals ``examined_edges`` when the summary is disabled;
* each discovered vertex's parent is its first lane-``j`` frontier
  neighbour, and discoveries are reported in ascending local-id order
  per lane — the sequential bottom-up discovery order.

Like the sequential kernels, the chunked schedule (width doubling with
early retirement) only changes how much adjacency is materialized per
round, never the counts.

The scan can cover many ranks in one call: pass ``groups`` (the owning
rank of each row) and the per-lane counts come back broken down per
rank, shaped ``(num_groups, 64)``.  Because rank partitions are
contiguous ascending vertex ranges, discoveries sorted by (lane, vertex
id) are already in the sequential rank-major discovery order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LaneScanResult", "lane_scan", "pack_lanes", "MAX_LANES"]

#: Lanes per batch — one bit per source in a lane word.
MAX_LANES = 64


@dataclass
class LaneScanResult:
    """Outcome of one batched bottom-up scan.

    The count arrays are shaped ``(num_groups, lane_capacity)`` — one
    row per rank group (a single row when the scan covered one rank),
    one column per bit of the packed lane words; unused lanes stay
    zero.  Discovery triples are sorted by (lane, local id),
    so one ``searchsorted`` on ``disc_lane`` yields each lane's slice in
    the sequential (ascending local id) discovery order.
    """

    candidates: np.ndarray  # int64[num_groups, lane_capacity]
    examined_edges: np.ndarray  # int64[num_groups, lane_capacity]
    inqueue_reads: np.ndarray  # int64[num_groups, lane_capacity]
    disc_lane: np.ndarray  # int64[D]
    disc_local: np.ndarray  # int64[D]
    disc_parent: np.ndarray  # int64[D] (global parent ids)
    # Diagnostics (never priced), mirroring BottomUpResult's.
    gathered_edges: int = 0
    chunk_rounds: int = 0


def _lane_dtype(num_lanes: int) -> np.dtype:
    """Smallest unsigned word type with at least ``num_lanes`` bits.

    Narrower lane words halve (or better) the dominant per-edge bit
    traffic of the scan whenever the batch is small.
    """
    for dt in (np.uint8, np.uint16, np.uint32, np.uint64):
        if num_lanes <= np.dtype(dt).itemsize * 8:
            return np.dtype(dt)
    raise ValueError(f"at most {MAX_LANES} lanes, got {num_lanes}")


def pack_lanes(bools: np.ndarray) -> np.ndarray:
    """Pack a ``(num_lanes, n)`` boolean matrix into lane words — bit
    ``j`` of word ``i`` is ``bools[j, i]``.  The word dtype is the
    smallest unsigned type that holds ``num_lanes`` bits."""
    num_lanes, n = bools.shape
    dt = _lane_dtype(num_lanes)
    nbits = dt.itemsize * 8
    padded = np.zeros((n, nbits), dtype=np.uint8)
    padded[:, :num_lanes] = bools.T
    return (
        np.packbits(padded, axis=1, bitorder="little")
        .reshape(n, dt.itemsize)
        .view(dt)[:, 0]
    )


def _unpack_lanes(words: np.ndarray) -> np.ndarray:
    """Expand lane words into bit planes: ``(..., lane_bits)`` uint8."""
    contiguous = np.ascontiguousarray(words)
    itemsize = words.dtype.itemsize
    as_bytes = contiguous.view(np.uint8).reshape(words.shape + (itemsize,))
    return np.unpackbits(as_bytes, axis=-1, bitorder="little")


def _summary_reads(
    summary_lanes: np.ndarray,
    granularity: int,
    targets: np.ndarray,
    starts: np.ndarray,
    grp: np.ndarray,
    gbounds: np.ndarray,
    ex_len: np.ndarray,
    num_groups: int,
    cell_chunk: int = 1 << 18,
) -> np.ndarray:
    """Summary-filtered ``inqueue_reads`` from examined-prefix lengths.

    A lane's reads are the positions in its examined prefix whose
    summary block is non-empty *for that lane* — a pure function of the
    final prefix lengths, so it is computed here in one flattened pass
    instead of inside every chunk round: gather each row's longest
    per-lane prefix once, unpack the summary lane words, and mask each
    lane to its own prefix.  ``cell_chunk`` bounds the temporaries.
    """
    nbits = ex_len.shape[1]
    reads = np.zeros((num_groups, nbits), dtype=np.int64)
    maxex = ex_len.max(axis=1).astype(np.int64)  # (R,)
    nz = np.flatnonzero(maxex)
    if nz.size == 0:
        return reads

    lens = maxex[nz]
    row_starts = starts[nz]
    exs = ex_len[nz]
    seg = np.concatenate(([np.int64(0)], np.cumsum(lens)))
    total = int(seg[-1])
    # grp is non-decreasing, so each group is a contiguous cell range.
    rb = np.searchsorted(grp[nz], np.arange(num_groups + 1))
    cell_bounds = seg[rb]

    for lo in range(0, total, cell_chunk):
        hi = min(lo + cell_chunk, total)
        r0 = int(np.searchsorted(seg, lo, side="right")) - 1
        r1 = int(np.searchsorted(seg, hi, side="left"))
        rr = np.arange(r0, r1)
        counts = np.minimum(seg[rr + 1], hi) - np.maximum(seg[rr], lo)
        crow = np.repeat(rr, counts)
        rel = np.arange(lo, hi, dtype=np.int64) - seg[crow]
        sw = summary_lanes[targets[row_starts[crow] + rel] // granularity]
        contrib = _unpack_lanes(sw) & (rel[:, None] < exs[crow])
        for g in range(num_groups):
            a = int(max(cell_bounds[g], lo)) - lo
            b = int(min(cell_bounds[g + 1], hi)) - lo
            if a < b:
                reads[g] += contrib[a:b].sum(axis=0, dtype=np.int64)
    return reads


def _empty_result(num_groups: int, nbits: int) -> LaneScanResult:
    zeros = np.zeros((num_groups, nbits), dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    return LaneScanResult(
        candidates=zeros.copy(),
        examined_edges=zeros.copy(),
        inqueue_reads=zeros.copy(),
        disc_lane=empty,
        disc_local=empty.copy(),
        disc_parent=empty.copy(),
    )


def lane_scan(
    lg,
    active_lanes: np.ndarray,
    inq_lanes: np.ndarray,
    summary_lanes: np.ndarray | None,
    granularity: int,
    *,
    initial_width: int | None = 2,
    max_width: int = 1 << 16,
    groups: np.ndarray | None = None,
    num_groups: int = 1,
) -> LaneScanResult:
    """Scan candidates against up to 64 frontier lanes.

    ``active_lanes`` (one lane word per local vertex) marks which lanes
    still seek each vertex; ``inq_lanes`` (one lane word per *global*
    vertex, same dtype) marks the lanes whose frontier contains it;
    ``summary_lanes`` marks, per summary block of ``granularity``
    vertices, the lanes whose block is non-empty (``None`` when the
    summary structure is disabled).  ``initial_width=None`` materializes
    every candidate's full adjacency in one round (the reference
    backend's strategy); an integer starts the active-set width-doubling
    schedule there.  ``groups`` assigns each local vertex a rank group
    and must be non-decreasing in vertex id (rank partitions are
    contiguous ranges); counts come back shaped
    ``(num_groups, lane_capacity)``.
    """
    lane_dt = active_lanes.dtype
    nbits = lane_dt.itemsize * 8
    lane_one = lane_dt.type(1)
    rows = np.flatnonzero(active_lanes)
    if rows.size == 0:
        return _empty_result(num_groups, nbits)

    act = active_lanes[rows].copy()
    act_init = act.copy()
    grp = (
        groups[rows].astype(np.int64)
        if groups is not None
        else np.zeros(rows.size, dtype=np.int64)
    )
    abits = _unpack_lanes(act)  # (R, nbits)
    # grp is non-decreasing, so each group is a contiguous row range;
    # plain slice sums beat both bincount and reduceat here.
    gbounds = np.searchsorted(grp, np.arange(num_groups + 1))
    candidates = np.zeros((num_groups, nbits), dtype=np.int64)
    for g in range(num_groups):
        a, b = int(gbounds[g]), int(gbounds[g + 1])
        if a < b:
            candidates[g] = abits[a:b].sum(axis=0, dtype=np.int64)

    offsets = lg.offsets
    targets = lg.targets
    starts = offsets[rows]
    degs = (offsets[rows + 1] - starts).astype(np.int64)
    last = np.maximum(starts + degs - 1, starts)
    rem = degs.copy()
    done = np.zeros(rows.size, dtype=np.int64)

    examined = np.zeros((num_groups, nbits), dtype=np.int64)
    reads = np.zeros((num_groups, nbits), dtype=np.int64)
    use_summary = summary_lanes is not None
    if use_summary:
        # Examined-prefix length per (row, lane); filled at hits and at
        # adjacency exhaustion, consumed by the post-pass that computes
        # the summary-filtered read counts outside the chunk loop.
        # int32 is safe: a prefix is bounded by the row degree.
        ex_len = np.zeros((rows.size, nbits), dtype=np.int32)

    # Per-(row, lane) winning parent, written once at each hit.  int32
    # suffices whenever vertex ids fit it (they are global CSR ids).
    par_dt = np.int64 if offsets.size - 1 > np.iinfo(np.int32).max else np.int32
    parent_mat = np.empty((rows.size, nbits), dtype=par_dt)

    gathered = 0
    rounds = 0
    live = np.flatnonzero((act != 0) & (rem > 0))
    width = initial_width
    while live.size:
        rounds += 1
        if width is None:
            w = int(rem[live].max())
        else:
            w = int(min(width, int(rem[live].max())))
        col = np.arange(w, dtype=np.int64)
        pos = starts[live, None] + done[live, None] + col
        np.minimum(pos, last[live, None], out=pos)
        nb = targets[pos]  # (L, w) global neighbour ids
        valid = col < rem[live, None]
        gathered += int(np.minimum(rem[live], w).sum())

        nb_inq = inq_lanes[nb]
        nb_inq &= act[live, None]  # only lanes still seeking this row
        nb_inq[~valid] = 0
        # Which (row, lane) pairs hit anywhere in the window — an OR over
        # the window's lane words, unpacked only for rows that hit (never
        # the full (L, w, 64) bit planes; hits are sparse).
        hit_words = np.bitwise_or.reduce(nb_inq, axis=1)  # (L,) lane words

        hrows = np.flatnonzero(hit_words)
        if hrows.size:
            hr, jj = np.nonzero(_unpack_lanes(hit_words[hrows]))
            rr = hrows[hr]
            # First hit column per hit pair, from the (H, w) word gather.
            lane_bit = (
                (nb_inq[rr] >> jj.astype(lane_dt)[:, None]) & lane_one
            ).astype(np.uint8)
            fh = lane_bit.argmax(axis=1)
            gl = live[rr]  # row-array indices
            prefix = done[gl] + fh + 1
            # bincount beats ufunc.at for the scatter-adds: float64
            # weights are exact here (prefixes are far below 2**53).
            examined += np.bincount(
                grp[gl] * nbits + jj,
                weights=prefix.astype(np.float64),
                minlength=num_groups * nbits,
            ).reshape(num_groups, nbits).astype(np.int64)
            if use_summary:
                ex_len[gl, jj] = prefix.astype(np.int32)
            parent_mat[gl, jj] = nb[rr, fh].astype(par_dt)
            # Retire each hit lane.  A (row, lane) pair occurs at most
            # once per round, so the OR of a row's retired lane bits is
            # their *sum*; split at bit 32 keeps the float64 sums exact.
            lo_mask = jj < 32
            retire = np.bincount(
                gl[lo_mask],
                weights=np.ldexp(1.0, jj[lo_mask].astype(np.int32)),
                minlength=act.size,
            ).astype(np.uint64)
            if nbits > 32 and not lo_mask.all():
                hi = ~lo_mask
                retire |= np.bincount(
                    gl[hi],
                    weights=np.ldexp(1.0, (jj[hi] - 32).astype(np.int32)),
                    minlength=act.size,
                ).astype(np.uint64) << np.uint64(32)
            act &= ~retire.astype(lane_dt)

        step = np.minimum(rem[live], w)
        done[live] += step
        rem[live] -= step
        live = live[(act[live] != 0) & (rem[live] > 0)]
        if width is not None:
            width = min(width * 2, max_width)

    # Lanes that exhausted a row's adjacency without a hit examined the
    # full degree.
    left = np.flatnonzero(act != 0)
    if left.size:
        lbits = _unpack_lanes(act[left]).astype(bool)
        lr, lj = np.nonzero(lbits)
        np.add.at(examined, (grp[left[lr]], lj), degs[left][lr])
        if use_summary:
            ex_len[left[lr], lj] = degs[left][lr].astype(np.int32)

    if use_summary:
        reads = _summary_reads(
            summary_lanes, granularity, targets, starts, grp, gbounds,
            ex_len, num_groups,
        )
    else:
        # Without the summary filter every examined edge reads in_queue.
        reads = examined.copy()

    # Hits are exactly the retired lane bits.  Enumerating them from the
    # transposed bit planes yields (lane, ascending row) order directly —
    # the sequential per-lane discovery order — with no sort at all.
    hitw = act_init & ~act
    if hitw.any():
        planes = np.ascontiguousarray(_unpack_lanes(hitw).T)  # (nbits, R)
        jl, rl = np.nonzero(planes)
        disc_lane = jl.astype(np.int64)
        disc_local = rows[rl]
        disc_parent = parent_mat[rl, jl].astype(np.int64)
    else:
        disc_local = np.zeros(0, dtype=np.int64)
        disc_lane = np.zeros(0, dtype=np.int64)
        disc_parent = np.zeros(0, dtype=np.int64)

    return LaneScanResult(
        candidates=candidates,
        examined_edges=examined,
        inqueue_reads=reads,
        disc_lane=disc_lane,
        disc_local=disc_local,
        disc_parent=disc_parent,
        gathered_edges=gathered,
        chunk_rounds=rounds,
    )
