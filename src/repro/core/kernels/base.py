"""Kernel backend contract and shared machinery of the BFS compute path.

A *kernel backend* supplies the two per-rank compute kernels the engine
runs every level: the top-down frontier expansion and the bottom-up
frontier scan.  Backends are interchangeable implementations of the same
algorithm — every backend must reproduce the paper's accounting
**bit-identically** (``examined_edges`` and ``inqueue_reads`` per
Section II.B.2, the parent of every discovered vertex, and the discovery
order within a level), because the cost model and the Fig. 16 experiment
consume those counts.  What backends may differ in is how much temporary
memory and how many bitmap probes they spend producing them.

This module holds the contract (:class:`KernelBackend`), the result
dataclasses both step modules re-export, the backend registry, and the
shared top-down expansion (identical for all backends — the paper's
optimizations only concern the bottom-up phase).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.errors import ConfigError
from repro.obs.log import get_logger
from repro.util.segments import gather_adjacency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.bitmap import Bitmap, SummaryBitmap
    from repro.core.config import BFSConfig
    from repro.core.kernels.batched import LaneScanResult
    from repro.core.state import RankState
    from repro.graph.partition import LocalGraph, Partition1D

__all__ = [
    "BottomUpResult",
    "TopDownSend",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "bucket_by_owner",
    "dedup_first_parent",
    "DENSE_DEDUP_FRACTION",
    "FALLBACK_BACKEND",
]


@dataclass
class BottomUpResult:
    """Outcome of one rank's bottom-up scan.

    The first four fields are the paper's accounting and must be
    backend-invariant; the last two are backend diagnostics (how much
    work the kernel *materialized* to produce those counts) and are never
    priced.
    """

    new_local: np.ndarray  # newly discovered local vertex ids
    candidates: int
    examined_edges: int
    inqueue_reads: int
    # Diagnostics: edges actually gathered/tested by the kernel and the
    # number of wavefront rounds it took.  The reference backend gathers
    # the full candidate adjacency in one round; the active-set backend
    # gathers roughly the examined prefix over a few rounds.
    gathered_edges: int = 0
    chunk_rounds: int = 0


@dataclass
class TopDownSend:
    """Outcome of one rank's top-down expansion."""

    # Per-destination-rank arrays of shape (k, 2): (child, parent) pairs.
    outbox: list[np.ndarray]
    frontier_size: int
    examined_edges: int


# Switch the (child, parent) dedup to the linear scatter path once the
# pair count reaches 1/DENSE_DEDUP_FRACTION of the vertex space; below
# that, zeroing two vertex-sized arrays costs more than sorting the few
# pairs.
DENSE_DEDUP_FRACTION = 8


def _dedup_sorted(
    children: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort dedup: ``O(E log E)``, no vertex-sized temporaries."""
    order = np.argsort(children, kind="stable")
    children = children[order]
    parents = parents[order]
    keep = np.empty(children.size, dtype=bool)
    keep[0] = True
    np.not_equal(children[1:], children[:-1], out=keep[1:])
    return children[keep], parents[keep]


def _dedup_dense(
    children: np.ndarray, parents: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter dedup: ``O(E + n)`` with two vertex-sized temporaries.

    Scattering the pairs in *reverse* order makes the first occurrence's
    parent the last (surviving) write, matching the stable-sort path
    exactly; ``flatnonzero`` then yields the children ascending, which is
    the owner-bucketed order the contiguous 1-D partition needs.
    """
    present = np.zeros(num_vertices, dtype=bool)
    present[children] = True
    first_parent = np.empty(num_vertices, dtype=np.int64)
    first_parent[children[::-1]] = parents[::-1]
    kept = np.flatnonzero(present)
    return kept, first_parent[kept]


def dedup_first_parent(
    children: np.ndarray, parents: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """One (child, parent) pair per distinct child, children ascending.

    For duplicate children the *first* occurrence's parent wins, as in
    the reference code's coalescing send buffers.  Dense inputs (mid-BFS
    top-down levels, where the pair count rivals ``2E``) take a linear
    scatter path instead of the historic ``O(E log E)`` stable argsort;
    both paths produce bit-identical output, so the choice is purely a
    performance heuristic.
    """
    if children.size == 0:
        return children, parents
    if children.size * DENSE_DEDUP_FRACTION >= num_vertices:
        return _dedup_dense(children, parents, num_vertices)
    return _dedup_sorted(children, parents)


class KernelBackend(abc.ABC):
    """One interchangeable implementation of the per-rank BFS kernels.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`bottom_up_scan`.  The top-down expansion is shared: the
    paper's kernel-level optimizations all concern the bottom-up phase,
    so differing there would only risk divergence.
    """

    name: ClassVar[str]

    @classmethod
    def from_config(cls, config: "BFSConfig | None") -> "KernelBackend":
        """Instance configured from a :class:`BFSConfig` (default: no knobs)."""
        return cls()

    @classmethod
    def availability(cls) -> tuple[bool, str | None]:
        """Whether this backend can actually run in this process.

        ``(True, None)`` when usable — the default, since pure-numpy
        backends always are.  Backends with external requirements (a C
        toolchain, say) return ``(False, reason)`` instead, and
        :func:`get_backend` then falls back to
        :data:`FALLBACK_BACKEND` with a structured warning rather than
        failing the run.
        """
        return (True, None)

    @abc.abstractmethod
    def bottom_up_scan(
        self,
        state: "RankState",
        in_queue: "Bitmap",
        summary: "SummaryBitmap | None",
    ) -> BottomUpResult:
        """Scan unvisited local vertices against the frontier bitmap.

        Must discover exactly the candidates with a frontier neighbour,
        assign each its *first* frontier neighbour as parent, and return
        the Section II.B.2 counts bit-identically to the reference
        backend.
        """

    def bottom_up_scan_batch(
        self,
        local: "LocalGraph",
        active_lanes: np.ndarray,
        inq_lanes: np.ndarray,
        summary_lanes: np.ndarray | None,
        granularity: int,
        groups: np.ndarray | None = None,
        num_groups: int = 1,
    ) -> "LaneScanResult":
        """Batched bottom-up scan: one pass serving up to 64 sources.

        ``local`` may be a per-rank :class:`LocalGraph` or any CSR view
        with ``offsets``/``targets`` (the engine passes the whole graph
        and splits the counts per rank via ``groups``).  Lane semantics
        and the bit-identity contract live in
        :mod:`repro.core.kernels.batched`.  The default implementation
        is the pure-numpy active-set lane scan, so backends without a
        native batched kernel (e.g. the compiled ``cnative`` backend)
        transparently fall back to it — accounting stays bit-identical
        because the counts are chunk-schedule-independent.
        """
        from repro.core.kernels.batched import lane_scan

        return lane_scan(
            local,
            active_lanes,
            inq_lanes,
            summary_lanes,
            granularity,
            initial_width=2,
            max_width=1 << 16,
            groups=groups,
            num_groups=num_groups,
        )

    def top_down_expand(
        self,
        state: "RankState",
        frontier_local: np.ndarray,
        partition: "Partition1D",
    ) -> TopDownSend:
        """Expand the local frontier into per-owner (child, parent) pairs.

        Pairs are deduplicated per child within the message (first parent
        encountered wins, children ascending per destination), as the
        reference code's per-destination coalescing buffers do.
        """
        lg = state.local
        num_parts = partition.num_parts
        frontier_local = np.asarray(frontier_local, dtype=np.int64)

        if frontier_local.size == 0:
            empty = [np.zeros((0, 2), dtype=np.int64) for _ in range(num_parts)]
            return TopDownSend(outbox=empty, frontier_size=0, examined_edges=0)

        gather = gather_adjacency(lg.offsets, frontier_local)
        total = int(gather.seg_offsets[-1])
        if total == 0:
            empty = [np.zeros((0, 2), dtype=np.int64) for _ in range(num_parts)]
            return TopDownSend(
                outbox=empty,
                frontier_size=int(frontier_local.size),
                examined_edges=0,
            )

        children = lg.targets[gather.pos]
        parents = np.repeat(frontier_local + lg.lo, gather.lens)
        children, parents = dedup_first_parent(
            children, parents, partition.num_vertices
        )
        return TopDownSend(
            outbox=bucket_by_owner(children, parents, partition),
            frontier_size=int(frontier_local.size),
            examined_edges=total,
        )


def bucket_by_owner(
    children: np.ndarray, parents: np.ndarray, partition: "Partition1D"
) -> list[np.ndarray]:
    """Split ascending (child, parent) pairs into per-owner ``(k, 2)``
    arrays, one per destination rank.

    ``children`` must be sorted ascending (the dedup helpers and the
    cnative expand both guarantee it), so owners are non-decreasing and
    a single ``searchsorted`` finds every destination's slice.
    """
    num_parts = partition.num_parts
    owners = partition.owner(children)
    outbox: list[np.ndarray] = []
    bounds = np.searchsorted(owners, np.arange(num_parts + 1))
    for dest in range(num_parts):
        lo, hi = bounds[dest], bounds[dest + 1]
        pairs = np.stack([children[lo:hi], parents[lo:hi]], axis=1)
        outbox.append(np.ascontiguousarray(pairs))
    return outbox


_REGISTRY: dict[str, type[KernelBackend]] = {}
_SHARED: dict[str, KernelBackend] = {}

#: Where resolution lands when a selected backend is unavailable.
FALLBACK_BACKEND = "activeset"

#: Backends already warned about this process (warn once, not per call).
_WARNED: set[str] = set()


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Class decorator: register a backend under its ``name`` attribute."""
    if not getattr(cls, "name", None):
        raise ConfigError("kernel backend classes must set a non-empty name")
    _REGISTRY[cls.name] = cls
    _SHARED.pop(cls.name, None)
    return cls


def available_backends(detail: bool = False):
    """Registered kernel backends, sorted by name.

    By default a tuple of names — every *registered* backend, usable or
    not, so benchmark matrices and CLI validation see the full set.
    With ``detail=True`` a ``{name: (available, reason)}`` mapping
    instead, where ``reason`` is None for usable backends and the
    human-readable unavailability cause otherwise (probing may be as
    expensive as one compiler run for the cnative backend, memoized per
    process).
    """
    if not detail:
        return tuple(sorted(_REGISTRY))
    return {
        name: cls.availability() for name, cls in sorted(_REGISTRY.items())
    }


def get_backend(name: str, config: "BFSConfig | None" = None) -> KernelBackend:
    """Backend instance by registry name.

    Without a ``config`` the default-configured instance is shared across
    callers (backends are stateless between calls); with one, a fresh
    instance is built via :meth:`KernelBackend.from_config`.

    An *unknown* name raises :class:`ConfigError`; a registered backend
    that reports itself unavailable (no toolchain, failed build) instead
    degrades to :data:`FALLBACK_BACKEND` with a structured ``REPRO_LOG``
    warning — once per process per backend — so pinning
    ``REPRO_KERNEL=cnative`` never breaks a run on a machine without a
    compiler.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(set BFSConfig.kernel or $REPRO_KERNEL)"
        )
    ok, reason = cls.availability()
    if not ok:
        if name == FALLBACK_BACKEND:  # pragma: no cover - always available
            raise ConfigError(
                f"fallback kernel backend {name!r} unavailable: {reason}"
            )
        if name not in _WARNED:
            _WARNED.add(name)
            get_logger("kernels").warning(
                "kernel backend unavailable; falling back",
                extra={
                    "backend": name,
                    "fallback": FALLBACK_BACKEND,
                    "reason": reason,
                },
            )
        return get_backend(FALLBACK_BACKEND, config=config)
    if config is not None:
        return cls.from_config(config)
    if name not in _SHARED:
        _SHARED[name] = cls()
    return _SHARED[name]
