"""The native compiled (`cnative`) kernel backend.

A thin ctypes wrapper over ``bfs_kernels.c`` (compiled and cached by
:mod:`repro.core.kernels.cnative.build`): the bottom-up scan runs the
*true* per-vertex early-exit loop — summary-bitmap probe, first-hit
break, zero temporaries — and the top-down expand scatters
first-parent-wins pairs into dense scratch, both directly on the numpy
buffers (no copies).  Accounting is bit-identical to the reference
backend; see docs/PERFORMANCE.md for the algorithm sketch and the
build/cache/fallback semantics.

The class always registers so the name shows up in
``available_backends()`` and the benchmark matrix; whether it can
actually *run* is a separate, lazily-probed question
(:meth:`CNativeBackend.availability`), and resolution falls back to
``activeset`` with a structured warning when the answer is no.
"""

from __future__ import annotations

from ctypes import POINTER, c_uint8

import numpy as np

from repro.core.kernels.base import (
    BottomUpResult,
    KernelBackend,
    TopDownSend,
    bucket_by_owner,
    register_backend,
)
from repro.core.kernels.cnative import build
from repro.core.kernels.cnative.build import _i64, _u64

__all__ = ["CNativeBackend", "build"]


@register_backend
class CNativeBackend(KernelBackend):
    """Compiled C kernels behind ctypes — fastest backend when a
    toolchain is available, gracefully absent when not."""

    name = "cnative"

    @classmethod
    def availability(cls) -> tuple[bool, str | None]:
        """Delegate to the build machinery's (memoized) probe."""
        return build.availability()

    def bottom_up_scan(self, state, in_queue, summary) -> BottomUpResult:
        """Scan with the native fused loop (one C call per level).

        Candidate selection, the early-exit walk and the discovery
        writes all happen inside the C pass, directly on
        ``state.parent`` (zero-copy); only the ``unexplored_degree``
        bookkeeping — returned as a counter — is applied here.
        """
        lib = build.load_library()
        lg = state.local
        nlocal = int(lg.num_local_vertices)

        # Keep every buffer referenced in a local for the call's duration.
        offsets = np.ascontiguousarray(lg.offsets, dtype=np.int64)
        targets = np.ascontiguousarray(lg.targets, dtype=np.int64)
        inq_words = np.ascontiguousarray(in_queue.words, dtype=np.uint64)
        parent = state.parent
        assert parent.dtype == np.int64 and parent.flags.c_contiguous
        if summary is None:
            summary_words, summary_ptr, granularity = None, None, 0
        else:
            summary_words = np.ascontiguousarray(
                summary.words, dtype=np.uint64
            )
            summary_ptr = _u64(summary_words)
            granularity = int(summary.granularity)
        out_new = np.empty(nlocal, dtype=np.int64)
        counts = np.zeros(4, dtype=np.int64)

        nfound = lib.repro_bu_scan(
            nlocal, _i64(offsets), _i64(targets),
            _u64(inq_words), summary_ptr, granularity,
            _i64(parent), _i64(out_new), _i64(counts),
        )
        state.unexplored_degree -= int(counts[3])

        return BottomUpResult(
            new_local=out_new[:nfound],
            candidates=int(counts[0]),
            examined_edges=int(counts[1]),
            inqueue_reads=int(counts[2]),
            # The native loop materializes nothing: it reads the CSR in
            # place and retires candidates inline, in one pass.
            gathered_edges=0,
            chunk_rounds=1,
        )

    def top_down_expand(self, state, frontier_local, partition) -> TopDownSend:
        """Expand with the native first-parent-wins scatter, then bucket
        the ascending (child, parent) pairs by owner on the Python side."""
        lib = build.load_library()
        lg = state.local
        frontier_local = np.ascontiguousarray(frontier_local, dtype=np.int64)
        num_parts = partition.num_parts
        num_vertices = int(partition.num_vertices)

        offsets = np.ascontiguousarray(lg.offsets, dtype=np.int64)
        total = int(
            (offsets[frontier_local + 1] - offsets[frontier_local]).sum()
        ) if frontier_local.size else 0
        if total == 0:
            empty = [np.zeros((0, 2), dtype=np.int64) for _ in range(num_parts)]
            return TopDownSend(
                outbox=empty,
                frontier_size=int(frontier_local.size),
                examined_edges=0,
            )

        targets = np.ascontiguousarray(lg.targets, dtype=np.int64)
        present = np.zeros(num_vertices, dtype=np.uint8)
        first_parent = np.empty(num_vertices, dtype=np.int64)
        cap = min(num_vertices, total)
        out_children = np.empty(cap, dtype=np.int64)
        out_parents = np.empty(cap, dtype=np.int64)

        k = lib.repro_td_expand(
            int(frontier_local.size), _i64(frontier_local), int(lg.lo),
            _i64(offsets), _i64(targets), num_vertices,
            present.ctypes.data_as(POINTER(c_uint8)), _i64(first_parent),
            _i64(out_children), _i64(out_parents),
        )

        return TopDownSend(
            outbox=bucket_by_owner(
                out_children[:k], out_parents[:k], partition
            ),
            frontier_size=int(frontier_local.size),
            examined_edges=total,
        )
