/* Native BFS kernels for the `cnative` backend.
 *
 * Compiled on first use by build.py (see that module for the cache and
 * fallback story) and called through ctypes with zero-copy numpy buffer
 * passing.  The contract is the same as every other kernel backend
 * (repro/core/kernels/base.py): reproduce the paper's Section II.B.2
 * accounting bit-identically to the reference backend.  What C buys is
 * the *true* per-vertex early exit — no chunked wavefronts, no
 * temporaries, just a scalar loop that stops at the first frontier hit.
 *
 * Conventions shared with the Python side:
 *   - vertex ids, CSR offsets and counters are int64;
 *   - bitmaps are little-endian-within-word uint64 arrays: bit i lives
 *     at word i>>6, position i&63 (util/bitops.py);
 *   - `offsets` is the rank-local CSR (rebased so offsets[0] == 0) and
 *     `targets` holds *global* neighbour ids, exactly as LocalGraph
 *     stores them;
 *   - a summary bit covers `granularity` base bits and is set iff any
 *     of them is set, so a zero summary bit proves an in_queue miss
 *     without reading the base bitmap (Section III.C).
 */

#include <stdint.h>

#define TEST_BIT(words, i) \
    (((words)[(uint64_t)(i) >> 6] >> ((uint64_t)(i) & 63u)) & 1u)

/* The bottom-up scan touches a fresh CSR row per candidate; the row
 * starts advance monotonically but with irregular stride, which
 * hardware prefetchers track poorly.  Software-prefetching a few
 * candidates ahead hides most of that DRAM latency. */
#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PREFETCH_READ(addr)
#endif
#define PREFETCH_AHEAD 32

/* Bottom-up scan over the whole local vertex range, discovery included.
 *
 * Candidate selection (parent < 0 and degree > 0 — exactly
 * RankState.unvisited_local), the early-exit adjacency walk, *and* the
 * state update are fused into one pass so the Python side does no
 * per-level O(n) work at all.  For each candidate (ascending local id)
 * the adjacency is walked in CSR order until the first neighbour whose
 * in_queue bit is set; that neighbour is written into parent[] and the
 * candidate retires.  Writing parent during the scan cannot perturb
 * later candidates: the walk only reads the frontier bitmaps, never
 * parent, and candidates are visited in ascending order exactly once.
 *
 * Accounting (identical to the reference backend): every edge of the
 * walked prefix counts as examined; an edge falls through to an
 * in_queue word read (inqueue_reads) only when there is no summary or
 * its summary block is non-empty — a zero summary block covers the
 * base bitmap, so skipping the read can never hide a hit.
 *
 * Outputs: out_new[k] = local id of the k-th discovery (ascending, the
 * discovery order), parent[out_new[k]] its global parent id,
 * out_counts = {candidates, examined_edges, inqueue_reads,
 * discovered_degree_sum} (the last maintains unexplored_degree).
 * Returns the number of discoveries.  out_new needs capacity nlocal.
 * summary_words may be NULL (granularity is then ignored).
 */
int64_t repro_bu_scan(
    int64_t nlocal,
    const int64_t *offsets,
    const int64_t *targets,
    const uint64_t *inq_words,
    const uint64_t *summary_words,
    int64_t granularity,
    int64_t *parent,
    int64_t *out_new,
    int64_t *out_counts)
{
    int64_t candidates = 0;
    int64_t examined = 0;
    int64_t reads = 0;
    int64_t nfound = 0;
    int64_t deg_sum = 0;

    /* Hoist the per-edge v / granularity: granularities are typically
     * powers of two (64, 256, ...), where a shift replaces the int64
     * division the compiler cannot strength-reduce for a runtime
     * divisor.  Non-power-of-two multiples of 64 keep the division. */
    int shift = -1;
    if (summary_words != 0) {
        int64_t g = granularity;
        int s = 0;
        while ((g & 1) == 0 && g > 1) {
            g >>= 1;
            s++;
        }
        if (g == 1)
            shift = s;
    }

    /* Pass 1: compact the candidate ids into out_new, branchlessly —
     * the visited pattern is effectively random mid-BFS, so a skip
     * branch here would mispredict tens of thousands of times.  The
     * scan pass below overwrites out_new in place with the discoveries;
     * that is safe because nfound can never pass the read cursor. */
    int64_t ncand = 0;
    for (int64_t u = 0; u < nlocal; u++) {
        out_new[ncand] = u;
        ncand += (parent[u] < 0) & (offsets[u + 1] > offsets[u]);
    }
    candidates = ncand;

    /* Pass 2: early-exit scan of each candidate's adjacency. */
    for (int64_t i = 0; i < ncand; i++) {
        if (i + PREFETCH_AHEAD < ncand)
            PREFETCH_READ(&targets[offsets[out_new[i + PREFETCH_AHEAD]]]);
        const int64_t u = out_new[i];
        const int64_t start = offsets[u];
        const int64_t end = offsets[u + 1];
        for (int64_t e = start; e < end; e++) {
            const int64_t v = targets[e];
            examined++;
            if (summary_words != 0) {
                const int64_t block =
                    shift >= 0 ? (v >> shift) : (v / granularity);
                if (!TEST_BIT(summary_words, block))
                    continue; /* empty block: proven miss, no read */
            }
            reads++;
            if (TEST_BIT(inq_words, v)) {
                parent[u] = v;
                out_new[nfound++] = u;
                deg_sum += end - start;
                break;
            }
        }
    }
    out_counts[0] = candidates;
    out_counts[1] = examined;
    out_counts[2] = reads;
    out_counts[3] = deg_sum;
    return nfound;
}

/* Top-down expansion: gather the frontier's (child, parent) pairs and
 * deduplicate to one pair per distinct child.
 *
 * The first occurrence's parent wins (frontier order, then CSR edge
 * order — the same stream order base.py's dedup_first_parent sees) and
 * children come out ascending, matching the _dedup_dense scatter path
 * bit-identically.  Owner bucketing stays on the Python side
 * (bucket_by_owner), since partition bounds can be irregular.
 *
 * present (zero-initialised) and first_parent are caller-provided
 * scratch of num_vertices entries; out_children/out_parents need
 * capacity min(num_vertices, total frontier degree).  Returns the
 * number of distinct children.
 */
int64_t repro_td_expand(
    int64_t nfront,
    const int64_t *frontier_local,
    int64_t lo,
    const int64_t *offsets,
    const int64_t *targets,
    int64_t num_vertices,
    uint8_t *present,
    int64_t *first_parent,
    int64_t *out_children,
    int64_t *out_parents)
{
    for (int64_t i = 0; i < nfront; i++) {
        const int64_t u = frontier_local[i];
        const int64_t parent = u + lo;
        const int64_t end = offsets[u + 1];
        for (int64_t e = offsets[u]; e < end; e++) {
            const int64_t v = targets[e];
            if (!present[v]) {
                present[v] = 1;
                first_parent[v] = parent;
            }
        }
    }

    int64_t k = 0;
    for (int64_t v = 0; v < num_vertices; v++) {
        if (present[v]) {
            out_children[k] = v;
            out_parents[k] = first_parent[v];
            k++;
        }
    }
    return k;
}
