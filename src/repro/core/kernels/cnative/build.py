"""Build-and-load machinery for the native (`cnative`) kernels.

The backend ships a small self-contained C source (``bfs_kernels.c``)
inside the package and compiles it on first use with whatever system
compiler is around:

1. ``$CC`` when set (taken verbatim — a broken ``CC`` means *no*
   toolchain, it is never silently ignored);
2. the compiler the interpreter was built with
   (``sysconfig.get_config_var("CC")``);
3. ``cc`` / ``gcc`` / ``clang`` on ``$PATH``.

The shared library is cached under ``~/.cache/repro/`` (override with
``$REPRO_NATIVE_CACHE``) keyed by a hash of the source, the compiler and
the flags, so a source edit or toolchain change rebuilds while repeat
runs just ``dlopen``.  A cache entry that fails to load (corrupted or
stale ``.so``) is deleted and rebuilt once rather than crashing.

Every failure mode — no compiler, compile error, unloadable library,
failed post-load smoke check — raises :class:`NativeBuildError` and is
remembered for the process, so :func:`availability` is cheap after the
first probe and the registry can fall back to ``activeset`` without
re-probing per call.  :func:`reset` clears the memo (tests use it to
exercise the probe under a manipulated environment).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import sysconfig
import tempfile
from ctypes import POINTER, c_int64, c_uint8, c_uint64
from pathlib import Path

import numpy as np

__all__ = [
    "CFLAGS",
    "NativeBuildError",
    "availability",
    "cache_dir",
    "find_compiler",
    "library_path",
    "load_library",
    "reset",
    "source_path",
]

#: Flags the shared library is always built with (part of the cache key).
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99")

_SOURCE = Path(__file__).with_name("bfs_kernels.c")

#: Loaded-and-bound library, memoized per process.
_lib: ctypes.CDLL | None = None
#: Probe outcome memo: None = not probed, else (available, reason).
_status: tuple[bool, str | None] | None = None


class NativeBuildError(RuntimeError):
    """The cnative shared library could not be built, loaded or verified."""


def source_path() -> Path:
    """Path of the packaged C source."""
    return _SOURCE


def cache_dir() -> Path:
    """Directory the built shared library is cached in."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def find_compiler() -> list[str] | None:
    """The C compiler argv to use, or None when no toolchain is found.

    ``$CC`` wins when set and resolvable; an unresolvable ``$CC`` means
    no compiler (never silently replaced — the user pinned it).  Without
    ``$CC`` the interpreter's build compiler is tried first, then the
    conventional names on ``$PATH``.
    """
    override = os.environ.get("CC")
    if override is not None:
        argv = shlex.split(override)
        if argv and shutil.which(argv[0]):
            return argv
        return None
    candidates: list[str] = []
    built_with = sysconfig.get_config_var("CC")
    if built_with:
        argv = shlex.split(built_with)
        if argv:
            candidates.append(argv[0])
    candidates.extend(("cc", "gcc", "clang"))
    for name in candidates:
        if shutil.which(name):
            return [name]
    return None


def library_path(compiler: list[str] | None = None) -> Path | None:
    """Cache path of the shared library for ``compiler`` (default: the
    probed one); None when no compiler is available."""
    if compiler is None:
        compiler = find_compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(b"\0".join(part.encode() for part in compiler))
    digest.update(b"\0".join(flag.encode() for flag in CFLAGS))
    return cache_dir() / f"bfs_kernels-{digest.hexdigest()[:12]}.so"


def _compile(compiler: list[str], out: Path) -> None:
    """Compile the source to ``out`` atomically (build-to-temp + rename)."""
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out.parent, suffix=".so.tmp")
    os.close(fd)
    cmd = [*compiler, *CFLAGS, str(_SOURCE), "-o", tmp]
    try:
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise NativeBuildError(
                f"compiler invocation {' '.join(compiler)!r} failed: {exc}"
            ) from exc
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            tail = " | ".join(detail.splitlines()[-3:]) or "no diagnostics"
            raise NativeBuildError(
                f"{' '.join(cmd)} exited {proc.returncode}: {tail}"
            )
        os.replace(tmp, out)
        tmp = None
    finally:
        if tmp is not None and os.path.exists(tmp):
            os.unlink(tmp)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Declare the exported signatures (raises if a symbol is missing)."""
    i64p, u64p, u8p = POINTER(c_int64), POINTER(c_uint64), POINTER(c_uint8)
    lib.repro_bu_scan.argtypes = [
        c_int64, i64p, i64p, u64p, u64p, c_int64, i64p, i64p, i64p,
    ]
    lib.repro_bu_scan.restype = c_int64
    lib.repro_td_expand.argtypes = [
        c_int64, i64p, c_int64, i64p, i64p, c_int64, u8p, i64p, i64p, i64p,
    ]
    lib.repro_td_expand.restype = c_int64
    return lib


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(POINTER(c_int64))


def _u64(arr: np.ndarray):
    return arr.ctypes.data_as(POINTER(c_uint64))


def _smoke_check(lib: ctypes.CDLL) -> None:
    """Run both kernels on a tiny known graph; mismatch = unusable library.

    The graph is the path 0–1–2–3 with frontier {1} and visited {0, 1}:
    candidate 2 must retire on its first edge with parent 1, candidate 3
    must scan its single edge and miss.
    """
    offsets = np.array([0, 1, 3, 5, 6], dtype=np.int64)
    targets = np.array([1, 0, 2, 1, 3, 2], dtype=np.int64)
    parent = np.array([0, 1, -1, -1], dtype=np.int64)
    inq = np.array([1 << 1], dtype=np.uint64)  # bit 1 set
    new = np.zeros(4, dtype=np.int64)
    counts = np.zeros(4, dtype=np.int64)
    n = lib.repro_bu_scan(
        4, _i64(offsets), _i64(targets), _u64(inq),
        None, 0, _i64(parent), _i64(new), _i64(counts),
    )
    if (
        n != 1 or new[0] != 2 or parent.tolist() != [0, 1, 1, -1]
        or counts.tolist() != [2, 2, 2, 2]
    ):
        raise NativeBuildError(
            "smoke check failed for repro_bu_scan: "
            f"n={n} new={new.tolist()} parent={parent.tolist()} "
            f"counts={counts.tolist()}"
        )

    frontier = np.array([1], dtype=np.int64)
    present = np.zeros(4, dtype=np.uint8)
    first_parent = np.zeros(4, dtype=np.int64)
    children = np.zeros(4, dtype=np.int64)
    parents = np.zeros(4, dtype=np.int64)
    k = lib.repro_td_expand(
        1, _i64(frontier), 0, _i64(offsets), _i64(targets), 4,
        present.ctypes.data_as(POINTER(c_uint8)), _i64(first_parent),
        _i64(children), _i64(parents),
    )
    if k != 2 or children[:2].tolist() != [0, 2] or parents[:2].tolist() != [1, 1]:
        raise NativeBuildError(
            "smoke check failed for repro_td_expand: "
            f"k={k} children={children.tolist()} parents={parents.tolist()}"
        )


def load_library() -> ctypes.CDLL:
    """The built, loaded, signature-bound, smoke-checked shared library.

    Memoized per process; raises :class:`NativeBuildError` (also
    memoized — see :func:`availability`) on any failure.
    """
    global _lib, _status
    if _lib is not None:
        return _lib
    if _status is not None and not _status[0]:
        raise NativeBuildError(_status[1])
    try:
        compiler = find_compiler()
        if compiler is None:
            raise NativeBuildError(
                "no C compiler found (checked $CC, the interpreter's build "
                "CC, and cc/gcc/clang on $PATH)"
            )
        path = library_path(compiler)
        assert path is not None
        if not path.exists():
            _compile(compiler, path)
        try:
            lib = _bind(ctypes.CDLL(str(path)))
        except (OSError, AttributeError):
            # Corrupted or stale cache entry: rebuild once.
            path.unlink(missing_ok=True)
            _compile(compiler, path)
            lib = _bind(ctypes.CDLL(str(path)))
        _smoke_check(lib)
    except NativeBuildError as exc:
        _status = (False, str(exc))
        raise
    _lib = lib
    _status = (True, None)
    return _lib


def availability() -> tuple[bool, str | None]:
    """``(True, None)`` when the native library is usable, else
    ``(False, reason)``.  Probes (and builds) once per process."""
    if _status is None:
        try:
            load_library()
        except NativeBuildError:
            pass
    assert _status is not None
    return _status


def reset() -> None:
    """Forget the probe outcome and loaded library (test hook)."""
    global _lib, _status
    _lib = None
    _status = None
