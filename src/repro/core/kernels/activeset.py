"""The active-set (chunked early-exit) kernel backend.

The paper's bottom-up phase is cheap because each unvisited vertex's
scan *early-exits* at its first frontier neighbour — on mid-BFS levels
the average examined prefix is a handful of edges, while total candidate
degree is nearly all ``2E`` local arcs.  The reference backend
nevertheless materializes the full adjacency.  This backend instead
processes candidates in degree-bounded chunks (*wavefront peeling*):

1. every still-active candidate contributes its next ``width`` untested
   neighbours to a dense ``(active, width)`` wavefront (short rows are
   padded by clamping to the row's last edge — see below);
2. the wavefront is tested (summary first, then ``in_queue`` only where
   the summary bit is set — a summary bit covers the base bit, so a zero
   block proves a miss);
3. candidates whose row contained a hit retire with that neighbour as
   parent; candidates with adjacency left stay active; ``width`` doubles
   so the rounds for a degree-``d`` holdout are ``O(log d)``.

The dense layout is what makes the rounds cheap: the per-row first hit
is a contiguous ``argmax``, with no segmented searchsorted and no
``repeat`` expansions.  Padding is correct by construction — a padded
cell duplicates the bit of its row's *last real* edge, so it can only
repeat a hit that exists earlier in the row (never create the first
one), and the examined/read counts are always clipped to the row's real
length.

Memory stays bounded: a candidate surviving to round ``k`` has already
consumed ``width₀·(2^k - 1)`` edges, so each round's padding is smaller
than the edges its survivors already examined.  Per-round temporaries
are ``O(active · width)`` and total gathered cells are ``O(examined)``
— memory and bitmap probes scale with the *examined* edges of the level
rather than the total candidate degree.  All Section II.B.2 accounting
is bit-identical to the reference backend; only the
``gathered_edges``/``chunk_rounds`` diagnostics differ.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import (
    BottomUpResult,
    KernelBackend,
    register_backend,
)
from repro.errors import ConfigError
from repro.util import bitops

__all__ = ["ActiveSetBackend"]


@register_backend
class ActiveSetBackend(KernelBackend):
    """Chunked bottom-up scan that retires candidates at their first hit."""

    name = "activeset"

    #: First-round chunk width (edges tested per candidate per round).
    #: Mid-BFS candidates retire after one or two edges, so the first
    #: round stays tiny; doubling covers heavy holdouts in O(log d).
    DEFAULT_CHUNK = 2
    #: Upper bound on the doubled chunk width, so one giant-degree hub
    #: cannot force a wavefront as large as the full-materialization path.
    MAX_CHUNK = 1 << 16

    def __init__(self, chunk: int = DEFAULT_CHUNK) -> None:
        if chunk < 1:
            raise ConfigError(f"kernel chunk must be >= 1, got {chunk}")
        self.chunk = int(chunk)

    @classmethod
    def from_config(cls, config) -> "ActiveSetBackend":
        """Instance honouring ``BFSConfig.kernel_chunk``."""
        if config is None:
            return cls()
        return cls(chunk=config.kernel_chunk)

    def bottom_up_scan(self, state, in_queue, summary) -> BottomUpResult:
        """Scan unvisited local vertices in early-exiting chunks."""
        lg = state.local
        cand = state.unvisited_local()
        ncand = int(cand.size)
        if ncand == 0:
            return BottomUpResult(
                new_local=np.zeros(0, dtype=np.int64),
                candidates=0,
                examined_edges=0,
                inqueue_reads=0,
            )

        starts = lg.offsets[cand]
        degs = (lg.offsets[cand + 1] - starts).astype(np.int64)
        last = starts + degs - 1  # clamp target for row padding

        found = np.zeros(ncand, dtype=bool)
        first_parent = np.empty(ncand, dtype=np.int64)
        examined_total = 0
        inqueue_reads = 0
        gathered = 0
        rounds = 0

        # Indices into the candidate arrays of not-yet-retired candidates
        # (always ascending, so retirement order matches candidate order).
        active = np.arange(ncand, dtype=np.int64)
        progress = np.zeros(ncand, dtype=np.int64)  # edges already tested
        width = self.chunk
        while active.size:
            rounds += 1
            done = progress[active]
            rem = degs[active] - done
            w = int(min(width, int(rem.max())))
            col = np.arange(w, dtype=np.int64)
            # Dense (active, w) wavefront; short rows repeat their last
            # real edge, which can never fabricate a row's first hit.
            pos = done[:, None] + col[None, :]
            pos += starts[active][:, None]
            np.minimum(pos, last[active][:, None], out=pos)
            neighbors = lg.targets[pos]
            row_len = np.minimum(rem, w)  # real (unpadded) cells per row
            gathered += int(row_len.sum())

            if summary is None:
                hits = bitops.get_bits(
                    in_queue.words, neighbors.ravel()
                ).reshape(neighbors.shape)
            else:
                # Probe in_queue only where the summary bit is set: the
                # summary covers the base bitmap, so a zero block proves
                # the neighbour is not in the frontier.
                summary_hits = bitops.get_bits(
                    summary.words, neighbors.ravel() // summary.granularity
                )
                hits = np.zeros(neighbors.size, dtype=bool)
                probe = np.flatnonzero(summary_hits)
                if probe.size:
                    hits[probe] = bitops.get_bits(
                        in_queue.words, neighbors.ravel()[probe]
                    )
                hits = hits.reshape(neighbors.shape)

            first_rel = hits.argmax(axis=1)
            has_hit = hits[np.arange(active.size), first_rel]
            # Early-exit count within this chunk: hit position inclusive,
            # or every real cell when the whole row missed.
            cnt = np.where(has_hit, first_rel + 1, row_len)
            examined_total += int(cnt.sum())
            if summary is None:
                # Every examined edge reads in_queue directly.
                inqueue_reads += int(cnt.sum())
            else:
                # Summary-filtered reads within each early-exit prefix —
                # the same per-edge predicate as the reference accounting,
                # restricted to this chunk's slice of the prefix.  The
                # prefix mask also excludes padded cells (cnt <= row_len).
                within_prefix = col[None, :] < cnt[:, None]
                inqueue_reads += int(
                    np.count_nonzero(
                        summary_hits.reshape(neighbors.shape) & within_prefix
                    )
                )

            rows = np.flatnonzero(has_hit)
            hit_idx = active[rows]
            found[hit_idx] = True
            first_parent[hit_idx] = neighbors[rows, first_rel[rows]]

            progress[active] = done + row_len
            live = ~has_hit & (rem > w)
            active = active[live]
            width = min(width * 2, self.MAX_CHUNK)

        new_local = cand[found]
        parents = first_parent[found]
        discovered = state.discover(new_local, parents)
        if discovered.size != new_local.size:  # pragma: no cover - invariant
            raise AssertionError("bottom-up rediscovered a visited vertex")

        return BottomUpResult(
            new_local=new_local,
            candidates=ncand,
            examined_edges=examined_total,
            inqueue_reads=inqueue_reads,
            gathered_edges=gathered,
            chunk_rounds=rounds,
        )

    def bottom_up_scan_batch(
        self, local, active_lanes, inq_lanes, summary_lanes, granularity,
        groups=None, num_groups=1,
    ):
        """Batched scan with this backend's chunk-doubling schedule."""
        from repro.core.kernels.batched import lane_scan

        return lane_scan(
            local,
            active_lanes,
            inq_lanes,
            summary_lanes,
            granularity,
            initial_width=self.chunk,
            max_width=self.MAX_CHUNK,
            groups=groups,
            num_groups=num_groups,
        )
