"""Pluggable BFS kernel backends.

The engine's per-rank compute kernels (top-down expand, bottom-up scan)
live behind a small registry so alternative implementations can be
swapped without touching the engine.  Three backends ship:

``reference``
    The original full-materialization kernels
    (:class:`~repro.core.kernels.reference.ReferenceBackend`) — the
    accounting oracle.
``activeset``
    Chunked early-exit scan
    (:class:`~repro.core.kernels.activeset.ActiveSetBackend`) — memory
    and bitmap probes scale with *examined* edges; the default.
``cnative``
    Native compiled kernels
    (:class:`~repro.core.kernels.cnative.CNativeBackend`) — a small C
    source compiled on first use and called through ctypes; the true
    per-vertex early exit.  Requires a system C compiler: when none is
    found (or the build fails) the backend reports itself unavailable
    and resolution degrades to ``activeset`` with a structured warning.

Selection precedence: ``BFSConfig.kernel`` (explicit) → the
``REPRO_KERNEL`` environment variable → :data:`DEFAULT_BACKEND`.  Every
backend is bit-identical on the paper's accounting, so the choice never
changes a priced result — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os

from repro.core.kernels.activeset import ActiveSetBackend
from repro.core.kernels.base import (
    FALLBACK_BACKEND,
    BottomUpResult,
    KernelBackend,
    TopDownSend,
    available_backends,
    bucket_by_owner,
    dedup_first_parent,
    get_backend,
    register_backend,
)
from repro.core.kernels.cnative import CNativeBackend
from repro.core.kernels.reference import ReferenceBackend

__all__ = [
    "ActiveSetBackend",
    "BottomUpResult",
    "CNativeBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "FALLBACK_BACKEND",
    "KernelBackend",
    "ReferenceBackend",
    "TopDownSend",
    "available_backends",
    "bucket_by_owner",
    "dedup_first_parent",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Backend used when neither the config nor the environment picks one.
DEFAULT_BACKEND = "activeset"

#: Environment variable consulted when the config does not pin a backend.
ENV_VAR = "REPRO_KERNEL"


def _env_name() -> str:
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def default_backend() -> KernelBackend:
    """The process-default backend (``$REPRO_KERNEL`` or the built-in)."""
    return get_backend(_env_name())


def resolve_backend(config=None) -> KernelBackend:
    """Backend for one engine: ``config.kernel`` → env var → default.

    The returned instance honours backend knobs on the config (e.g.
    ``kernel_chunk`` for the active-set backend).
    """
    name = getattr(config, "kernel", None) or _env_name()
    return get_backend(name, config=config)
