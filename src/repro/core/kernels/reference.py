"""The reference (full-materialization) kernel backend.

This is the repo's original vectorized bottom-up scan, kept as the
accounting *oracle*: it flattens the **entire** adjacency of every
candidate into one array and computes the early-exit counts over it with
the segmented helpers.  Per-level temporary memory is therefore
proportional to the total candidate degree (nearly all ``2E`` local arcs
on mid-BFS levels), which is exactly what the active-set backend
(:mod:`repro.core.kernels.activeset`) avoids — but its very simplicity
makes it the ground truth the equivalence tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import (
    BottomUpResult,
    KernelBackend,
    register_backend,
)
from repro.util.segments import gather_adjacency, segment_first_true_and_counts

__all__ = ["ReferenceBackend"]


@register_backend
class ReferenceBackend(KernelBackend):
    """Full-materialization kernels — simple, memory-hungry, and the oracle."""

    name = "reference"

    def bottom_up_scan(self, state, in_queue, summary) -> BottomUpResult:
        """Scan by materializing every candidate's full adjacency at once."""
        lg = state.local
        cand = state.unvisited_local()
        if cand.size == 0:
            return BottomUpResult(
                new_local=np.zeros(0, dtype=np.int64),
                candidates=0,
                examined_edges=0,
                inqueue_reads=0,
            )

        gather = gather_adjacency(lg.offsets, cand)
        total = int(gather.seg_offsets[-1])
        neighbors = lg.targets[gather.pos]

        hits = in_queue.test(neighbors)
        first, examined = segment_first_true_and_counts(
            hits, gather.seg_offsets
        )

        found = first >= 0
        new_local = cand[found]
        parents = neighbors[first[found]]
        discovered = state.discover(new_local, parents)
        if discovered.size != new_local.size:  # pragma: no cover - invariant
            raise AssertionError("bottom-up rediscovered a visited vertex")

        examined_total = int(examined.sum())
        if summary is None:
            # Without the summary structure every examined edge reads in_queue.
            inqueue_reads = examined_total
        else:
            # Edges inside the early-exit prefix whose summary block is
            # non-empty: only those fall through to the in_queue word read.
            within_prefix = gather.rel < np.repeat(examined, gather.lens)
            summary_hits = summary.test_vertices(neighbors)
            inqueue_reads = int(np.count_nonzero(within_prefix & summary_hits))

        return BottomUpResult(
            new_local=new_local,
            candidates=int(cand.size),
            examined_edges=examined_total,
            inqueue_reads=inqueue_reads,
            gathered_edges=total,
            chunk_rounds=1 if total else 0,
        )

    def bottom_up_scan_batch(
        self, local, active_lanes, inq_lanes, summary_lanes, granularity,
        groups=None, num_groups=1,
    ):
        """Batched scan in the reference style: materialize every
        candidate's full adjacency in a single round (the counts are
        chunk-schedule-independent, so this only spends more memory)."""
        from repro.core.kernels.batched import lane_scan

        return lane_scan(
            local,
            active_lanes,
            inq_lanes,
            summary_lanes,
            granularity,
            initial_width=None,
            groups=groups,
            num_groups=num_groups,
        )
