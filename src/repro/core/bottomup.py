"""Bottom-up BFS step (Beamer et al., the paper's Section II.A approach 2).

Each rank scans its *unvisited* local vertices; a vertex joins the next
frontier if any neighbour lies in the current frontier (``in_queue``),
and that first frontier neighbour becomes its parent.  The scan early-
exits at the first hit, which is what makes bottom-up cheap on the big
levels.

Two accounting subtleties the cost model depends on:

* ``examined_edges`` counts edges an early-exiting scan touches — the
  position of the first frontier neighbour (inclusive), or the full
  degree when there is none.  It does not depend on the summary.
* ``inqueue_reads`` counts the examined edges whose *summary* bit was 1:
  only those pay the random read into the large ``in_queue`` (Section
  II.B.2); examined edges in empty summary blocks are filtered by the
  much smaller summary structure.  Raising the granularity reduces the
  summary's size but also its zero fraction, moving reads back to
  ``in_queue`` — the Fig. 16 trade-off, measured here exactly.

The actual scan implementation is pluggable (:mod:`repro.core.kernels`):
the ``reference`` backend materializes every candidate's full adjacency,
the default ``activeset`` backend peels it in early-exiting chunks, and
the ``cnative`` backend (when a C toolchain is available) runs the true
per-vertex early-exit loop in compiled code.  All are bit-identical on
the accounting above.
"""

from __future__ import annotations

from repro.core.kernels import KernelBackend, default_backend
from repro.core.kernels.base import BottomUpResult
from repro.core.bitmap import Bitmap, SummaryBitmap
from repro.core.state import RankState
from repro.obs.tracer import NULL_TRACER

__all__ = ["BottomUpResult", "scan"]


def scan(
    state: RankState,
    in_queue: Bitmap,
    summary: SummaryBitmap | None,
    tracer=NULL_TRACER,
    rank: int = 0,
    backend: KernelBackend | None = None,
) -> BottomUpResult:
    """Scan unvisited local vertices against the global frontier bitmap.

    ``backend`` selects the kernel implementation; ``None`` uses the
    process default (``$REPRO_KERNEL`` or the active-set backend).  With
    a recording ``tracer`` the scan is wrapped in a ``bu.scan`` span
    carrying the rank's candidate, examined-edge and in_queue-read
    counts (the Section II.B.2 accounting) plus the backend's
    gathered-edge/round diagnostics."""
    if backend is None:
        backend = default_backend()
    with tracer.span("bu.scan", cat="compute", rank=rank) as sp:
        out = backend.bottom_up_scan(state, in_queue, summary)
        if tracer.enabled:
            sp.set(
                backend=backend.name,
                candidates=out.candidates,
                examined_edges=out.examined_edges,
                inqueue_reads=out.inqueue_reads,
                discovered=int(out.new_local.size),
                gathered_edges=out.gathered_edges,
                chunk_rounds=out.chunk_rounds,
            )
    return out
