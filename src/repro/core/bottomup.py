"""Bottom-up BFS step (Beamer et al., the paper's Section II.A approach 2).

Each rank scans its *unvisited* local vertices; a vertex joins the next
frontier if any neighbour lies in the current frontier (``in_queue``),
and that first frontier neighbour becomes its parent.  The scan early-
exits at the first hit, which is what makes bottom-up cheap on the big
levels.

Two accounting subtleties the cost model depends on:

* ``examined_edges`` counts edges an early-exiting scan touches — the
  position of the first frontier neighbour (inclusive), or the full
  degree when there is none.  It does not depend on the summary.
* ``inqueue_reads`` counts the examined edges whose *summary* bit was 1:
  only those pay the random read into the large ``in_queue`` (Section
  II.B.2); examined edges in empty summary blocks are filtered by the
  much smaller summary structure.  Raising the granularity reduces the
  summary's size but also its zero fraction, moving reads back to
  ``in_queue`` — the Fig. 16 trade-off, measured here exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmap import Bitmap, SummaryBitmap
from repro.core.state import RankState
from repro.obs.tracer import NULL_TRACER
from repro.util.segments import segment_counts_until_first_true, segment_first_true

__all__ = ["BottomUpResult", "scan"]


@dataclass
class BottomUpResult:
    """Outcome of one rank's bottom-up scan."""

    new_local: np.ndarray  # newly discovered local vertex ids
    candidates: int
    examined_edges: int
    inqueue_reads: int


def scan(
    state: RankState,
    in_queue: Bitmap,
    summary: SummaryBitmap | None,
    tracer=NULL_TRACER,
    rank: int = 0,
) -> BottomUpResult:
    """Scan unvisited local vertices against the global frontier bitmap.

    With a recording ``tracer`` the scan is wrapped in a ``bu.scan`` span
    carrying the rank's candidate, examined-edge and in_queue-read
    counts (the Section II.B.2 accounting)."""
    with tracer.span("bu.scan", cat="compute", rank=rank) as sp:
        out = _scan(state, in_queue, summary)
        if tracer.enabled:
            sp.set(
                candidates=out.candidates,
                examined_edges=out.examined_edges,
                inqueue_reads=out.inqueue_reads,
                discovered=int(out.new_local.size),
            )
    return out


def _scan(
    state: RankState,
    in_queue: Bitmap,
    summary: SummaryBitmap | None,
) -> BottomUpResult:
    lg = state.local
    cand = state.unvisited_local()
    if cand.size == 0:
        return BottomUpResult(
            new_local=np.zeros(0, dtype=np.int64),
            candidates=0,
            examined_edges=0,
            inqueue_reads=0,
        )

    starts = lg.offsets[cand]
    lens = (lg.offsets[cand + 1] - starts).astype(np.int64)
    total = int(lens.sum())
    flat_starts = np.cumsum(lens) - lens
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(flat_starts, lens)
        + np.repeat(starts, lens)
    )
    neighbors = lg.targets[pos]

    hits = in_queue.test(neighbors)
    seg_offsets = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
    first = segment_first_true(hits, seg_offsets)
    examined = segment_counts_until_first_true(hits, seg_offsets)

    found = first >= 0
    new_local = cand[found]
    parents = neighbors[first[found]]
    discovered = state.discover(new_local, parents)
    if discovered.size != new_local.size:  # pragma: no cover - invariant
        raise AssertionError("bottom-up rediscovered a visited vertex")

    examined_total = int(examined.sum())
    if summary is None:
        # Without the summary structure every examined edge reads in_queue.
        inqueue_reads = examined_total
    else:
        # Edges inside the early-exit prefix whose summary block is
        # non-empty: only those fall through to the in_queue word read.
        within_prefix = (
            np.arange(total, dtype=np.int64) - np.repeat(flat_starts, lens)
        ) < np.repeat(examined, lens)
        summary_hits = summary.test_vertices(neighbors)
        inqueue_reads = int(np.count_nonzero(within_prefix & summary_hits))

    return BottomUpResult(
        new_local=new_local,
        candidates=int(cand.size),
        examined_edges=examined_total,
        inqueue_reads=inqueue_reads,
    )
