"""Assembly of simulated time from event counts.

``assemble`` converts a :class:`~repro.core.counts.RunCounts` into the
per-phase time breakdown the paper profiles (Fig. 11): top-down
computation, top-down communication, bottom-up computation, bottom-up
communication, switch (frontier representation conversion) and stall
(load imbalance at the level barriers).

Timing is a pure function of the counts, the machine model and the
configuration, so the same run can be priced at its actual scale (the
engine does this) or at a paper scale after
:meth:`~repro.core.counts.RunCounts.scaled` (the :mod:`repro.model`
extrapolation does that), with structure sizes — and therefore cache hit
rates — evaluated at the target scale.

Compute phases use the roofline combination of
:mod:`repro.machine.costmodel`: ``max(latency term, bandwidth term,
cpu term)``, vectorized over ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bitmap import summary_words_for
from repro.core.config import BFSConfig
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.errors import SimulationError
from repro.machine.memory import MemoryModel, Placement, StructureAccess
from repro.mpi.collectives import allgather_time
from repro.mpi.simcomm import SimComm
from repro.util import bitops

__all__ = [
    "COMM_COMPONENTS",
    "CostConstants",
    "StructureSizes",
    "LevelTiming",
    "PhaseBreakdown",
    "BfsTiming",
    "assemble",
    "comm_component_split",
]

#: Attribution categories for communication time: the two bottom-up
#: allgathers the paper profiles separately (Fig. 12/14), the top-down
#: pair exchange, and the per-level control allreduces.
COMM_COMPONENTS = (
    "allgather_in_queue",
    "allgather_summary",
    "alltoallv",
    "allreduce",
)


def comm_component_split(comm_steps: dict[str, float]) -> dict[str, float]:
    """Group a level's ``comm_steps`` into :data:`COMM_COMPONENTS`.

    The pricer prefixes every in_queue-allgather step with ``inq_`` and
    every summary-allgather step with ``summary_`` (including the codec
    encode/decode terms), so the per-collective attribution is a pure
    regrouping — the component sums always add up to ``comm_ns``.
    Unrecognized steps are preserved under ``other``.
    """
    out = dict.fromkeys(COMM_COMPONENTS, 0.0)
    for step, t in comm_steps.items():
        if step.startswith("inq_"):
            out["allgather_in_queue"] += t
        elif step.startswith("summary_"):
            out["allgather_summary"] += t
        elif step in ("alltoallv", "allreduce"):
            out[step] += t
        else:
            out["other"] = out.get("other", 0.0) + t
    return out

# Scalar-work constants (CPU cycles per event).  These are the knobs a
# profile-calibrated simulator exposes; defaults chosen for a tight BFS
# inner loop on the 2 GHz X7550.
@dataclass(frozen=True)
class CostConstants:
    cycles_per_td_edge: float = 8.0
    cycles_per_td_frontier_vertex: float = 12.0
    cycles_per_td_received_pair: float = 10.0
    cycles_per_bu_edge: float = 6.0
    cycles_per_bu_candidate: float = 4.0
    cycles_per_switch_vertex: float = 6.0
    bytes_per_adjacency_entry: float = 8.0
    # Compute-phase inflation under OpenMP *static* chunking: power-law
    # per-vertex work leaves some threads idle while the hub chunks
    # finish (the paper uses the dynamic scheduler to avoid this, IV.C).
    omp_static_penalty: float = 1.4


@dataclass(frozen=True)
class StructureSizes:
    """Structure sizes at the *priced* scale."""

    num_vertices: int
    num_arcs: int  # directed arcs (2x undirected edges)
    num_ranks: int
    granularity: int

    @property
    def in_queue_bytes(self) -> float:
        """Bytes of the full frontier bitmap."""
        return bitops.words_for_bits(self.num_vertices) * 8.0

    @property
    def summary_bytes(self) -> float:
        """Bytes of the summary bitmap at this granularity."""
        return summary_words_for(self.num_vertices, self.granularity) * 8.0

    @property
    def local_vertices(self) -> float:
        """Vertices per rank."""
        return self.num_vertices / self.num_ranks

    @property
    def out_part_bytes(self) -> float:
        """Bytes of one rank's out_queue bitmap part."""
        return self.local_vertices / 8.0

    @property
    def parent_bytes(self) -> float:
        """Bytes of one rank's parent array."""
        return self.local_vertices * 8.0

    @property
    def local_graph_bytes(self) -> float:
        """Bytes of one rank's CSR partition."""
        return self.num_arcs / self.num_ranks * 8.0 + self.local_vertices * 8.0

    @classmethod
    def from_counts(
        cls, counts: RunCounts, num_arcs: int, config: BFSConfig
    ) -> "StructureSizes":
        """Sizes implied by a run's counts at its own scale."""
        return cls(
            num_vertices=counts.num_vertices,
            num_arcs=num_arcs,
            num_ranks=counts.num_ranks,
            granularity=config.granularity,
        )


@dataclass
class LevelTiming:
    level: int
    direction: str
    compute_mean_ns: float
    compute_max_ns: float
    comm_ns: float
    switch_ns: float
    stall_ns: float
    # Telemetry detail (consumed by repro.obs.export): the per-rank
    # compute durations behind mean/max, and the collective's per-step
    # time split (e.g. inq_intra_gather / inq_inter for the leader
    # allgather family).
    compute_rank_ns: np.ndarray | None = None
    comm_steps: dict[str, float] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        """Level total: compute + comm + switch + stall."""
        return self.compute_mean_ns + self.comm_ns + self.switch_ns + self.stall_ns

    @property
    def critical_rank(self) -> int:
        """The straggler: rank with the largest compute time this level
        (the one every other rank waits for at the barrier); -1 when no
        per-rank detail was recorded."""
        if self.compute_rank_ns is None or len(self.compute_rank_ns) == 0:
            return -1
        return int(np.argmax(self.compute_rank_ns))

    @property
    def compute_imbalance(self) -> float:
        """Load-imbalance ratio max/mean of the per-rank compute times
        (1.0 = perfectly balanced; falls back to max/mean of the scalar
        aggregates when per-rank detail is absent)."""
        arr = self.compute_rank_ns
        if arr is not None and len(arr) > 0:
            mean = float(np.mean(arr))
            return float(np.max(arr)) / mean if mean > 0 else 1.0
        if self.compute_mean_ns > 0:
            return self.compute_max_ns / self.compute_mean_ns
        return 1.0

    def comm_components(self) -> dict[str, float]:
        """This level's communication time per attribution component
        (see :func:`comm_component_split`)."""
        return comm_component_split(self.comm_steps)


@dataclass
class PhaseBreakdown:
    """Fig. 11 categories, in nanoseconds of the critical path."""

    td_compute: float = 0.0
    td_comm: float = 0.0
    bu_compute: float = 0.0
    bu_comm: float = 0.0
    switch: float = 0.0
    stall: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all six phases."""
        return (
            self.td_compute
            + self.td_comm
            + self.bu_compute
            + self.bu_comm
            + self.switch
            + self.stall
        )

    @property
    def comm_fraction(self) -> float:
        """Share of bottom-up communication in the total (the Fig. 12/14
        curve)."""
        return self.bu_comm / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        """The six phases as a plain dict (ns)."""
        return {
            "td_compute": self.td_compute,
            "td_comm": self.td_comm,
            "bu_compute": self.bu_compute,
            "bu_comm": self.bu_comm,
            "switch": self.switch,
            "stall": self.stall,
        }


@dataclass
class BfsTiming:
    levels: list[LevelTiming] = field(default_factory=list)
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)

    @property
    def total_ns(self) -> float:
        """Total simulated nanoseconds."""
        return self.breakdown.total

    @property
    def total_seconds(self) -> float:
        """Total simulated seconds."""
        return self.total_ns / 1e9


def _roofline(
    lat_ns: np.ndarray,
    stream_time_ns: np.ndarray,
    cpu_cycles: np.ndarray,
    threads: int,
    mlp: float,
    frequency_hz: float,
) -> np.ndarray:
    """Vectorized roofline combination over ranks."""
    latency_term = lat_ns / (threads * mlp)
    cpu_term = cpu_cycles / (threads * frequency_hz) * 1e9
    return np.maximum(np.maximum(latency_term, stream_time_ns), cpu_term)


class _Pricer:
    """Precomputes per-structure latencies/bandwidths for one run."""

    def __init__(
        self,
        comm: SimComm,
        config: BFSConfig,
        sizes: StructureSizes,
        constants: CostConstants,
    ) -> None:
        self.comm = comm
        self.config = config
        self.sizes = sizes
        self.c = constants
        self.mapping = comm.mapping
        node = comm.cluster.node
        self.socket = node.socket
        self.memory: MemoryModel = comm.memory

        loc = self.mapping.location(0)  # mapping is symmetric across ranks
        self.threads = loc.threads
        self.threads_sockets = loc.threads_sockets
        self.omp_penalty = (
            1.0 if config.omp_dynamic else constants.omp_static_penalty
        )
        private = loc.private_placement

        self.lat_graph = self._lat("graph", sizes.local_graph_bytes, private)
        self.lat_out_queue = self._lat("out_queue", sizes.in_queue_bytes, private)
        self.lat_parent = self._lat("parent", sizes.parent_bytes, private)
        self.lat_in_queue = self._lat(
            "in_queue", sizes.in_queue_bytes, config.in_queue_placement(private)
        )
        self.lat_summary = self._lat(
            "summary", sizes.summary_bytes, config.summary_placement(private)
        )
        self.graph_stream_bw = self.memory.effective(
            private, self.threads_sockets
        ).stream_bandwidth
        self.line_bytes = self.socket.caches[0].line_bytes if self.socket.caches else 64
        # DRAM-miss fractions for miss-traffic bandwidth accounting.
        cachemod = self.memory.caches
        self.miss_in_queue = cachemod.dram_miss_fraction(
            sizes.in_queue_bytes,
            shared_sockets=self.memory.effective(
                config.in_queue_placement(private), self.threads_sockets
            ).shared_sockets,
        )
        self.miss_summary = cachemod.dram_miss_fraction(
            sizes.summary_bytes,
            shared_sockets=self.memory.effective(
                config.summary_placement(private), self.threads_sockets
            ).shared_sockets,
        )

    def _lat(self, name: str, size: float, placement: Placement) -> float:
        return self.memory.access_latency(
            StructureAccess(name, size, placement), self.threads_sockets
        )

    # ---- per-level compute pricing -----------------------------------------

    def _adjacency_reads(
        self, vertices: np.ndarray, examined: np.ndarray
    ) -> np.ndarray:
        """Random line accesses into the CSR arrays.

        BFS adjacency access is *not* a long stream: each scanned vertex's
        neighbour list is a short burst at a random position, so it costs
        roughly one miss per vertex plus one per cache line of entries.
        This is the dominant latency-bound term of the computation phase
        and the one the paper's socket binding accelerates.
        """
        entries_per_line = self.line_bytes / self.c.bytes_per_adjacency_entry
        return vertices + examined / entries_per_line

    def top_down_compute(self, lc: LevelCounts) -> np.ndarray:
        examined = lc.examined_edges.astype(np.float64)
        frontier = lc.frontier_local.astype(np.float64)
        received = (
            lc.td_send_bytes.sum(axis=0) / 16.0
            if lc.td_send_bytes is not None
            else np.zeros_like(examined)
        )
        graph_reads = self._adjacency_reads(frontier, examined)
        lat = (
            graph_reads * self.lat_graph
            + examined * self.lat_out_queue
            + received * self.lat_parent
        )
        stream_bytes = graph_reads * self.line_bytes
        stream_t = stream_bytes / self.graph_stream_bw * 1e9
        cpu = (
            examined * self.c.cycles_per_td_edge
            + frontier * self.c.cycles_per_td_frontier_vertex
            + received * self.c.cycles_per_td_received_pair
        )
        return _roofline(
            lat, stream_t, cpu, self.threads, self.socket.mlp,
            self.socket.frequency_hz,
        )

    def bottom_up_compute(self, lc: LevelCounts) -> np.ndarray:
        examined = lc.examined_edges.astype(np.float64)
        candidates = lc.candidates.astype(np.float64)
        inq_reads = lc.inqueue_reads.astype(np.float64)
        graph_reads = self._adjacency_reads(candidates, examined)
        # The reference code probes summary and in_queue *simultaneously*
        # (II.B.2): on a zero summary bit the scan proceeds as soon as the
        # (fast, cache-resident) summary answers; otherwise the slower
        # in_queue read governs.  The summary therefore substitutes the
        # in_queue latency on empty blocks rather than adding to it.
        lat = graph_reads * self.lat_graph
        if self.config.use_summary:
            lat = (
                lat
                + (examined - inq_reads) * self.lat_summary
                + inq_reads * max(self.lat_in_queue, self.lat_summary)
            )
        else:
            lat = lat + inq_reads * self.lat_in_queue
        stream_bytes = (
            graph_reads * self.line_bytes
            # scan of the local visited/out_queue part, plus writing the
            # new out_queue part and its summary slice
            + 2.0 * self.sizes.out_part_bytes
            # miss traffic of the random bitmap reads
            + inq_reads * self.miss_in_queue * self.line_bytes
        )
        if self.config.use_summary:
            stream_bytes = stream_bytes + examined * self.miss_summary * self.line_bytes
        stream_t = stream_bytes / self.graph_stream_bw * 1e9
        cpu = (
            examined * self.c.cycles_per_bu_edge
            + candidates * self.c.cycles_per_bu_candidate
        )
        return _roofline(
            lat, stream_t, cpu, self.threads, self.socket.mlp,
            self.socket.frequency_hz,
        )

    def switch_time(self, lc: LevelCounts) -> float:
        """Frontier representation conversion (bitmap <-> queue)."""
        if not lc.switched:
            return 0.0
        vertices = float(lc.frontier_local.max(initial=0))
        stream_t = self.sizes.out_part_bytes / self.graph_stream_bw * 1e9
        cpu_t = (
            vertices
            * self.c.cycles_per_switch_vertex
            / (self.threads * self.socket.frequency_hz)
            * 1e9
        )
        return stream_t + cpu_t

    # ---- per-level communication pricing ------------------------------------

    def top_down_comm(self, lc: LevelCounts) -> tuple[float, dict[str, float]]:
        steps = {"alltoallv": 0.0}
        if lc.td_send_bytes is not None:
            steps["alltoallv"] = float(
                self.comm.alltoallv_time(lc.td_send_bytes).max(initial=0.0)
            )
        steps["allreduce"] = lc.allreduces * self.comm.allreduce_time()
        return sum(steps.values()), steps

    def _allgather_steps(
        self,
        algorithm,
        raw_part_bytes: float,
        wire_part_bytes: float,
        wire_total_bytes: float,
        encoded: bool,
    ) -> tuple[float, dict[str, float]]:
        """One allgather's step times, with codec terms when encoded.

        Mirrors :func:`repro.mpi.collectives.allgather` exactly: the
        transfer schedule is priced at the *wire* sizes the engine
        recorded, and the encode/decode CPU terms use the same inputs the
        functional path charged (largest raw part in, full wire payload
        out) — keeping assembled timings identical to the traced events.
        """
        subgroups = self.config.comm.subgroups
        if encoded:
            t, steps = allgather_time(
                self.comm,
                algorithm,
                part_bytes=wire_part_bytes,
                total_bytes=wire_total_bytes,
                subgroups=subgroups,
            )
            steps["codec_encode"] = self.comm.codec_model.encode_time_ns(
                raw_part_bytes
            )
            steps["codec_decode"] = self.comm.codec_model.decode_time_ns(
                wire_total_bytes
            )
            t += steps["codec_encode"] + steps["codec_decode"]
        else:
            t, steps = allgather_time(
                self.comm, algorithm, part_bytes=raw_part_bytes,
                subgroups=subgroups,
            )
        return t, steps

    def bottom_up_comm(self, lc: LevelCounts) -> tuple[float, dict[str, float]]:
        encoded = lc.codec not in (None, "raw")
        inq_t, inq_steps = self._allgather_steps(
            self.config.in_queue_algorithm(),
            raw_part_bytes=lc.inq_part_words * 8.0,
            wire_part_bytes=lc.inq_wire_part_bytes,
            wire_total_bytes=lc.inq_wire_total_bytes,
            encoded=encoded,
        )
        total = inq_t
        steps = {f"inq_{k}": v for k, v in inq_steps.items()}
        if self.config.use_summary:
            sum_t, sum_steps = self._allgather_steps(
                self.config.summary_algorithm(),
                raw_part_bytes=lc.summary_part_words * 8.0,
                wire_part_bytes=lc.summary_wire_part_bytes,
                wire_total_bytes=lc.summary_wire_total_bytes,
                encoded=encoded,
            )
            total += sum_t
            steps.update({f"summary_{k}": v for k, v in sum_steps.items()})
        steps["allreduce"] = lc.allreduces * self.comm.allreduce_time()
        total += steps["allreduce"]
        return total, steps


def assemble(
    counts: RunCounts,
    comm: SimComm,
    config: BFSConfig,
    sizes: StructureSizes,
    constants: CostConstants = CostConstants(),
) -> BfsTiming:
    """Price a run's counts on the machine model."""
    counts.validate()
    if counts.num_ranks != comm.num_ranks:
        raise SimulationError(
            f"counts recorded for {counts.num_ranks} ranks, communicator "
            f"has {comm.num_ranks}"
        )
    pricer = _Pricer(comm, config, sizes, constants)
    timing = BfsTiming()
    bd = timing.breakdown
    for lc in counts.levels:
        if lc.direction == Direction.TOP_DOWN:
            comp = pricer.top_down_compute(lc) * pricer.omp_penalty
            comm_t, comm_steps = pricer.top_down_comm(lc)
        else:
            comp = pricer.bottom_up_compute(lc) * pricer.omp_penalty
            comm_t, comm_steps = pricer.bottom_up_comm(lc)
        switch_t = pricer.switch_time(lc)
        comp_mean = float(comp.mean())
        comp_max = float(comp.max())
        stall = comp_max - comp_mean
        timing.levels.append(
            LevelTiming(
                level=lc.level,
                direction=lc.direction,
                compute_mean_ns=comp_mean,
                compute_max_ns=comp_max,
                comm_ns=comm_t,
                switch_ns=switch_t,
                stall_ns=stall,
                compute_rank_ns=comp.copy(),
                comm_steps=comm_steps,
            )
        )
        if lc.direction == Direction.TOP_DOWN:
            bd.td_compute += comp_mean
            bd.td_comm += comm_t
        else:
            bd.bu_compute += comp_mean
            bd.bu_comm += comm_t
        bd.switch += switch_t
        bd.stall += stall
    return timing
