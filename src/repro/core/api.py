"""High-level convenience API.

One-call entry points for the common workflows, so downstream users do
not have to assemble engines by hand:

* :func:`run_bfs` — one traversal on a default or given cluster;
* :func:`compare_configs` — several configurations on the same workload,
  with an optional paper-scale target;
* :func:`optimization_stack` — the full Fig. 9 chain on any cluster.

All entry points accept (or build and share) a
:class:`~repro.core.prepared.PreparedGraph`, the immutable partition/CSR
product that :class:`~repro.core.engine.BFSEngine` construction is based
on; the serving layer (:mod:`repro.serve`) reuses the same objects
across concurrent queries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import BFSConfig, CommConfig, paper_variants
from repro.core.engine import BFSEngine, BFSResult
from repro.core.prepared import PreparedGraph, PreparedGraphCache
from repro.core.validate import validate_parent_tree
from repro.errors import GraphError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import ResilienceConfig
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec, paper_cluster
from repro.model.extrapolate import extrapolate_result

__all__ = [
    "run_bfs",
    "compare_configs",
    "optimization_stack",
    "ConfigComparison",
]


def run_bfs(
    graph: Graph,
    root: int,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
    validate: bool = False,
    comm: CommConfig | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    resilience: ResilienceConfig | None = None,
    prepared: PreparedGraph | None = None,
) -> BFSResult:
    """One BFS traversal, optionally validated.

    Defaults: one 8-socket node and the paper's bound one-process-per-
    socket configuration.  ``comm`` overrides the configuration's
    communication block (sharing variant, allgather flavour, frontier
    codec) without rebuilding the whole config.  ``faults`` (a
    :class:`~repro.faults.plan.FaultPlan`) runs the traversal under
    deterministic fault injection; ``resilience`` (a
    :class:`~repro.faults.recovery.ResilienceConfig`) tunes the
    checkpoint/retry policy — see :mod:`repro.faults`.  ``prepared``
    reuses an already-built :class:`PreparedGraph` (it must match the
    graph/cluster/partition config) and skips the partition build.
    """
    cluster = cluster or paper_cluster(nodes=1)
    config = config or BFSConfig.original_ppn8()
    if comm is not None:
        config = replace(config, comm=comm)
    result = BFSEngine(
        graph,
        cluster,
        config,
        faults=faults,
        resilience=resilience,
        prepared=prepared,
    ).run(root)
    if validate:
        validate_parent_tree(graph, root, result.parent)
    return result


@dataclass
class ConfigComparison:
    """TEPS of several configurations on the same workload."""

    teps: dict[str, float]
    seconds: dict[str, float]
    target_scale: int | None

    @property
    def best(self) -> str:
        """Name of the fastest configuration."""
        return max(self.teps, key=self.teps.get)

    def speedup(self, name: str, over: str) -> float:
        """How much faster ``name`` is than ``over``."""
        return self.teps[name] / self.teps[over]


def compare_configs(
    graph: Graph,
    configs: dict[str, BFSConfig],
    cluster: ClusterSpec | None = None,
    root: int | None = None,
    target_scale: int | None = None,
    comm: CommConfig | None = None,
) -> ConfigComparison:
    """Run several configurations from the same root and compare TEPS.

    ``target_scale`` re-prices every run at a paper scale (recommended:
    tiny functional graphs are latency-dominated and hide the NUMA
    story).  ``comm`` overrides every configuration's communication
    block — useful to sweep one codec/sharing setting across variants.

    Variants that share a partition layout (same resolved ppn, binding
    and degree balancing) share one :class:`PreparedGraph`, so the
    expensive CSR extraction runs once per layout, not once per variant.
    """
    if not configs:
        raise GraphError("need at least one configuration")
    if comm is not None:
        configs = {
            name: replace(cfg, comm=comm) for name, cfg in configs.items()
        }
    cluster = cluster or paper_cluster(nodes=1)
    if root is None:
        degrees = graph.degrees()
        if degrees.max() == 0:
            raise GraphError("graph has no edges")
        root = int(np.argmax(degrees))
    # One prepared graph per distinct partition layout across the sweep.
    cache = PreparedGraphCache(maxsize=max(len(configs), 1))
    teps: dict[str, float] = {}
    seconds: dict[str, float] = {}
    for name, config in configs.items():
        prepared = cache.get_or_prepare(graph, cluster, config)
        engine = BFSEngine(graph, cluster, config, prepared=prepared)
        result = engine.run(root)
        if target_scale is not None:
            pred = extrapolate_result(result, engine, target_scale)
            teps[name] = pred.teps
            seconds[name] = pred.seconds
        else:
            teps[name] = result.teps
            seconds[name] = result.seconds
    return ConfigComparison(
        teps=teps, seconds=seconds, target_scale=target_scale
    )


def optimization_stack(
    graph: Graph,
    cluster: ClusterSpec | None = None,
    target_scale: int | None = None,
    best_granularity: int = 256,
) -> ConfigComparison:
    """The paper's full Fig. 9 chain on the given workload."""
    return compare_configs(
        graph,
        paper_variants(best_granularity),
        cluster=cluster,
        target_scale=target_scale,
    )
