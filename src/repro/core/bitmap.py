"""Frontier bitmaps and the granularity-tunable summary bitmap.

``Bitmap`` mirrors the ``unsigned long`` bit arrays of the Graph500
reference code (``in_queue``, ``out_queue``): one bit per vertex, packed
into uint64 words.

``SummaryBitmap`` implements the paper's Section III.C structure: one
summary bit covers ``granularity`` consecutive bits of the base bitmap
and is set iff any of them is set.  The reference granularity is 64 (one
bit per word); the paper's optimization raises it (e.g. to 256) to shrink
the structure for cache locality at the cost of fewer zero bits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.util import bitops

__all__ = ["Bitmap", "SummaryBitmap", "summary_words_for"]


class Bitmap:
    """A bitmap over ``nbits`` positions backed by uint64 words."""

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: np.ndarray | None = None) -> None:
        if nbits < 0:
            raise ConfigError("nbits must be non-negative")
        self.nbits = nbits
        expected = bitops.words_for_bits(nbits)
        if words is None:
            words = np.zeros(expected, dtype=bitops.WORD_DTYPE)
        elif words.size != expected or words.dtype != bitops.WORD_DTYPE:
            raise ConfigError(
                f"words must be {expected} uint64 words for nbits={nbits}"
            )
        self.words = words

    @classmethod
    def from_indices(cls, nbits: int, indices: np.ndarray) -> "Bitmap":
        """Bitmap with the given bit positions set."""
        bm = cls(nbits)
        bm.set(indices)
        return bm

    def set(self, indices: np.ndarray) -> None:
        """Set the bits at ``indices`` (in place)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.nbits
        ):
            raise ConfigError("bit index out of range")
        bitops.set_bits(self.words, indices)

    def test(self, indices: np.ndarray) -> np.ndarray:
        """Boolean values of the bits at ``indices``."""
        return bitops.get_bits(self.words, np.asarray(indices, dtype=np.int64))

    def count(self) -> int:
        """Number of set bits."""
        return bitops.count_set_bits(self.words, nbits=self.nbits)

    def indices(self) -> np.ndarray:
        """Positions of the set bits, ascending."""
        return bitops.nonzero_bit_indices(self.words, self.nbits)

    def clear(self) -> None:
        """Reset every bit to 0."""
        self.words.fill(0)

    def copy(self) -> "Bitmap":
        """Deep copy of the bitmap."""
        return Bitmap(self.nbits, self.words.copy())

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the word array."""
        return int(self.words.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmap(nbits={self.nbits}, set={self.count()})"


def _check_granularity(granularity: int) -> None:
    if granularity < 64 or granularity % 64 != 0:
        raise ConfigError(
            f"summary granularity must be a positive multiple of 64, "
            f"got {granularity}"
        )


def summary_words_for(nbits: int, granularity: int) -> int:
    """Words needed for a summary of an ``nbits`` bitmap."""
    _check_granularity(granularity)
    nblocks = (nbits + granularity - 1) // granularity
    return bitops.words_for_bits(nblocks)


class SummaryBitmap:
    """Summary of a :class:`Bitmap` at a given granularity.

    Bit ``b`` of the summary is 1 iff any bit in
    ``[b * granularity, (b + 1) * granularity)`` of the base bitmap is 1.
    """

    __slots__ = ("granularity", "nbits", "nblocks", "words")

    def __init__(
        self,
        nbits: int,
        granularity: int = 64,
        words: np.ndarray | None = None,
    ) -> None:
        _check_granularity(granularity)
        if nbits < 0:
            raise ConfigError("nbits must be non-negative")
        self.granularity = granularity
        self.nbits = nbits
        self.nblocks = (nbits + granularity - 1) // granularity
        expected = bitops.words_for_bits(self.nblocks)
        if words is None:
            words = np.zeros(expected, dtype=bitops.WORD_DTYPE)
        elif words.size != expected or words.dtype != bitops.WORD_DTYPE:
            raise ConfigError("summary words array has the wrong shape/dtype")
        self.words = words

    @classmethod
    def build(cls, base: Bitmap, granularity: int = 64) -> "SummaryBitmap":
        """Build the summary of ``base`` (fully vectorized)."""
        _check_granularity(granularity)
        summary = cls(base.nbits, granularity)
        summary.rebuild(base)
        return summary

    def rebuild(self, base: Bitmap) -> None:
        """Recompute this summary from ``base`` in place."""
        if base.nbits != self.nbits:
            raise ConfigError(
                f"base bitmap has {base.nbits} bits, summary expects {self.nbits}"
            )
        if self.nblocks == 0:
            return
        words_per_block = self.granularity // 64
        base_words = base.words
        pad = (-base_words.size) % words_per_block
        if pad:
            base_words = np.concatenate(
                [base_words, np.zeros(pad, dtype=bitops.WORD_DTYPE)]
            )
        grouped = base_words.reshape(-1, words_per_block)
        nonempty = grouped.any(axis=1)
        self.words[:] = bitops.bool_to_bits(nonempty[: self.nblocks])

    def test_vertices(self, vertices: np.ndarray) -> np.ndarray:
        """Summary bit covering each vertex id (True = block non-empty)."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (int(v.min()) < 0 or int(v.max()) >= self.nbits):
            raise ConfigError("vertex id out of range")
        return bitops.get_bits(self.words, v // self.granularity)

    def zero_fraction(self) -> float:
        """Fraction of summary bits that are 0 — the quantity whose decay
        with growing granularity limits the optimization (III.C.2)."""
        if self.nblocks == 0:
            return 0.0
        ones = bitops.count_set_bits(self.words, nbits=self.nblocks)
        return 1.0 - ones / self.nblocks

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the summary's word array."""
        return int(self.words.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SummaryBitmap(nbits={self.nbits}, granularity={self.granularity}, "
            f"zero_fraction={self.zero_fraction():.3f})"
        )
