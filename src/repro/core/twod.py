"""2-D partitioned BFS (Buluc & Madduri, SC'11 — the paper's [11]).

The paper's related-work section singles this algorithm out: it cuts
communication by partitioning the adjacency *matrix* over an
``R x C`` processor grid instead of partitioning vertices 1-D, and the
paper notes the two approaches are orthogonal ("our implementation could
be applied to 2-D partition algorithm to further reduce its communication
overhead").  This module implements the classic top-down 2-D algorithm as
a second, fully functional engine on the same simulated cluster, so the
1-D-vs-2-D comparison can be made quantitatively
(``benchmarks/bench_2d.py``).

Layout.  With ``np = R * C`` ranks, the vertex space is cut into ``np``
equal segments; rank ``(i, j)`` owns segment ``i * C + j``.  Block-row
``i`` is the union of the segments of processor-row ``i``; block-column
``j`` the union of processor-column ``j``'s segments.  Rank ``(i, j)``
stores the arcs ``u -> v`` with ``u`` in block-column ``j`` and ``v`` in
block-row ``i``.

One level has two communication phases, both within a fiber of the grid:

* **expand** — allgatherv of the frontier segments within each processor
  *column* (every rank learns the frontier of its block-column);
* **fold** — alltoallv of the discovered (child, parent) pairs within
  each processor *row*, delivering each pair to the child's owner.

Per-rank traffic scales like ``n/C + n/R ~ n/sqrt(np)`` instead of the
1-D hybrid's ``n`` for the replicated bitmap — the SC'11 result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.state import RankState
from repro.core.timing import BfsTiming, CostConstants, StructureSizes, assemble
from repro.core import topdown
from repro.errors import ConfigError, GraphError
from repro.graph.partition import Partition1D
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.mpi.mapping import BindingPolicy, ProcessMapping
from repro.mpi.p2p import MessageLedger
from repro.mpi.simcomm import SimComm

__all__ = ["Grid2D", "TwoDBFSEngine", "TwoDResult"]


@dataclass(frozen=True)
class Grid2D:
    """An ``R x C`` processor grid over ``R * C`` ranks (row-major)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        """Number of ranks in the grid."""
        return self.rows * self.cols

    def rank_of(self, i: int, j: int) -> int:
        """Rank at grid coordinate (i, j), row-major."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ConfigError(f"grid coordinate ({i}, {j}) out of range")
        return i * self.cols + j

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinate (i, j) of a rank."""
        if not 0 <= rank < self.size:
            raise ConfigError(f"rank {rank} out of range")
        return divmod(rank, self.cols)

    def column_ranks(self, j: int) -> list[int]:
        """Ranks of processor-column j."""
        return [self.rank_of(i, j) for i in range(self.rows)]

    def row_ranks(self, i: int) -> list[int]:
        """Ranks of processor-row i."""
        return [self.rank_of(i, j) for j in range(self.cols)]


@dataclass
class TwoDResult:
    """Outcome of one 2-D BFS run."""

    root: int
    parent: np.ndarray
    levels: int
    counts: RunCounts
    timing: BfsTiming
    # Total bytes moved per level (expand + fold), for the comparison
    # against the 1-D engine's allgather volume.
    comm_bytes_per_level: list[float]

    @property
    def visited(self) -> int:
        """Number of reached vertices."""
        return int(np.count_nonzero(self.parent >= 0))

    @property
    def seconds(self) -> float:
        """Simulated wall time of the traversal."""
        return self.timing.total_seconds

    @property
    def teps(self) -> float:
        """Traversed edges per simulated second."""
        if self.seconds <= 0:
            return 0.0
        return self.counts.traversed_edges / self.seconds

    @property
    def total_comm_bytes(self) -> float:
        """Bytes moved across the whole run (expand + fold)."""
        return float(sum(self.comm_bytes_per_level))


class _LocalBlock:
    """Rank (i, j)'s arcs: CSR keyed by source within block-column j."""

    def __init__(
        self,
        graph: Graph,
        segment_partition: Partition1D,
        grid: Grid2D,
        i: int,
        j: int,
    ) -> None:
        # Block-column j sources: segments of processor-column j.
        col_ranges = [
            segment_partition.range_of(grid.rank_of(r, j))
            for r in range(grid.rows)
        ]
        # Block-row i targets: segments of processor-row i.
        row_ranges = [
            segment_partition.range_of(grid.rank_of(i, c))
            for c in range(grid.cols)
        ]
        row_lo = min(lo for lo, _ in row_ranges)
        row_hi = max(hi for _, hi in row_ranges)

        src_chunks: list[np.ndarray] = []
        dst_chunks: list[np.ndarray] = []
        for lo, hi in col_ranges:
            if lo == hi:
                continue
            start, end = graph.offsets[lo], graph.offsets[hi]
            targets = graph.targets[start:end]
            sources = np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(graph.offsets[lo : hi + 1]),
            )
            keep = (targets >= row_lo) & (targets < row_hi)
            src_chunks.append(sources[keep])
            dst_chunks.append(targets[keep])
        if src_chunks:
            self.sources = np.concatenate(src_chunks)
            self.targets = np.concatenate(dst_chunks)
            order = np.argsort(self.sources, kind="stable")
            self.sources = self.sources[order]
            self.targets = self.targets[order]
        else:
            self.sources = np.zeros(0, dtype=np.int64)
            self.targets = np.zeros(0, dtype=np.int64)

    def explore(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Arcs out of ``frontier`` (global source ids): returns
        (children, parents) with one entry per distinct child."""
        if frontier.size == 0 or self.sources.size == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z
        lo = np.searchsorted(self.sources, frontier, side="left")
        hi = np.searchsorted(self.sources, frontier, side="right")
        lens = hi - lo
        total = int(lens.sum())
        if total == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z
        flat_starts = np.cumsum(lens) - lens
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(flat_starts, lens)
            + np.repeat(lo, lens)
        )
        children = self.targets[pos]
        parents = np.repeat(frontier, lens)
        order = np.argsort(children, kind="stable")
        children, parents = children[order], parents[order]
        keep = np.empty(children.size, dtype=bool)
        keep[0] = True
        np.not_equal(children[1:], children[:-1], out=keep[1:])
        return children[keep], parents[keep]


class TwoDBFSEngine:
    """Top-down BFS on an ``R x C`` process grid."""

    def __init__(
        self,
        graph: Graph,
        cluster: ClusterSpec,
        grid: Grid2D,
        binding: BindingPolicy = BindingPolicy.BIND_TO_SOCKET,
        constants: CostConstants = CostConstants(),
    ) -> None:
        ppn = grid.size // cluster.nodes
        if grid.size % cluster.nodes != 0 or ppn < 1:
            raise ConfigError(
                f"grid size {grid.size} must be a positive multiple of the "
                f"node count {cluster.nodes}"
            )
        self.graph = graph
        self.cluster = cluster
        self.grid = grid
        self.constants = constants
        if ppn == 1 and cluster.node.sockets > 1:
            # One rank per node cannot be socket-bound (Fig. 10's note);
            # fall back to the interleaved policy.
            binding = BindingPolicy.INTERLEAVE
        self.mapping = ProcessMapping(cluster, ppn=ppn, policy=binding)
        self.comm = SimComm(cluster, self.mapping)
        n = graph.num_vertices
        if n % (grid.size * 64) != 0:
            raise ConfigError(
                f"num_vertices={n} must be a multiple of 64 * grid size "
                f"(= {grid.size * 64})"
            )
        self.segments = Partition1D(n, grid.size)
        self._blocks = {
            (i, j): _LocalBlock(graph, self.segments, grid, i, j)
            for i in range(grid.rows)
            for j in range(grid.cols)
        }
        self._states = [
            self.segments.extract_local(graph, r) for r in range(grid.size)
        ]
        self.sizes = StructureSizes(
            num_vertices=n,
            num_arcs=graph.num_directed_edges,
            num_ranks=grid.size,
            granularity=64,
        )

    def run(self, root: int) -> TwoDResult:
        """Execute one 2-D BFS from ``root`` and price it."""
        graph, grid = self.graph, self.grid
        if not 0 <= root < graph.num_vertices:
            raise GraphError(f"root {root} out of range")
        np_ranks = grid.size
        states = [RankState(lg) for lg in self._states]
        counts = RunCounts(num_vertices=graph.num_vertices, num_ranks=np_ranks)
        comm_bytes: list[float] = []

        owner = int(self.segments.owner(root))
        states[owner].discover(
            states[owner].to_local(np.array([root])), np.array([root])
        )
        frontier_segments: list[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(np_ranks)
        ]
        frontier_segments[owner] = np.array([root], dtype=np.int64)

        level = 0
        while any(f.size for f in frontier_segments):
            lc = LevelCounts(level=level, direction=Direction.TOP_DOWN)
            lc.allreduces = 1
            lc.frontier_local = np.array(
                [f.size for f in frontier_segments], dtype=np.int64
            )
            send_bytes = np.zeros((np_ranks, np_ranks), dtype=np.int64)

            # --- expand: column allgatherv of frontier segments --------
            col_frontier: dict[int, np.ndarray] = {}
            for j in range(grid.cols):
                ranks = grid.column_ranks(j)
                pieces = [frontier_segments[r] for r in ranks]
                merged = (
                    np.concatenate(pieces)
                    if any(p.size for p in pieces)
                    else np.zeros(0, dtype=np.int64)
                )
                col_frontier[j] = merged
                for src in ranks:
                    nbytes = frontier_segments[src].nbytes
                    for dst in ranks:
                        if src != dst:
                            send_bytes[src, dst] += nbytes

            # --- local exploration + fold (row alltoallv) --------------
            # The fold runs over the point-to-point layer: each rank posts
            # its (child, parent) pairs to the children's owners, one
            # superstep delivers them.  Timing is carried by the
            # td_send_bytes matrix through the standard assembler.
            ledger = MessageLedger(self.comm)
            examined = np.zeros(np_ranks, dtype=np.int64)
            for i in range(grid.rows):
                for j in range(grid.cols):
                    rank = grid.rank_of(i, j)
                    block = self._blocks[(i, j)]
                    children, parents = block.explore(col_frontier[j])
                    examined[rank] = int(
                        np.searchsorted(
                            block.sources, col_frontier[j], side="right"
                        ).sum()
                        - np.searchsorted(
                            block.sources, col_frontier[j], side="left"
                        ).sum()
                    )
                    if children.size == 0:
                        continue
                    owners = self.segments.owner(children)
                    for dst in np.unique(owners):
                        mask = owners == dst
                        pairs = np.stack(
                            [children[mask], parents[mask]], axis=1
                        )
                        ledger.send(rank, int(dst), pairs)
                        if int(dst) != rank:
                            send_bytes[rank, int(dst)] += pairs.nbytes
            ledger.exchange()

            new_segments = []
            discovered = np.zeros(np_ranks, dtype=np.int64)
            for r in range(np_ranks):
                messages = ledger.recv_all(r)
                if messages:
                    pairs = np.concatenate([m.payload for m in messages])
                    fresh = states[r].discover(
                        states[r].to_local(pairs[:, 0]), pairs[:, 1]
                    )
                    new_global = fresh + states[r].local.lo
                else:
                    new_global = np.zeros(0, dtype=np.int64)
                new_segments.append(new_global)
                discovered[r] = new_global.size
            ledger.assert_drained()

            lc.examined_edges = examined
            lc.candidates = np.zeros(np_ranks, dtype=np.int64)
            lc.inqueue_reads = np.zeros(np_ranks, dtype=np.int64)
            lc.discovered = discovered
            lc.td_send_bytes = send_bytes
            counts.levels.append(lc)
            comm_bytes.append(float(send_bytes.sum()))
            frontier_segments = new_segments
            level += 1

        counts.visited_vertices = sum(st.visited_count() for st in states)
        counts.traversed_edges = (
            sum(int(st.degrees[st.parent >= 0].sum()) for st in states) // 2
        )
        parent = np.concatenate([st.parent for st in states])
        timing = assemble(
            counts,
            self.comm,
            # 2-D is a pure top-down engine; reuse the 1-D pricing with a
            # plain configuration (no sharing, summary unused).
            _plain_config(),
            self.sizes,
            self.constants,
        )
        return TwoDResult(
            root=root,
            parent=parent,
            levels=level,
            counts=counts,
            timing=timing,
            comm_bytes_per_level=comm_bytes,
        )


    def extrapolate(self, result: TwoDResult, target_scale: int) -> TwoDResult:
        """Re-price a run at ``2**target_scale`` vertices (the 2-D
        counterpart of :func:`repro.model.extrapolate_result`)."""
        factor = (1 << target_scale) / result.counts.num_vertices
        if factor < 1.0:
            raise ConfigError("extrapolation only scales up")
        scaled = result.counts.scaled(factor)
        sizes = StructureSizes(
            num_vertices=scaled.num_vertices,
            num_arcs=int(round(self.graph.num_directed_edges * factor)),
            num_ranks=scaled.num_ranks,
            granularity=64,
        )
        timing = assemble(
            scaled, self.comm, _plain_config(), sizes, self.constants
        )
        return TwoDResult(
            root=result.root,
            parent=result.parent,
            levels=result.levels,
            counts=scaled,
            timing=timing,
            comm_bytes_per_level=[
                b * factor for b in result.comm_bytes_per_level
            ],
        )


def _plain_config():
    from repro.core.config import BFSConfig, CommConfig, TraversalMode

    return BFSConfig(
        mode=TraversalMode.TOP_DOWN, comm=CommConfig(use_summary=False)
    )
