"""Per-level trace export for BFS runs.

The paper's profiling figures (11-14) are built from per-phase, per-level
timings; this module exposes the same data programmatically and as
CSV/JSON so downstream tooling (spreadsheets, plotting) can consume a
run without touching internal objects.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass

from repro.core.engine import BFSResult

__all__ = ["LevelTraceRow", "trace_rows", "to_csv", "to_json", "gantt"]

_FIELDS = [
    "level",
    "direction",
    "switched",
    "frontier",
    "candidates",
    "examined_edges",
    "inqueue_reads",
    "discovered",
    "compute_mean_ns",
    "compute_max_ns",
    "comm_ns",
    "switch_ns",
    "stall_ns",
    "total_ns",
]


@dataclass(frozen=True)
class LevelTraceRow:
    level: int
    direction: str
    switched: bool
    frontier: int
    candidates: int
    examined_edges: int
    inqueue_reads: int
    discovered: int
    compute_mean_ns: float
    compute_max_ns: float
    comm_ns: float
    switch_ns: float
    stall_ns: float

    @property
    def total_ns(self) -> float:
        """Level total: compute + comm + switch + stall."""
        return self.compute_mean_ns + self.comm_ns + self.switch_ns + self.stall_ns

    def as_dict(self) -> dict:
        """The row as a plain dict (CSV/JSON field order)."""
        d = {f: getattr(self, f) for f in _FIELDS[:-1]}
        d["total_ns"] = self.total_ns
        return d


def trace_rows(result: BFSResult) -> list[LevelTraceRow]:
    """One row per BFS level combining counts and timings."""
    rows = []
    for lc, lt in zip(result.counts.levels, result.timing.levels):
        rows.append(
            LevelTraceRow(
                level=lc.level,
                direction=lc.direction,
                switched=lc.switched,
                frontier=int(lc.frontier_local.sum()),
                candidates=int(lc.candidates.sum()),
                examined_edges=int(lc.examined_edges.sum()),
                inqueue_reads=int(lc.inqueue_reads.sum()),
                discovered=int(lc.discovered.sum()),
                compute_mean_ns=lt.compute_mean_ns,
                compute_max_ns=lt.compute_max_ns,
                comm_ns=lt.comm_ns,
                switch_ns=lt.switch_ns,
                stall_ns=lt.stall_ns,
            )
        )
    return rows


def to_csv(result: BFSResult) -> str:
    """The run's per-level trace as CSV text."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_FIELDS)
    writer.writeheader()
    for row in trace_rows(result):
        writer.writerow(row.as_dict())
    return buf.getvalue()


def _bar_segments(row: LevelTraceRow, cells: int) -> tuple[int, int, int, int]:
    """Proportional (compute, comm, switch, stall) cell counts for one bar.

    Per-segment rounding is clamped cumulatively so the four segments
    always sum to exactly ``cells`` — independent rounding could
    otherwise exceed it (e.g. two phases at 50% of 3 cells both round
    up), producing bars longer than the requested width.
    """

    def seg(part_ns: float) -> int:
        return int(round(part_ns / row.total_ns * cells)) if row.total_ns else 0

    comp = min(cells, seg(row.compute_mean_ns))
    comm = min(cells - comp, seg(row.comm_ns))
    sw = min(cells - comp - comm, seg(row.switch_ns))
    stall = cells - comp - comm - sw
    return comp, comm, sw, stall


def gantt(result: BFSResult, width: int = 60) -> str:
    """ASCII per-level timeline of a run.

    One row per BFS level, proportional segments for compute (#),
    communication (=), switch (s) and stall (.) — the terminal analogue
    of the Fig. 11 breakdown, resolved per level.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    rows = trace_rows(result)
    total = sum(r.total_ns for r in rows) or 1.0
    lines = [
        f"per-level timeline ({result.levels} levels, "
        f"{total / 1e6:.3f} ms simulated; # compute, = comm, s switch, . stall)"
    ]
    for r in rows:
        cells = max(1, int(round(r.total_ns / total * width)))
        comp, comm, sw, stall = _bar_segments(r, cells)
        bar = "#" * comp + "=" * comm + "s" * sw + "." * stall
        tag = "TD" if r.direction == "top_down" else "BU"
        lines.append(f"L{r.level:<2d} {tag} |{bar}")
    return "\n".join(lines)


def to_json(result: BFSResult) -> str:
    """The run's trace plus summary as a JSON document."""
    doc = {
        "root": result.root,
        "levels": result.levels,
        "visited": result.visited,
        "traversed_edges": result.traversed_edges,
        "simulated_seconds": result.seconds,
        "teps": result.teps,
        "breakdown": result.timing.breakdown.as_dict(),
        "per_level": [row.as_dict() for row in trace_rows(result)],
    }
    return json.dumps(doc, indent=2)
