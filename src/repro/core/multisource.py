"""Batched multi-source BFS: one traversal pass serving up to 64 roots.

The serving layer answers many concurrent ``(graph, source)`` queries
against the same prepared graph.  Running them one engine pass per
source repeats all the per-level machinery — the frontier exchange, the
kernel dispatch, the scattered CSR loads — once per source.  This module
instead advances **all sources of a batch one level per round**,
amortizing the expensive shared work:

* the bottom-up scan gathers each candidate's adjacency once and
  answers every source from bit-packed *lane* words (one ``uint64`` lane
  per source, :mod:`repro.core.kernels.batched`);
* the top-down expansion is fused across sources and ranks into a
  handful of vectorized passes (composite-key dedup reproduces the
  per-sender coalescing buffers exactly);
* the prepared partition, the communicator, and the shared-memory
  buffers are built once per batch.

**Bit-identity contract**: every :class:`~repro.core.engine.BFSResult`
returned by :meth:`MultiSourceEngine.run_batch` is bit-identical —
parent tree, per-level counts, byte accounting, and hence priced
simulated seconds — to what ``BFSEngine.run`` produces for that root
alone.  Each source keeps its own direction policy, level counts and
(when a codec is active) allgather history, so batching changes only
host-side wall-clock, never the simulation.  The per-source allgather is
still executed for real (one per source per bottom-up level) because
codec wire bytes depend on each source's frontier content.

Batch mode intentionally rejects fault injection and resilience: replay
and rollback are per-run concepts that do not compose with shared
lanes.  Run faulty traversals through ``BFSEngine`` directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitmap import Bitmap, SummaryBitmap, summary_words_for
from repro.core.config import BFSConfig
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.engine import BFSEngine, BFSResult
from repro.core.hybrid import DirectionPolicy, FrontierStats
from repro.core.kernels.batched import MAX_LANES, pack_lanes
from repro.core.prepared import PreparedGraph
from repro.core.timing import CostConstants, assemble
from repro.obs.tracer import NULL_TRACER
from repro.core.validate import validate_parent_tree
from repro.errors import ConfigError, GraphError
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.mpi.codecs import get_codec
from repro.mpi.collectives import allgather
from repro.util import bitops
from repro.util.segments import gather_adjacency

__all__ = ["MultiSourceEngine", "run_bfs_batch"]

#: Shared inert context manager for untraced batch rounds.
_NO_SPAN = NULL_TRACER.span("")


class MultiSourceEngine:
    """Reusable batched BFS executor for one (graph, cluster, config).

    Wraps a fault-free :class:`BFSEngine` (reusing its resolved kernel,
    codec, communicator and prepared partition) and adds
    :meth:`run_batch`.  Like the engine, instances are reusable across
    batches; they are not safe for concurrent use from multiple threads
    (the serving scheduler serializes batches per session).
    """

    def __init__(
        self,
        graph: Graph,
        cluster: ClusterSpec,
        config: BFSConfig | None = None,
        constants: CostConstants = CostConstants(),
        prepared: PreparedGraph | None = None,
        metrics=None,
        tracer=None,
    ) -> None:
        config = config or BFSConfig.original_ppn8()
        self.engine = BFSEngine(
            graph, cluster, config, constants=constants, prepared=prepared,
            tracer=tracer,
        )
        # The engine resolved None to NULL_TRACER; share its choice so
        # batch spans and comm events land in the same recording.
        self.tracer = self.engine.tracer
        bounds = self.engine.partition.bounds
        # Owning rank of every vertex (partitions are contiguous ranges).
        self._owner_of = np.repeat(
            np.arange(self.engine.mapping.num_ranks, dtype=np.int64),
            np.diff(bounds),
        )
        self.metrics = metrics

    @property
    def prepared(self) -> PreparedGraph:
        """The shared immutable partition state."""
        return self.engine.prepared

    @property
    def config(self) -> BFSConfig:
        """The resolved configuration shared by every lane."""
        return self.engine.config

    # ---- the batch run ---------------------------------------------------

    def run_batch(
        self,
        roots,
        validate: bool = False,
        trace_ids=None,
        batch_id: str | None = None,
        cancel=None,
    ) -> list[BFSResult]:
        """Run one BFS per root, all advanced level-by-level together.

        Returns one :class:`BFSResult` per root, in input order, each
        bit-identical to a sequential ``BFSEngine.run(root)``.

        When the engine carries a recording tracer, the whole batch is
        wrapped in a ``batch.run`` span, each lane is marked with a
        ``batch.lane`` instant (lane index, source vertex, and — when
        the serving scheduler passed them — the request ``trace_ids``
        riding that lane), and every level-synchronous round gets a
        ``batch.level`` span.  ``batch_id`` stamps all of them so the
        serving layer's queue-wait spans link into the same chain.

        ``cancel`` is a cooperative cancellation token (anything with a
        ``check()`` raising on expiry, e.g.
        :class:`repro.serve.resilience.CancelToken`): it is consulted
        once per level-synchronous round, so a batch whose waiters all
        passed their deadlines stops traversing between levels instead
        of finishing work nobody will read.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._run_batch(roots, validate, cancel=cancel)
        with tracer.span(
            "batch.run",
            cat="batch",
            batch_id=batch_id,
            lanes=len(list(roots)),
            sources=[int(r) for r in roots],
        ):
            for lane, root in enumerate(roots):
                ids = (
                    list(trace_ids[lane])
                    if trace_ids is not None and lane < len(trace_ids)
                    else []
                )
                tracer.instant(
                    "batch.lane",
                    cat="batch",
                    lane=lane,
                    source=int(root),
                    batch_id=batch_id,
                    trace_ids=ids,
                )
            return self._run_batch(
                roots, validate, tracer=tracer, batch_id=batch_id,
                cancel=cancel,
            )

    def _run_batch(
        self,
        roots,
        validate: bool = False,
        tracer=NULL_TRACER,
        batch_id: str | None = None,
        cancel=None,
    ) -> list[BFSResult]:
        eng = self.engine
        graph = eng.graph
        n = graph.num_vertices
        roots = [int(r) for r in roots]
        num = len(roots)
        if num == 0:
            raise GraphError("batch needs at least one root")
        if num > MAX_LANES:
            raise ConfigError(
                f"batch of {num} sources exceeds the {MAX_LANES}-lane "
                f"limit; split it (the serving scheduler does)"
            )
        for r in roots:
            if not 0 <= r < n:
                raise GraphError(
                    f"root {r} out of range", vertex=r, num_vertices=n
                )

        np_ranks = eng.mapping.num_ranks
        partition = eng.partition
        bounds = partition.bounds
        degrees = eng.prepared.degrees
        config = eng.config

        parent = np.full((num, n), -1, dtype=np.int64)
        deg_csum = np.concatenate(
            [[0], np.cumsum(degrees, dtype=np.int64)]
        )
        rank_deg = deg_csum[bounds[1:]] - deg_csum[bounds[:-1]]
        unexplored = np.tile(rank_deg, (num, 1))

        frontiers: list[np.ndarray] = []
        for s, root in enumerate(roots):
            parent[s, root] = root
            owner = int(partition.owner(root))
            unexplored[s, owner] -= int(degrees[root])
            frontiers.append(np.array([root], dtype=np.int64))

        policies = [DirectionPolicy(config) for _ in range(num)]
        counts_list = [
            RunCounts(num_vertices=n, num_ranks=np_ranks)
            for _ in range(num)
        ]
        prev_dir: list[str | None] = [None] * num
        levels = [0] * num
        finished = [False] * num

        shared = eng._shared_buffers()
        visited_words = (
            np.zeros(
                (num, bitops.words_for_bits(n)), dtype=bitops.WORD_DTYPE
            )
            if eng.codec is not None
            else None
        )

        rounds = 0
        while not all(finished):
            if cancel is not None:
                cancel.check(f"batch round {rounds}")
            ctx = (
                tracer.span(
                    "batch.level",
                    cat="batch",
                    round=rounds,
                    batch_id=batch_id,
                )
                if tracer.enabled
                else _NO_SPAN
            )
            with ctx:
                td_set: list[int] = []
                bu_set: list[int] = []
                lcs: dict[int, LevelCounts] = {}
                for s in range(num):
                    if finished[s]:
                        continue
                    f = frontiers[s]
                    if f.size == 0:
                        finished[s] = True
                        continue
                    stats = FrontierStats(
                        frontier_vertices=int(f.size),
                        frontier_edges=int(degrees[f].sum()),
                        unexplored_edges=int(unexplored[s].sum()),
                        num_vertices=n,
                    )
                    direction = policies[s].decide(stats)
                    lc = LevelCounts(level=levels[s], direction=direction)
                    lc.allreduces = 3
                    lc.switched = (
                        prev_dir[s] is not None and prev_dir[s] != direction
                    )
                    lc.frontier_local = np.bincount(
                        self._owner_of[f], minlength=np_ranks
                    ).astype(np.int64)
                    lcs[s] = lc
                    if direction == Direction.TOP_DOWN:
                        td_set.append(s)
                    else:
                        bu_set.append(s)

                if td_set:
                    self._top_down_round(
                        td_set, frontiers, parent, unexplored, lcs
                    )
                if bu_set:
                    self._bottom_up_round(
                        bu_set, frontiers, parent, unexplored, lcs, shared,
                        visited_words, roots,
                    )
                for s in (*td_set, *bu_set):
                    lc = lcs[s]
                    lc.discovered = np.bincount(
                        self._owner_of[frontiers[s]], minlength=np_ranks
                    ).astype(np.int64)
                    counts_list[s].levels.append(lc)
                    prev_dir[s] = lc.direction
                    levels[s] += 1
                if tracer.enabled:
                    ctx.set(top_down=len(td_set), bottom_up=len(bu_set))
            rounds += 1

        results: list[BFSResult] = []
        for s, root in enumerate(roots):
            counts = counts_list[s]
            row = parent[s]
            counts.visited_vertices = int(np.count_nonzero(row >= 0))
            counts.traversed_edges = int(degrees[row >= 0].sum()) // 2
            timing = assemble(
                counts, eng.comm, config, eng.sizes, eng.constants
            )
            if validate:
                validate_parent_tree(graph, root, row)
            results.append(
                BFSResult(
                    root=root,
                    parent=row.copy(),
                    levels=levels[s],
                    counts=counts,
                    timing=timing,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("bfs.batch_runs_total").inc()
            self.metrics.counter("bfs.batch_sources_total").inc(num)
            self.metrics.histogram("bfs.batch_size").observe(num)
        return results

    # ---- fused top-down --------------------------------------------------

    def _top_down_round(
        self, td, frontiers, parent, unexplored, lcs
    ) -> None:
        """Expand all top-down sources in one vectorized pass.

        Reproduces, per source, exactly what the per-rank sequential
        path does: per-sender first-occurrence dedup over the flattened
        adjacency (children ascending per message), per-destination
        bucketing and byte accounting, receiver-side first-sender-wins
        coalescing, and discovery order (destination, sender, child) —
        the order matters because it feeds the next level's dedup.
        """
        eng = self.engine
        graph = eng.graph
        n = graph.num_vertices
        np_ranks = eng.mapping.num_ranks
        degrees = eng.prepared.degrees
        td_arr = np.asarray(td, dtype=np.int64)
        B = len(td)

        sizes = [frontiers[s].size for s in td]
        F = np.concatenate([frontiers[s] for s in td])
        src = np.repeat(np.arange(B, dtype=np.int64), sizes)
        owners_f = self._owner_of[F]
        gather = gather_adjacency(graph.offsets, F)

        # examined_edges per (source, sender): the full flattened
        # adjacency size, as TopDownSend.examined_edges reports.
        exam = (
            np.bincount(
                src * np_ranks + owners_f,
                weights=gather.lens.astype(np.float64),
                minlength=B * np_ranks,
            )
            .astype(np.int64)
            .reshape(B, np_ranks)
        )

        children = graph.targets[gather.pos]
        par_flat = np.repeat(F, gather.lens)
        src_flat = np.repeat(src, gather.lens)
        sender_flat = np.repeat(owners_f, gather.lens)

        # Per-(source, sender) dedup, first occurrence's parent wins —
        # np.unique returns first-occurrence indices, and its sorted
        # order yields children ascending per (source, sender), which is
        # exactly the sequential per-destination message content.
        key = (src_flat * np_ranks + sender_flat) * n + children
        _, idx = np.unique(key, return_index=True)
        kc = children[idx]
        kp = par_flat[idx]
        ks = src_flat[idx]
        ksend = sender_flat[idx]
        kown = self._owner_of[kc]

        send_bytes = (
            np.bincount(
                (ks * np_ranks + ksend) * np_ranks + kown,
                minlength=B * np_ranks * np_ranks,
            )
            .reshape(B, np_ranks, np_ranks)
            .astype(np.int64)
            * 16  # one (child, parent) int64 pair per kept entry
        )

        # Receiver side: messages arrive sender-ascending, each sorted by
        # child, and the first occurrence of a child wins (= the lowest
        # sender).  Sorting kept pairs into (source, owner, sender,
        # child) order makes "first occurrence in array order" exactly
        # that winner.  One fused-key argsort replaces the four-key
        # lexsort: each component is strictly below its radix.
        order = np.argsort(
            ((ks * np_ranks + kown) * np_ranks + ksend) * n + kc,
            kind="stable",
        )
        kc, kp, ks, ksend, kown = (
            kc[order], kp[order], ks[order], ksend[order], kown[order]
        )
        key2 = (ks * np_ranks + kown) * n + kc
        _, idx2 = np.unique(key2, return_index=True)
        win = np.sort(idx2)  # winners, back in discovery order
        wc, wp, wsrc, wown = kc[win], kp[win], ks[win], kown[win]

        fresh = parent[td_arr[wsrc], wc] < 0
        wc, wp, wsrc, wown = wc[fresh], wp[fresh], wsrc[fresh], wown[fresh]
        parent[td_arr[wsrc], wc] = wp
        unexplored[td_arr] -= (
            np.bincount(
                wsrc * np_ranks + wown,
                weights=degrees[wc].astype(np.float64),
                minlength=B * np_ranks,
            )
            .astype(np.int64)
            .reshape(B, np_ranks)
        )

        cuts = np.searchsorted(wsrc, np.arange(B + 1))
        for b, s in enumerate(td):
            frontiers[s] = wc[cuts[b]:cuts[b + 1]].copy()
            lc = lcs[s]
            lc.examined_edges = exam[b]
            lc.candidates = np.zeros(np_ranks, dtype=np.int64)
            lc.inqueue_reads = np.zeros(np_ranks, dtype=np.int64)
            lc.td_send_bytes = send_bytes[b]

    # ---- batched bottom-up -----------------------------------------------

    def _bottom_up_round(
        self, bu, frontiers, parent, unexplored, lcs, shared,
        visited_words, roots,
    ) -> None:
        """One bottom-up level for all batched sources.

        The allgather (and its codec byte accounting) runs per source —
        wire bytes depend on each source's frontier content — but the
        scan itself is a single lane pass per rank.
        """
        eng = self.engine
        graph = eng.graph
        n = graph.num_vertices
        np_ranks = eng.mapping.num_ranks
        degrees = eng.prepared.degrees
        config = eng.config
        word_starts = eng._word_starts
        granularity = config.granularity
        use_summary = config.use_summary
        B = len(bu)

        inq_bools = np.zeros((B, n), dtype=bool)
        if use_summary:
            summary_words = summary_words_for(n, granularity)
            nblocks = -(-n // granularity)
            sum_bools = np.zeros((B, nblocks), dtype=bool)
        max_part_words = int(np.diff(word_starts).max(initial=0))

        for b, s in enumerate(bu):
            lc = lcs[s]
            f = frontiers[s]
            # Rank partitions are word-aligned (PreparedGraph enforces
            # it), so the per-rank bitmap parts are exactly slices of
            # the full-graph bitmap: one set_bits covers all ranks.
            fwords = np.zeros(
                bitops.words_for_bits(n), dtype=bitops.WORD_DTYPE
            )
            bitops.set_bits(fwords, f)
            lc.inq_part_words = max_part_words
            if use_summary:
                lc.summary_part_words = summary_words / np_ranks

            if eng.codec is None:
                # Without a frontier codec the wire accounting is
                # count-determined (raw parts) and the gathered payload
                # is exactly the full-graph frontier bitmap just built —
                # the functional collective would only re-concatenate
                # the slices, so skip it.
                lc.codec = None
                total_bytes = float(fwords.nbytes)
                lc.inq_raw_total_bytes = total_bytes
                lc.inq_wire_total_bytes = total_bytes
                lc.inq_wire_part_bytes = lc.inq_part_words * 8.0
                full_words = fwords
            else:
                parts = [
                    fwords[word_starts[r]:word_starts[r + 1]]
                    for r in range(np_ranks)
                ]
                visited_parts = None
                if visited_words is not None:
                    row = visited_words[s]
                    visited_parts = [
                        row[word_starts[r]:word_starts[r + 1]]
                        for r in range(np_ranks)
                    ]
                res = allgather(
                    eng.comm, parts, config.in_queue_algorithm(), shared,
                    codec=eng.codec,
                    visited_parts=visited_parts,
                    subgroups=config.comm.subgroups,
                )
                lc.codec = res.codec
                lc.inq_raw_total_bytes = res.raw_bytes
                lc.inq_wire_total_bytes = res.wire_bytes
                lc.inq_wire_part_bytes = res.wire_part_bytes
                full_words = (
                    shared[0].data if shared is not None else res.data
                ).copy()
                if visited_words is not None:
                    np.bitwise_or(
                        visited_words[s], full_words, out=visited_words[s]
                    )
            inq_bools[b] = bitops.bits_to_bool(full_words, n)
            if use_summary:
                summary = SummaryBitmap.build(
                    Bitmap(n, words=full_words), granularity
                )
                sum_bools[b] = bitops.bits_to_bool(summary.words, nblocks)
                raw_bytes = summary_words * 8.0
                lc.summary_raw_total_bytes = raw_bytes
                if lc.codec not in (None, "raw"):
                    enc = get_codec(lc.codec).encode(summary.words)
                    lc.summary_wire_total_bytes = float(enc.wire_nbytes)
                    lc.summary_wire_part_bytes = (
                        float(enc.wire_nbytes) / np_ranks
                    )
                else:
                    lc.summary_wire_total_bytes = raw_bytes
                    lc.summary_wire_part_bytes = (
                        lc.summary_part_words * 8.0
                    )

        inq_lanes = pack_lanes(inq_bools)
        summary_lanes = pack_lanes(sum_bools) if use_summary else None
        bu_arr = np.asarray(bu, dtype=np.int64)
        act_lanes = pack_lanes((parent[bu_arr] < 0) & (degrees > 0))

        # One scan over the whole graph: the counts come back split per
        # rank via the owner groups, and — partitions being contiguous
        # ascending ranges — the (lane, vertex) discovery order is
        # already the sequential rank-major order.
        res = eng.kernel.bottom_up_scan_batch(
            graph,
            act_lanes,
            inq_lanes,
            summary_lanes,
            granularity,
            groups=self._owner_of,
            num_groups=np_ranks,
        )
        cuts = np.searchsorted(res.disc_lane, np.arange(B + 1))
        for b, s in enumerate(bu):
            lc = lcs[s]
            lc.candidates = res.candidates[:, b].copy()
            lc.examined_edges = res.examined_edges[:, b].copy()
            lc.inqueue_reads = res.inqueue_reads[:, b].copy()
            discovered = res.disc_local[cuts[b]:cuts[b + 1]]
            if discovered.size:
                parent[s, discovered] = res.disc_parent[
                    cuts[b]:cuts[b + 1]
                ]
                unexplored[s] -= (
                    np.bincount(
                        self._owner_of[discovered],
                        weights=degrees[discovered].astype(np.float64),
                        minlength=np_ranks,
                    ).astype(np.int64)
                )
            frontiers[s] = discovered.copy()


def run_bfs_batch(
    graph: Graph,
    roots,
    cluster: ClusterSpec | None = None,
    config: BFSConfig | None = None,
    validate: bool = False,
    prepared: PreparedGraph | None = None,
) -> list[BFSResult]:
    """One-call batched traversal (the multi-source ``run_bfs``)."""
    from repro.machine.spec import paper_cluster

    cluster = cluster or paper_cluster(nodes=1)
    return MultiSourceEngine(
        graph, cluster, config, prepared=prepared
    ).run_batch(roots, validate=validate)
