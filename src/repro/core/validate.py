"""Graph500-style BFS tree validation.

The Graph500 specification requires each BFS result to pass five checks;
we implement them all on the global parent array:

1. the root's parent is itself;
2. every reached vertex has a parent that is also reached;
3. the parent edges exist in the input graph;
4. following parents from any reached vertex terminates at the root,
   and the implied levels satisfy ``level[v] == level[parent[v]] + 1``;
5. every input edge connects vertices whose levels differ by at most one,
   and no edge connects a reached vertex to an unreached one (so the
   whole component was discovered).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graph.types import Graph

__all__ = ["compute_levels", "validate_parent_tree"]


def compute_levels(graph: Graph, root: int, parent: np.ndarray) -> np.ndarray:
    """BFS levels implied by a parent array (-1 for unreached vertices).

    Levels are derived by repeated parent-pointer jumping, which also
    proves that every reached vertex drains to the root (check 4): if a
    parent chain does not terminate within ``num_vertices`` hops, a cycle
    exists and validation fails.
    """
    n = graph.num_vertices
    if parent.shape != (n,):
        raise ValidationError(
            f"parent array has shape {parent.shape}, expected ({n},)"
        )
    if parent[root] != root:
        raise ValidationError(f"root {root} is not its own parent")

    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    reached = parent >= 0
    # Children of the current frontier = reached vertices whose parent is
    # in the frontier and that have no level yet.
    remaining = np.flatnonzero(reached & (level < 0))
    depth = 0
    while remaining.size:
        depth += 1
        if depth > n:
            raise ValidationError("parent chains contain a cycle")
        is_front = np.zeros(n, dtype=bool)
        is_front[frontier] = True
        next_mask = is_front[parent[remaining]]
        frontier = remaining[next_mask]
        if frontier.size == 0:
            raise ValidationError(
                f"{remaining.size} reached vertices do not drain to the root"
            )
        level[frontier] = depth
        remaining = remaining[~next_mask]
    return level


def validate_parent_tree(
    graph: Graph, root: int, parent: np.ndarray
) -> np.ndarray:
    """Run all five Graph500 checks; returns the level array on success."""
    n = graph.num_vertices
    parent = np.asarray(parent, dtype=np.int64)
    reached = parent >= 0
    if not reached[root]:
        raise ValidationError("root is unreached")

    # Check 2: parents of reached vertices are reached and in range.
    p = parent[reached]
    if p.size and (int(p.min()) < 0 or int(p.max()) >= n):
        raise ValidationError("parent id out of range")
    if not np.all(reached[p]):
        raise ValidationError("a reached vertex has an unreached parent")

    # Check 3: non-root parent edges exist in the graph (vectorized via
    # sorted edge keys: arc (u, v) -> u * n + v).
    children = np.flatnonzero(reached)
    children = children[children != root]
    if children.size:
        row = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.offsets)
        )
        edge_keys = row * np.int64(n) + graph.targets  # sorted by CSR order
        pair_keys = parent[children] * np.int64(n) + children
        pos = np.searchsorted(edge_keys, pair_keys)
        present = (pos < edge_keys.size) & (
            edge_keys[np.minimum(pos, edge_keys.size - 1)] == pair_keys
        )
        if not np.all(present):
            v = int(children[np.flatnonzero(~present)[0]])
            raise ValidationError(
                f"tree edge ({int(parent[v])}, {v}) is not an edge of "
                f"the graph"
            )

    # Checks 1 and 4 (cycle-freedom, drainage, level consistency).
    level = compute_levels(graph, root, parent)
    if np.any(reached & (level < 0)):
        raise ValidationError("a reached vertex received no level")

    # Check 5: every graph edge spans at most one level, and reached
    # vertices have no unreached neighbours (completeness).
    row = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.offsets)
    )
    col = graph.targets
    lr, lcol = level[row], level[col]
    both = (lr >= 0) & (lcol >= 0)
    if np.any((lr >= 0) != (lcol >= 0)):
        raise ValidationError(
            "an edge connects a reached vertex to an unreached one "
            "(BFS did not exhaust the component)"
        )
    if np.any(np.abs(lr[both] - lcol[both]) > 1):
        raise ValidationError("an edge spans more than one BFS level")
    return level
