"""The paper's primary contribution: the NUMA-optimized hybrid BFS.

Public surface:

* :class:`BFSConfig` / :func:`paper_variants` — the optimization stack;
* :class:`BFSEngine` / :class:`BFSResult` — one BFS run;
* :func:`run_graph500` — the Graph500 evaluation protocol;
* :class:`Bitmap` / :class:`SummaryBitmap` — the frontier structures;
* :func:`validate_parent_tree` — the five Graph500 checks;
* :class:`PreparedGraph` / :class:`PreparedGraphCache` — immutable
  partition state shared across queries (the session API's substrate);
* :class:`MultiSourceEngine` / :func:`run_bfs_batch` — batched
  multi-source BFS (up to 64 sources per traversal pass).
"""

from repro.core.api import ConfigComparison, compare_configs, optimization_stack, run_bfs
from repro.core.bitmap import Bitmap, SummaryBitmap, summary_words_for
from repro.core.config import (
    BFSConfig,
    CommConfig,
    SharingVariant,
    TraversalMode,
    paper_variants,
)
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.engine import BFSEngine, BFSResult
from repro.core.hybrid import DirectionPolicy, FrontierStats
from repro.core.multisource import MultiSourceEngine, run_bfs_batch
from repro.core.prepared import (
    PreparedGraph,
    PreparedGraphCache,
    default_prepared_cache,
    graph_digest,
    reset_default_prepared_cache,
)
from repro.core.kernels import (
    ActiveSetBackend,
    KernelBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.state import RankState
from repro.core.teps import Graph500Result, run_graph500
from repro.core.timing import (
    BfsTiming,
    CostConstants,
    PhaseBreakdown,
    StructureSizes,
    assemble,
)
from repro.core.trace import gantt, to_csv, to_json, trace_rows
from repro.core.twod import Grid2D, TwoDBFSEngine, TwoDResult
from repro.core.validate import compute_levels, validate_parent_tree

__all__ = [
    "ConfigComparison",
    "compare_configs",
    "optimization_stack",
    "run_bfs",
    "Bitmap",
    "SummaryBitmap",
    "summary_words_for",
    "BFSConfig",
    "CommConfig",
    "SharingVariant",
    "TraversalMode",
    "paper_variants",
    "Direction",
    "LevelCounts",
    "RunCounts",
    "BFSEngine",
    "BFSResult",
    "MultiSourceEngine",
    "run_bfs_batch",
    "PreparedGraph",
    "PreparedGraphCache",
    "graph_digest",
    "default_prepared_cache",
    "reset_default_prepared_cache",
    "DirectionPolicy",
    "FrontierStats",
    "ActiveSetBackend",
    "KernelBackend",
    "ReferenceBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "RankState",
    "Graph500Result",
    "run_graph500",
    "BfsTiming",
    "CostConstants",
    "PhaseBreakdown",
    "StructureSizes",
    "assemble",
    "compute_levels",
    "validate_parent_tree",
    "gantt",
    "to_csv",
    "to_json",
    "trace_rows",
    "Grid2D",
    "TwoDBFSEngine",
    "TwoDResult",
]
