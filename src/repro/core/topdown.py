"""Top-down BFS step (the ``mpi_simple`` approach of the Graph500
reference code).

Each rank expands the frontier vertices it owns: it walks their adjacency
lists and routes every (neighbour, would-be parent) pair to the
neighbour's owner; owners keep the first parent for each undiscovered
vertex.  The pair exchange is the only communication of a top-down level
(an ``alltoallv``), which is why the paper's bitmap/allgather machinery
only concerns the bottom-up phase.

The expansion itself lives on the kernel backend layer
(:meth:`repro.core.kernels.KernelBackend.top_down_expand`) — the shared
numpy implementation dedups (child, parent) pairs on an adaptive linear
scatter path instead of the historic ``O(E log E)`` argsort, and the
``cnative`` backend overrides it with a compiled first-parent-wins
scatter producing bit-identical pairs.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import KernelBackend, default_backend
from repro.core.kernels.base import TopDownSend
from repro.core.state import RankState
from repro.graph.partition import Partition1D
from repro.obs.tracer import NULL_TRACER

__all__ = ["TopDownSend", "expand", "apply_received", "PAIR_BYTES"]

# A (child, parent) pair on the wire: two int64 vertex ids.
PAIR_BYTES = 16


def expand(
    state: RankState,
    frontier_local: np.ndarray,
    partition: Partition1D,
    tracer=NULL_TRACER,
    rank: int = 0,
    backend: KernelBackend | None = None,
) -> TopDownSend:
    """Expand the local frontier, producing per-owner discovery messages.

    ``frontier_local`` holds *local* vertex ids of this rank's frontier
    members.  Pairs are deduplicated per (child) within the message, as
    the reference code's per-destination coalescing buffers do.
    ``backend`` selects the kernel backend (``None`` = process default);
    all backends share one expansion.  With a recording ``tracer`` the
    expansion is wrapped in a ``td.expand`` span carrying the rank's
    frontier size and examined edge count.
    """
    if backend is None:
        backend = default_backend()
    with tracer.span("td.expand", cat="compute", rank=rank) as sp:
        out = backend.top_down_expand(state, frontier_local, partition)
        if tracer.enabled:
            sp.set(
                frontier=out.frontier_size,
                examined_edges=out.examined_edges,
            )
    return out


def apply_received(
    state: RankState,
    received: list[np.ndarray],
    tracer=NULL_TRACER,
    rank: int = 0,
) -> np.ndarray:
    """Apply incoming (child, parent) pairs; returns newly discovered
    *local* vertex ids (the rank's share of the next frontier)."""
    with tracer.span("td.apply", cat="compute", rank=rank) as sp:
        nonempty = [np.asarray(m, dtype=np.int64) for m in received if m.size]
        if not nonempty:
            return np.zeros(0, dtype=np.int64)
        pairs = np.concatenate(nonempty, axis=0)
        local_ids = state.to_local(pairs[:, 0])
        discovered = state.discover(local_ids, pairs[:, 1])
        if tracer.enabled:
            sp.set(received_pairs=int(pairs.shape[0]), discovered=int(discovered.size))
    return discovered
