"""Top-down BFS step (the ``mpi_simple`` approach of the Graph500
reference code).

Each rank expands the frontier vertices it owns: it walks their adjacency
lists and routes every (neighbour, would-be parent) pair to the
neighbour's owner; owners keep the first parent for each undiscovered
vertex.  The pair exchange is the only communication of a top-down level
(an ``alltoallv``), which is why the paper's bitmap/allgather machinery
only concerns the bottom-up phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import RankState
from repro.graph.partition import Partition1D
from repro.obs.tracer import NULL_TRACER

__all__ = ["TopDownSend", "expand", "apply_received", "PAIR_BYTES"]

# A (child, parent) pair on the wire: two int64 vertex ids.
PAIR_BYTES = 16


@dataclass
class TopDownSend:
    """Outcome of one rank's top-down expansion."""

    # Per-destination-rank arrays of shape (k, 2): (child, parent) pairs.
    outbox: list[np.ndarray]
    frontier_size: int
    examined_edges: int


def expand(
    state: RankState,
    frontier_local: np.ndarray,
    partition: Partition1D,
    tracer=NULL_TRACER,
    rank: int = 0,
) -> TopDownSend:
    """Expand the local frontier, producing per-owner discovery messages.

    ``frontier_local`` holds *local* vertex ids of this rank's frontier
    members.  Pairs are deduplicated per (child) within the message, as
    the reference code's per-destination coalescing buffers do.  With a
    recording ``tracer`` the expansion is wrapped in a ``td.expand`` span
    carrying the rank's frontier size and examined edge count.
    """
    with tracer.span("td.expand", cat="compute", rank=rank) as sp:
        out = _expand(state, frontier_local, partition)
        if tracer.enabled:
            sp.set(
                frontier=out.frontier_size,
                examined_edges=out.examined_edges,
            )
    return out


def _expand(
    state: RankState,
    frontier_local: np.ndarray,
    partition: Partition1D,
) -> TopDownSend:
    lg = state.local
    num_parts = partition.num_parts
    frontier_local = np.asarray(frontier_local, dtype=np.int64)

    if frontier_local.size == 0:
        empty = [np.zeros((0, 2), dtype=np.int64) for _ in range(num_parts)]
        return TopDownSend(outbox=empty, frontier_size=0, examined_edges=0)

    starts = lg.offsets[frontier_local]
    lens = lg.offsets[frontier_local + 1] - starts
    total = int(lens.sum())
    if total == 0:
        empty = [np.zeros((0, 2), dtype=np.int64) for _ in range(num_parts)]
        return TopDownSend(
            outbox=empty,
            frontier_size=int(frontier_local.size),
            examined_edges=0,
        )

    # Flatten the adjacency of all frontier vertices.
    flat_starts = np.cumsum(lens) - lens
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(flat_starts, lens)
        + np.repeat(starts, lens)
    )
    children = lg.targets[pos]
    parents = np.repeat(frontier_local + lg.lo, lens)

    # One pair per distinct child (first parent encountered wins locally).
    order = np.argsort(children, kind="stable")
    children = children[order]
    parents = parents[order]
    keep = np.empty(children.size, dtype=bool)
    keep[0] = True
    np.not_equal(children[1:], children[:-1], out=keep[1:])
    children = children[keep]
    parents = parents[keep]

    owners = partition.owner(children)
    outbox: list[np.ndarray] = []
    # children are sorted, so owners are sorted: split by owner boundary.
    bounds = np.searchsorted(owners, np.arange(num_parts + 1))
    for dest in range(num_parts):
        lo, hi = bounds[dest], bounds[dest + 1]
        pairs = np.stack([children[lo:hi], parents[lo:hi]], axis=1)
        outbox.append(np.ascontiguousarray(pairs))
    return TopDownSend(
        outbox=outbox,
        frontier_size=int(frontier_local.size),
        examined_edges=total,
    )


def apply_received(
    state: RankState,
    received: list[np.ndarray],
    tracer=NULL_TRACER,
    rank: int = 0,
) -> np.ndarray:
    """Apply incoming (child, parent) pairs; returns newly discovered
    *local* vertex ids (the rank's share of the next frontier)."""
    with tracer.span("td.apply", cat="compute", rank=rank) as sp:
        nonempty = [np.asarray(m, dtype=np.int64) for m in received if m.size]
        if not nonempty:
            return np.zeros(0, dtype=np.int64)
        pairs = np.concatenate(nonempty, axis=0)
        local_ids = state.to_local(pairs[:, 0])
        discovered = state.discover(local_ids, pairs[:, 1])
        if tracer.enabled:
            sp.set(received_pairs=int(pairs.shape[0]), discovered=int(discovered.size))
    return discovered
