"""Per-rank mutable BFS state."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.graph.partition import LocalGraph

__all__ = ["RankState"]


@dataclass
class RankState:
    """Everything one simulated MPI process owns during a BFS run."""

    local: LocalGraph
    # parent[i] is the global parent id of local vertex (lo + i); -1 while
    # undiscovered; the root is its own parent (Graph500 convention).
    parent: np.ndarray = field(init=False)
    # Sum of degrees of still-undiscovered local vertices; used by the
    # hybrid policy (m_u of Beamer's alpha test), maintained decrementally.
    unexplored_degree: int = field(init=False)
    degrees: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = self.local.num_local_vertices
        self.parent = np.full(n, -1, dtype=np.int64)
        self.degrees = np.diff(self.local.offsets)
        self.unexplored_degree = int(self.degrees.sum())

    @property
    def rank(self) -> int:
        """This state's MPI rank."""
        return self.local.rank

    def to_local(self, vertices: np.ndarray) -> np.ndarray:
        """Translate global vertex ids owned by this rank to local ids."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (
            int(v.min()) < self.local.lo or int(v.max()) >= self.local.hi
        ):
            raise SimulationError(
                f"rank {self.rank}: vertex outside owned range "
                f"[{self.local.lo}, {self.local.hi})"
            )
        return v - self.local.lo

    def discover(self, local_ids: np.ndarray, parents: np.ndarray) -> np.ndarray:
        """Record parents for previously-unvisited local vertices.

        Returns the subset of ``local_ids`` that were actually new (first
        writer wins, as in the reference code's atomic compare-and-swap).
        """
        local_ids = np.asarray(local_ids, dtype=np.int64)
        parents = np.asarray(parents, dtype=np.int64)
        if local_ids.shape != parents.shape:
            raise SimulationError("discover: mismatched id/parent arrays")
        fresh = self.parent[local_ids] < 0
        # With duplicate ids in one batch, keep the first occurrence only.
        if local_ids.size:
            first_occurrence = np.zeros(local_ids.size, dtype=bool)
            _, first_idx = np.unique(local_ids, return_index=True)
            first_occurrence[first_idx] = True
            fresh &= first_occurrence
        ids = local_ids[fresh]
        self.parent[ids] = parents[fresh]
        self.unexplored_degree -= int(self.degrees[ids].sum())
        return ids

    def unvisited_local(self) -> np.ndarray:
        """Local ids of undiscovered vertices with at least one edge."""
        return np.flatnonzero((self.parent < 0) & (self.degrees > 0))

    def visited_count(self) -> int:
        """Number of discovered local vertices."""
        return int(np.count_nonzero(self.parent >= 0))
