"""The distributed hybrid BFS engine (Fig. 1 of the paper).

The engine executes the real algorithm on real data: the graph is 1-D
partitioned over ``nodes x ppn`` simulated MPI ranks, every level is
expanded either top-down (queue exchange over ``alltoallv``) or bottom-up
(scan against the allgathered ``in_queue`` bitmap plus its summary), and
the output is a genuine, validatable BFS parent tree.

Simulated time never influences the functional result; the engine records
per-rank event counts (:mod:`repro.core.counts`) and prices them with
:func:`repro.core.timing.assemble`, so the identical run can also be
priced at a larger target scale (:mod:`repro.model`).

Level structure (matching Fig. 1 and the profiling categories of
Fig. 11):

* direction decision from allreduced frontier statistics;
* *switch*: frontier representation conversion when the direction
  changed (queue <-> bitmap);
* bottom-up levels start by allgathering the out_queue parts into the
  next ``in_queue`` (and its summary — "the two allgathers"); top-down
  levels exchange (child, parent) pairs instead;
* compute step; barrier (stall accounting); termination allreduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import bottomup, topdown
from repro.core.bitmap import Bitmap, SummaryBitmap, summary_words_for
from repro.core.config import BFSConfig
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.hybrid import DirectionPolicy, FrontierStats
from repro.core.kernels import resolve_backend
from repro.core.prepared import PreparedGraph
from repro.core.state import RankState
from repro.core.timing import BfsTiming, CostConstants, StructureSizes, assemble
from repro.errors import FaultError, GraphError
from repro.faults.checkpoint import BFSCheckpoint
from repro.faults.injector import (
    FaultInjector,
    PayloadCorruptionFault,
    TransientCollectiveFault,
    words_checksum,
)
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryLog, RecoveryReport, ResilienceConfig
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.mpi.codecs import get_codec, resolve_codec
from repro.mpi.collectives import allgather
from repro.mpi.sharedmem import NodeSharedBuffer
from repro.mpi.simcomm import SimComm
from repro.obs.hostprof import NULL_HOSTPROF
from repro.obs.tracer import NULL_TRACER, RunTelemetry
from repro.util import bitops

__all__ = ["BFSEngine", "BFSResult"]


@dataclass
class BFSResult:
    """Everything one BFS run produced."""

    root: int
    parent: np.ndarray  # global parent array, -1 = unreached
    levels: int
    counts: RunCounts
    timing: BfsTiming
    # Filled only when the engine ran with a recording tracer.
    telemetry: RunTelemetry | None = None
    # Filled only when the engine ran with fault tolerance enabled.
    recovery: RecoveryReport | None = None

    @property
    def visited(self) -> int:
        """Number of reached vertices (including the root)."""
        return int(np.count_nonzero(self.parent >= 0))

    @property
    def traversed_edges(self) -> int:
        """Undirected input edges in the root's component (TEPS numerator)."""
        return self.counts.traversed_edges

    @property
    def seconds(self) -> float:
        """Simulated wall time of the traversal.

        A recovered run honestly pays for what fault tolerance did:
        retransmissions, backoff, checkpoints, restores and replayed
        levels all land on top of the fault-free pricing (``timing``
        itself stays fault-free-equivalent so recovered runs can be
        compared bit-for-bit against a clean baseline).
        """
        total = self.timing.total_seconds
        if self.recovery is not None:
            total += self.recovery.overhead_seconds
        return total

    @property
    def teps(self) -> float:
        """Traversed edges per (simulated) second, the Graph500 metric."""
        if self.seconds <= 0:
            return 0.0
        return self.traversed_edges / self.seconds


class BFSEngine:
    """Reusable BFS executor for one (graph, cluster, config) triple."""

    def __init__(
        self,
        graph: Graph,
        cluster: ClusterSpec,
        config: BFSConfig,
        constants: CostConstants = CostConstants(),
        tracer=None,
        metrics=None,
        faults: FaultPlan | FaultInjector | None = None,
        resilience: ResilienceConfig | None = None,
        hostprof=None,
        prepared: PreparedGraph | None = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.config = config
        self.constants = constants
        # Telemetry is opt-in: the default null tracer makes every hook a
        # no-op and ``metrics=None`` skips all registry updates, so the
        # undecorated hot path is unchanged.  Host profiling follows the
        # same pattern: the null profiler's phase() returns a shared inert
        # context manager.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hostprof = hostprof if hostprof is not None else NULL_HOSTPROF
        self.metrics = metrics
        # Fault tolerance is opt-in the same way: with no plan the
        # injector stays None, no communicator hook fires, and the level
        # loop takes the exact seed path.  A plan implies a (default)
        # ResilienceConfig; a ResilienceConfig alone enables
        # checkpointing/verification without injecting anything.
        if isinstance(faults, FaultPlan):
            faults = None if faults.empty else FaultInjector(faults)
        self.injector: FaultInjector | None = faults
        if self.injector is not None:
            self.injector.bind(tracer=self.tracer, metrics=self.metrics)
            if resilience is None:
                resilience = ResilienceConfig()
        self.resilience = resilience
        self._log: RecoveryLog | None = None
        # Kernel backend: config.kernel > $REPRO_KERNEL > registry default.
        # Backends are bit-identical on all priced counts (enforced by the
        # equivalence suite), so this only changes speed and memory.
        self.kernel = resolve_backend(config)
        # Frontier codec: config.comm.codec > $REPRO_CODEC > "raw".
        # Codecs are lossless (round-trip enforced inside allgather), so
        # they change only the simulated wire bytes/time; the identity
        # codec is dropped here so the raw path stays byte-for-byte the
        # uninstrumented one.
        codec = resolve_codec(config)
        self.codec = None if codec.is_identity else codec
        # Partition/CSR build work lives on the immutable PreparedGraph so
        # it can be shared across engines and queries (and cached by the
        # serving layer).  A caller-supplied one is validated against the
        # requested (graph, cluster, config); otherwise we build our own.
        if prepared is None:
            prepared = PreparedGraph.prepare(graph, cluster, config)
        else:
            prepared.check(graph, cluster, config)
        self.prepared = prepared
        self.mapping = prepared.mapping
        self.comm = SimComm(cluster, self.mapping, tracer=self.tracer)
        self.comm.injector = self.injector
        np_ranks = self.mapping.num_ranks
        self.partition = prepared.partition
        self._locals = prepared.locals
        self._part_words = prepared.part_words
        # Word offset of each rank's slice in the concatenated bitmap
        # (partition bounds are 64-aligned, so slices tile exactly); used
        # to hand the sieve codec per-rank views of the visited mask.
        self._word_starts = prepared.word_starts
        self.sizes = StructureSizes(
            num_vertices=graph.num_vertices,
            num_arcs=graph.num_directed_edges,
            num_ranks=np_ranks,
            granularity=config.granularity,
        )

    # ---- helpers -------------------------------------------------------------

    def _shared_buffers(self) -> list[NodeSharedBuffer] | None:
        if not self.config.shares_in_queue:
            return None
        total_words = bitops.words_for_bits(self.graph.num_vertices)
        return [
            NodeSharedBuffer(node, total_words)
            for node in range(self.cluster.nodes)
        ]

    def _frontier_parts(
        self, frontier_lists: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Build per-rank out_queue bitmap parts from local frontier lists."""
        parts = []
        for r, lst in enumerate(frontier_lists):
            words = np.zeros(self._part_words[r], dtype=bitops.WORD_DTYPE)
            bitops.set_bits(words, np.asarray(lst, dtype=np.int64))
            parts.append(words)
        return parts

    def _global_stats(
        self, states: list[RankState], frontier_lists: list[np.ndarray]
    ) -> FrontierStats:
        n_f = sum(len(lst) for lst in frontier_lists)
        m_f = sum(
            int(st.degrees[np.asarray(lst, dtype=np.int64)].sum())
            for st, lst in zip(states, frontier_lists)
        )
        m_u = sum(st.unexplored_degree for st in states)
        return FrontierStats(
            frontier_vertices=n_f,
            frontier_edges=m_f,
            unexplored_edges=m_u,
            num_vertices=self.graph.num_vertices,
        )

    # ---- the run -----------------------------------------------------------

    def run(self, root: int) -> BFSResult:
        """Execute one BFS from ``root`` and price it."""
        graph = self.graph
        if not 0 <= root < graph.num_vertices:
            raise GraphError(f"root {root} out of range")
        np_ranks = self.mapping.num_ranks
        states = [RankState(lg) for lg in self._locals]
        counts = RunCounts(
            num_vertices=graph.num_vertices, num_ranks=np_ranks
        )
        policy = DirectionPolicy(self.config)
        shared = self._shared_buffers()
        # Union of all previously allgathered in_queues: common knowledge
        # shared by encoder and decoder, which the sieve codec exploits.
        # Only maintained when a non-identity codec is active — the raw
        # path stays exactly the seed implementation.
        visited_words = (
            np.zeros(bitops.words_for_bits(graph.num_vertices),
                     dtype=bitops.WORD_DTYPE)
            if self.codec is not None
            else None
        )

        inj = self.injector
        res_cfg = self.resilience
        tolerant = res_cfg is not None
        log = RecoveryLog() if tolerant else None
        self._log = log
        if inj is not None:
            inj.reset()
        if tolerant:
            res_cfg.store.clear()
        last_ckpt_level = -1

        owner = int(self.partition.owner(root))
        root_local = states[owner].to_local(np.array([root]))
        states[owner].discover(root_local, np.array([root]))
        frontier_lists: list[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(np_ranks)
        ]
        frontier_lists[owner] = root_local

        tr = self.tracer
        hp = self.hostprof
        level = 0
        prev_direction: str | None = None
        with tr.span("bfs.run", cat="run", root=root), hp.phase("run"):
            while True:
                with hp.phase("frontier_stats"):
                    stats = self._global_stats(states, frontier_lists)
                if stats.frontier_vertices == 0:
                    break
                if (
                    tolerant
                    and res_cfg.checkpoint_every > 0
                    and level % res_cfg.checkpoint_every == 0
                    and level != last_ckpt_level
                ):
                    # Top-of-level snapshot: captured *before* the
                    # direction decision so a rollback replays it too.
                    # After a rollback the restored level's state is
                    # identical to the stored snapshot, so it is skipped
                    # rather than re-captured (and re-priced).
                    last_ckpt_level = level
                    with hp.phase("checkpoint"):
                        self._checkpoint(
                            level, prev_direction, policy, states,
                            frontier_lists, visited_words, log,
                        )
                if inj is not None:
                    inj.begin_level(level)
                direction = policy.decide(stats, tracer=tr)
                lc = LevelCounts(level=level, direction=direction)
                # Frontier statistics + termination check: 3 small
                # allreduces per level (n_f, m_f, m_u), as the hybrid
                # switch requires.
                lc.allreduces = 3
                lc.switched = (
                    prev_direction is not None and prev_direction != direction
                )
                lc.frontier_local = np.array(
                    [len(lst) for lst in frontier_lists], dtype=np.int64
                )

                try:
                    with tr.span(
                        "level",
                        cat="level",
                        level=level,
                        direction=direction,
                        switched=lc.switched,
                        frontier=stats.frontier_vertices,
                    ):
                        if direction == Direction.TOP_DOWN:
                            frontier_lists = self._top_down_level(
                                states, frontier_lists, lc
                            )
                        else:
                            frontier_lists = self._bottom_up_level(
                                states, frontier_lists, lc, shared,
                                visited_words,
                            )
                except PayloadCorruptionFault as exc:
                    # Checksum mismatch: the gathered frontier is not
                    # trustworthy; nothing durable was mutated yet, so
                    # roll back and replay from the last snapshot.
                    frontier_lists, level, prev_direction = self._rollback(
                        "corruption", exc, level, policy, states, counts,
                        visited_words, log, lost_through=level,
                    )
                    last_ckpt_level = level
                    continue

                lc.discovered = np.array(
                    [len(lst) for lst in frontier_lists], dtype=np.int64
                )
                counts.levels.append(lc)
                prev_direction = direction
                level += 1

                if inj is not None:
                    # Crash detection happens at the level barrier — the
                    # crashed level's work completed on the survivors but
                    # is lost with the dead rank, so it genuinely gets
                    # replayed from the last snapshot.
                    crash = inj.take_crash(level - 1)
                    if crash is not None:
                        frontier_lists, level, prev_direction = (
                            self._rollback(
                                "crash", None, level - 1, policy, states,
                                counts, visited_words, log,
                                lost_through=level - 1, rank=crash.rank,
                            )
                        )
                        last_ckpt_level = level
                        continue

            counts.visited_vertices = sum(st.visited_count() for st in states)
            counts.traversed_edges = (
                sum(
                    int(st.degrees[st.parent >= 0].sum()) for st in states
                )
                // 2
            )
            parent = np.concatenate([st.parent for st in states])
            with tr.span("bfs.price", cat="pricing"), hp.phase("price"):
                timing = assemble(
                    counts, self.comm, self.config, self.sizes, self.constants
                )
            if inj is not None and inj.has_stragglers:
                self._reprice_stragglers(timing, inj)
        result = BFSResult(
            root=root,
            parent=parent,
            levels=level,
            counts=counts,
            timing=timing,
        )
        if tolerant:
            result.recovery = RecoveryReport.from_log(
                log, timing, inj.events if inj is not None else []
            )
            if self.metrics is not None:
                self.metrics.counter("recovery.overhead_sim_ns_total").inc(
                    result.recovery.overhead_ns
                )
        if tr.enabled:
            result.telemetry = RunTelemetry.from_tracer(tr, self.metrics)
            from repro.obs.analyze import attribute_run

            result.telemetry.attribution = attribute_run(result)
        if self.metrics is not None:
            self._record_metrics(result)
        return result

    def _record_metrics(self, result: BFSResult) -> None:
        """Fold one run's counts and timings into the metrics registry."""
        m = self.metrics
        m.counter("bfs.runs_total").inc()
        m.counter("bfs.kernel_runs_total", backend=self.kernel.name).inc()
        m.gauge("bfs.last_run.teps").set(result.teps)
        m.gauge("bfs.last_run.simulated_seconds").set(result.seconds)
        for phase, ns in result.timing.breakdown.as_dict().items():
            m.counter("bfs.phase_sim_ns_total", phase=phase).inc(ns)
        stall_hist = m.histogram("bfs.level_stall_ns")
        for lc, lt in zip(result.counts.levels, result.timing.levels):
            m.counter("bfs.levels_total", direction=lc.direction).inc()
            for comp, ns in lt.comm_components().items():
                m.counter(
                    "bfs.comm.component_sim_ns_total", component=comp
                ).inc(ns)
            m.histogram(
                "bfs.level_compute_imbalance", direction=lc.direction
            ).observe(lt.compute_imbalance)
            m.counter(
                "bfs.examined_edges_total", direction=lc.direction
            ).inc(float(lc.examined_edges.sum()))
            if lc.switched:
                m.counter("bfs.direction_switches_total").inc()
            if lt.compute_rank_ns is not None:
                comp_max = float(lt.compute_rank_ns.max(initial=0.0))
                for t in lt.compute_rank_ns:
                    stall_hist.observe(comp_max - float(t))
            if lc.direction == Direction.BOTTOM_UP:
                codec = lc.codec or "raw"
                raw_b = lc.inq_raw_total_bytes + lc.summary_raw_total_bytes
                wire_b = lc.inq_wire_total_bytes + lc.summary_wire_total_bytes
                if raw_b > 0:
                    m.counter(
                        "bfs.comm.allgather_raw_bytes_total", codec=codec
                    ).inc(raw_b)
                    m.counter(
                        "bfs.comm.allgather_wire_bytes_total", codec=codec
                    ).inc(wire_b)
                    if wire_b > 0:
                        m.histogram(
                            "bfs.comm.compression_ratio", codec=codec
                        ).observe(raw_b / wire_b)
                examined = float(lc.examined_edges.sum())
                if examined > 0 and self.config.use_summary:
                    # Fraction of examined edges that fell through the
                    # summary filter to a real in_queue read (Fig. 16's
                    # trade-off, observed per level).
                    m.histogram("bfs.summary_inqueue_read_fraction").observe(
                        float(lc.inqueue_reads.sum()) / examined
                    )

    # ---- fault tolerance -----------------------------------------------------

    def _checkpoint(
        self, level, prev_direction, policy, states, frontier_lists,
        visited_words, log,
    ) -> None:
        """Snapshot the run at a level boundary and price the capture."""
        res_cfg = self.resilience
        ckpt = BFSCheckpoint.capture(
            level=level,
            prev_direction=prev_direction,
            policy=policy,
            states=states,
            frontier_lists=frontier_lists,
            visited_words=visited_words,
        )
        with self.tracer.span(
            "recovery.checkpoint", cat="recovery",
            level=level, nbytes=ckpt.nbytes,
        ):
            res_cfg.store.put(ckpt)
        log.checkpoints += 1
        log.checkpoint_bytes += ckpt.nbytes
        log.fixed_overhead_ns += res_cfg.cost.checkpoint_ns(
            ckpt.nbytes, res_cfg.on_disk
        )
        if self.metrics is not None:
            self.metrics.counter("recovery.checkpoints_total").inc()
            self.metrics.counter("recovery.checkpoint_bytes_total").inc(
                float(ckpt.nbytes)
            )

    def _rollback(
        self, kind, cause, at_level, policy, states, counts, visited_words,
        log, *, lost_through, rank=None,
    ):
        """Restore the latest snapshot after a fault at ``at_level``.

        Rewinds the live state, truncates the already-recorded level
        counts (the final pricing must never double-count a replayed
        level) and logs the lost executions — levels ``ckpt.level``
        through ``lost_through`` inclusive ran once for nothing, so
        :meth:`RecoveryLog.overhead_ns` charges each of them once more at
        its final price.  Returns ``(frontier_lists, level,
        prev_direction)`` to resume from; ``visited_words`` is restored
        in place so live views stay valid.
        """
        res_cfg = self.resilience
        if res_cfg is None:
            raise FaultError(
                f"{kind} fault with fault tolerance disabled",
                kind=kind, level=at_level, rank=rank,
            ) from cause
        ckpt = res_cfg.store.latest()
        if ckpt is None:
            raise FaultError(
                f"{kind} fault at level {at_level} with no checkpoint to "
                f"restore from",
                kind=kind, level=at_level, rank=rank,
            ) from cause
        if log.rollbacks >= res_cfg.max_rollbacks:
            raise FaultError(
                f"rollback budget exhausted after {log.rollbacks} "
                f"rollbacks",
                kind=kind, level=at_level, rank=rank,
                max_rollbacks=res_cfg.max_rollbacks,
            ) from cause
        log.rollbacks += 1
        with self.tracer.span(
            "recovery.rollback", cat="recovery",
            kind=kind, from_level=at_level, to_level=ckpt.level,
        ):
            frontier_lists, visited = ckpt.restore(policy, states)
            if visited_words is not None and visited is not None:
                visited_words[:] = visited
        del counts.levels[ckpt.level:]
        log.replayed_levels.extend(range(ckpt.level, lost_through + 1))
        overhead = res_cfg.cost.restore_ns(ckpt.nbytes, res_cfg.on_disk)
        if kind == "crash":
            overhead += res_cfg.cost.crash_detect_ns + res_cfg.cost.respawn_ns
        log.fixed_overhead_ns += overhead
        log.note(
            "rollback", kind=kind, from_level=at_level, to_level=ckpt.level,
            fixed_ns=overhead, rank=rank,
        )
        if self.metrics is not None:
            self.metrics.counter("recovery.rollbacks_total", kind=kind).inc()
        return frontier_lists, ckpt.level, ckpt.prev_direction

    def _exchange(self, op, level, fn):
        """Run one collective with bounded retry on transient faults.

        Each failed attempt wasted its full priced duration (the payload
        is retransmitted from scratch) plus an exponential backoff; both
        land in the recovery overhead, never in the level's own pricing.
        Exhausting the attempt budget aborts the run with a typed
        :class:`~repro.errors.FaultError`.
        """
        if self.injector is None:
            return fn()
        res_cfg = self.resilience
        log = self._log
        last = None
        for attempt in range(1, res_cfg.max_attempts + 1):
            try:
                return fn()
            except TransientCollectiveFault as exc:
                last = exc
                backoff = res_cfg.cost.backoff_ns(attempt)
                log.retries += 1
                log.fixed_overhead_ns += exc.wasted_ns + backoff
                log.note(
                    "retry", collective=op, level=level, attempt=attempt,
                    wasted_ns=exc.wasted_ns, backoff_ns=backoff,
                )
                if self.metrics is not None:
                    self.metrics.counter(
                        "recovery.retries_total", collective=op
                    ).inc()
        raise FaultError(
            f"{op} failed after {res_cfg.max_attempts} attempts at level "
            f"{level}",
            collective=op, level=level, attempts=res_cfg.max_attempts,
        ) from last

    def _reprice_stragglers(self, timing: BfsTiming, inj) -> None:
        """Fold the plan's straggler slowdowns into the final pricing.

        A straggler is a pure pricing perturbation — it changes no
        functional result, so it is applied after :func:`assemble`:
        per-rank compute times stretch by the slowdown factor, the level
        mean/max/stall are recomputed, and the Fig. 11 breakdown absorbs
        the deltas (everyone waits for the slow rank at the barrier).
        """
        bd = timing.breakdown
        for lt in timing.levels:
            if lt.compute_rank_ns is None or len(lt.compute_rank_ns) == 0:
                continue
            factors = np.array(
                [
                    inj.straggler_factor(r, lt.level)
                    for r in range(len(lt.compute_rank_ns))
                ]
            )
            if not np.any(factors > 1.0):
                continue
            old_mean = lt.compute_mean_ns
            old_stall = lt.stall_ns
            lt.compute_rank_ns = lt.compute_rank_ns * factors
            lt.compute_mean_ns = float(lt.compute_rank_ns.mean())
            lt.compute_max_ns = float(lt.compute_rank_ns.max())
            lt.stall_ns = lt.compute_max_ns - lt.compute_mean_ns
            if lt.direction == Direction.TOP_DOWN:
                bd.td_compute += lt.compute_mean_ns - old_mean
            else:
                bd.bu_compute += lt.compute_mean_ns - old_mean
            bd.stall += lt.stall_ns - old_stall

    # ---- level kernels -------------------------------------------------------

    def _top_down_level(
        self,
        states: list[RankState],
        frontier_lists: list[np.ndarray],
        lc: LevelCounts,
    ) -> list[np.ndarray]:
        np_ranks = self.mapping.num_ranks
        tr = self.tracer
        hp = self.hostprof
        with tr.span("phase.td_expand", cat="phase"), hp.phase("td_expand"):
            sends = [
                topdown.expand(
                    states[r], frontier_lists[r], self.partition,
                    tracer=tr, rank=r, backend=self.kernel,
                )
                for r in range(np_ranks)
            ]
        lc.examined_edges = np.array(
            [s.examined_edges for s in sends], dtype=np.int64
        )
        lc.candidates = np.zeros(np_ranks, dtype=np.int64)
        lc.inqueue_reads = np.zeros(np_ranks, dtype=np.int64)
        send_matrix = [
            [s.outbox[j].reshape(-1) for j in range(np_ranks)] for s in sends
        ]
        lc.td_send_bytes = np.array(
            [
                [send_matrix[i][j].nbytes for j in range(np_ranks)]
                for i in range(np_ranks)
            ],
            dtype=np.int64,
        )
        with tr.span("phase.td_exchange", cat="phase"), hp.phase(
            "td_exchange"
        ):
            res = self._exchange(
                "alltoallv", lc.level,
                lambda: self.comm.alltoallv(send_matrix),
            )
        with tr.span("phase.td_apply", cat="phase"), hp.phase("td_apply"):
            new_lists = []
            for r in range(np_ranks):
                received = [m.reshape(-1, 2) for m in res.data[r]]
                new_lists.append(
                    topdown.apply_received(states[r], received, tracer=tr, rank=r)
                )
        return new_lists

    def _bottom_up_level(
        self,
        states: list[RankState],
        frontier_lists: list[np.ndarray],
        lc: LevelCounts,
        shared: list[NodeSharedBuffer] | None,
        visited_words: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        np_ranks = self.mapping.num_ranks
        n = self.graph.num_vertices
        parts = self._frontier_parts(frontier_lists)
        lc.inq_part_words = max((p.size for p in parts), default=0)
        if self.config.use_summary:
            summary_words = summary_words_for(n, self.config.granularity)
            lc.summary_part_words = summary_words / np_ranks

        visited_parts = None
        if self.codec is not None and visited_words is not None:
            visited_parts = [
                visited_words[self._word_starts[r]:self._word_starts[r + 1]]
                for r in range(np_ranks)
            ]
        tr = self.tracer
        hp = self.hostprof
        verify = (
            self.resilience is not None and self.resilience.verify_checksums
        )
        if verify:
            # Sender-side checksum, folded per rank: the gathered
            # concatenation must reproduce it exactly (codecs are
            # lossless), so any in-flight bit flip is caught here before
            # a single byte of it reaches engine state.
            exp_x, exp_s = 0, 0
            for p in parts:
                x, s = words_checksum(p)
                exp_x ^= x
                exp_s = (exp_s + s) % (1 << 64)
        with tr.span("phase.bu_allgather", cat="phase"), hp.phase(
            "bu_allgather"
        ):
            res = self._exchange(
                "allgather", lc.level,
                lambda: allgather(
                    self.comm, parts, self.config.in_queue_algorithm(),
                    shared,
                    codec=self.codec,
                    visited_parts=visited_parts,
                    subgroups=self.config.comm.subgroups,
                ),
            )
        lc.codec = res.codec
        lc.inq_raw_total_bytes = res.raw_bytes
        lc.inq_wire_total_bytes = res.wire_bytes
        lc.inq_wire_part_bytes = res.wire_part_bytes
        if shared is not None:
            full_words = shared[0].data
        else:
            full_words = res.data
        if verify:
            got_x, got_s = words_checksum(full_words)
            self._log.fixed_overhead_ns += self.resilience.cost.checksum_ns(
                full_words.size * 8
            )
            if (got_x, got_s) != (exp_x, exp_s):
                raise PayloadCorruptionFault(
                    "frontier checksum mismatch after allgather",
                    collective="allgather",
                    level=lc.level,
                    expected=f"{exp_x:016x}/{exp_s:016x}",
                    actual=f"{got_x:016x}/{got_s:016x}",
                )
        in_queue = Bitmap(n, words=full_words.copy())
        if visited_words is not None:
            # Fold the just-published frontier into the common-knowledge
            # mask *after* this allgather used the previous one — both
            # sides of the next level's sieve see the same history.
            np.bitwise_or(visited_words, in_queue.words, out=visited_words)
        # The summary is built locally from the gathered bitmap — the data
        # is bit-identical to the reference code's allgathered summary (it
        # is a pure function of in_queue); its allgather is priced via
        # lc.summary_part_words in timing.assemble.
        with tr.span("phase.bu_summary_build", cat="phase"), hp.phase(
            "bu_summary_build"
        ):
            summary = (
                SummaryBitmap.build(in_queue, self.config.granularity)
                if self.config.use_summary
                else None
            )
        if summary is not None:
            raw_bytes = summary_words * 8.0
            lc.summary_raw_total_bytes = raw_bytes
            if lc.codec not in (None, "raw"):
                # Price the summary's (not functionally executed)
                # allgather through the same codec the in_queue used: the
                # summary is a pure function of in_queue, so encoding the
                # full bitmap yields the exact wire payload the reference
                # code would transmit.  No visited mask — summary blocks
                # re-light across levels.
                enc = get_codec(lc.codec).encode(summary.words)
                lc.summary_wire_total_bytes = float(enc.wire_nbytes)
                lc.summary_wire_part_bytes = float(enc.wire_nbytes) / np_ranks
            else:
                lc.summary_wire_total_bytes = raw_bytes
                lc.summary_wire_part_bytes = lc.summary_part_words * 8.0

        new_lists = []
        cand = np.zeros(np_ranks, dtype=np.int64)
        examined = np.zeros(np_ranks, dtype=np.int64)
        inq_reads = np.zeros(np_ranks, dtype=np.int64)
        gathered = np.zeros(np_ranks, dtype=np.int64)
        rounds = np.zeros(np_ranks, dtype=np.int64)
        with tr.span("phase.bu_scan", cat="phase"), hp.phase("bu_scan"):
            for r in range(np_ranks):
                out = bottomup.scan(
                    states[r], in_queue, summary,
                    tracer=tr, rank=r, backend=self.kernel,
                )
                cand[r] = out.candidates
                examined[r] = out.examined_edges
                inq_reads[r] = out.inqueue_reads
                gathered[r] = out.gathered_edges
                rounds[r] = out.chunk_rounds
                new_lists.append(out.new_local)
        lc.candidates = cand
        lc.examined_edges = examined
        lc.inqueue_reads = inq_reads
        if self.metrics is not None:
            # Per-level active-set diagnostics (never priced): how much
            # adjacency the backend materialized to produce the level's
            # examined count, and how many wavefront rounds it took.
            m = self.metrics
            m.counter(
                "bfs.bu.gathered_edges_total", backend=self.kernel.name
            ).inc(float(gathered.sum()))
            m.counter(
                "bfs.bu.scan_examined_edges_total", backend=self.kernel.name
            ).inc(float(examined.sum()))
            m.histogram(
                "bfs.bu.chunk_rounds", backend=self.kernel.name
            ).observe(float(rounds.max(initial=0)))
        return new_lists
