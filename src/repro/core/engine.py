"""The distributed hybrid BFS engine (Fig. 1 of the paper).

The engine executes the real algorithm on real data: the graph is 1-D
partitioned over ``nodes x ppn`` simulated MPI ranks, every level is
expanded either top-down (queue exchange over ``alltoallv``) or bottom-up
(scan against the allgathered ``in_queue`` bitmap plus its summary), and
the output is a genuine, validatable BFS parent tree.

Simulated time never influences the functional result; the engine records
per-rank event counts (:mod:`repro.core.counts`) and prices them with
:func:`repro.core.timing.assemble`, so the identical run can also be
priced at a larger target scale (:mod:`repro.model`).

Level structure (matching Fig. 1 and the profiling categories of
Fig. 11):

* direction decision from allreduced frontier statistics;
* *switch*: frontier representation conversion when the direction
  changed (queue <-> bitmap);
* bottom-up levels start by allgathering the out_queue parts into the
  next ``in_queue`` (and its summary — "the two allgathers"); top-down
  levels exchange (child, parent) pairs instead;
* compute step; barrier (stall accounting); termination allreduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import bottomup, topdown
from repro.core.bitmap import Bitmap, SummaryBitmap, summary_words_for
from repro.core.config import BFSConfig
from repro.core.counts import Direction, LevelCounts, RunCounts
from repro.core.hybrid import DirectionPolicy, FrontierStats
from repro.core.kernels import resolve_backend
from repro.core.state import RankState
from repro.core.timing import BfsTiming, CostConstants, StructureSizes, assemble
from repro.errors import ConfigError, GraphError
from repro.graph.partition import (
    Partition1D,
    degree_balanced_bounds,
    word_aligned_bounds,
)
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.mpi.codecs import get_codec, resolve_codec
from repro.mpi.collectives import allgather
from repro.mpi.mapping import ProcessMapping
from repro.mpi.sharedmem import NodeSharedBuffer
from repro.mpi.simcomm import SimComm
from repro.obs.tracer import NULL_TRACER, RunTelemetry
from repro.util import bitops

__all__ = ["BFSEngine", "BFSResult"]


@dataclass
class BFSResult:
    """Everything one BFS run produced."""

    root: int
    parent: np.ndarray  # global parent array, -1 = unreached
    levels: int
    counts: RunCounts
    timing: BfsTiming
    # Filled only when the engine ran with a recording tracer.
    telemetry: RunTelemetry | None = None

    @property
    def visited(self) -> int:
        """Number of reached vertices (including the root)."""
        return int(np.count_nonzero(self.parent >= 0))

    @property
    def traversed_edges(self) -> int:
        """Undirected input edges in the root's component (TEPS numerator)."""
        return self.counts.traversed_edges

    @property
    def seconds(self) -> float:
        """Simulated wall time of the traversal."""
        return self.timing.total_seconds

    @property
    def teps(self) -> float:
        """Traversed edges per (simulated) second, the Graph500 metric."""
        if self.seconds <= 0:
            return 0.0
        return self.traversed_edges / self.seconds


class BFSEngine:
    """Reusable BFS executor for one (graph, cluster, config) triple."""

    def __init__(
        self,
        graph: Graph,
        cluster: ClusterSpec,
        config: BFSConfig,
        constants: CostConstants = CostConstants(),
        tracer=None,
        metrics=None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.config = config
        self.constants = constants
        # Telemetry is opt-in: the default null tracer makes every hook a
        # no-op and ``metrics=None`` skips all registry updates, so the
        # undecorated hot path is unchanged.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        # Kernel backend: config.kernel > $REPRO_KERNEL > registry default.
        # Backends are bit-identical on all priced counts (enforced by the
        # equivalence suite), so this only changes speed and memory.
        self.kernel = resolve_backend(config)
        # Frontier codec: config.comm.codec > $REPRO_CODEC > "raw".
        # Codecs are lossless (round-trip enforced inside allgather), so
        # they change only the simulated wire bytes/time; the identity
        # codec is dropped here so the raw path stays byte-for-byte the
        # uninstrumented one.
        codec = resolve_codec(config)
        self.codec = None if codec.is_identity else codec
        ppn = config.resolve_ppn(cluster)
        self.mapping = ProcessMapping(cluster, ppn, config.binding)
        self.comm = SimComm(cluster, self.mapping, tracer=self.tracer)
        np_ranks = self.mapping.num_ranks

        n = graph.num_vertices
        if n % 64 != 0 or n < np_ranks * 64:
            raise ConfigError(
                f"num_vertices={n} must be a multiple of 64 and at least "
                f"64 * num_ranks (= {np_ranks * 64}) so that bitmap parts "
                f"stay word-aligned"
            )
        if config.degree_balanced:
            bounds = degree_balanced_bounds(graph, np_ranks, alignment=64)
        else:
            bounds = word_aligned_bounds(n, np_ranks)
        self.partition = Partition1D(n, np_ranks, bounds=bounds)
        self._locals = [
            self.partition.extract_local(graph, r) for r in range(np_ranks)
        ]
        self._part_words = [
            bitops.words_for_bits(self.partition.size_of(r))
            for r in range(np_ranks)
        ]
        # Word offset of each rank's slice in the concatenated bitmap
        # (partition bounds are 64-aligned, so slices tile exactly); used
        # to hand the sieve codec per-rank views of the visited mask.
        self._word_starts = np.concatenate(
            ([0], np.cumsum(self._part_words))
        ).astype(np.int64)
        self.sizes = StructureSizes(
            num_vertices=n,
            num_arcs=graph.num_directed_edges,
            num_ranks=np_ranks,
            granularity=config.granularity,
        )

    # ---- helpers -------------------------------------------------------------

    def _shared_buffers(self) -> list[NodeSharedBuffer] | None:
        if not self.config.shares_in_queue:
            return None
        total_words = bitops.words_for_bits(self.graph.num_vertices)
        return [
            NodeSharedBuffer(node, total_words)
            for node in range(self.cluster.nodes)
        ]

    def _frontier_parts(
        self, frontier_lists: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Build per-rank out_queue bitmap parts from local frontier lists."""
        parts = []
        for r, lst in enumerate(frontier_lists):
            words = np.zeros(self._part_words[r], dtype=bitops.WORD_DTYPE)
            bitops.set_bits(words, np.asarray(lst, dtype=np.int64))
            parts.append(words)
        return parts

    def _global_stats(
        self, states: list[RankState], frontier_lists: list[np.ndarray]
    ) -> FrontierStats:
        n_f = sum(len(lst) for lst in frontier_lists)
        m_f = sum(
            int(st.degrees[np.asarray(lst, dtype=np.int64)].sum())
            for st, lst in zip(states, frontier_lists)
        )
        m_u = sum(st.unexplored_degree for st in states)
        return FrontierStats(
            frontier_vertices=n_f,
            frontier_edges=m_f,
            unexplored_edges=m_u,
            num_vertices=self.graph.num_vertices,
        )

    # ---- the run -----------------------------------------------------------

    def run(self, root: int) -> BFSResult:
        """Execute one BFS from ``root`` and price it."""
        graph = self.graph
        if not 0 <= root < graph.num_vertices:
            raise GraphError(f"root {root} out of range")
        np_ranks = self.mapping.num_ranks
        states = [RankState(lg) for lg in self._locals]
        counts = RunCounts(
            num_vertices=graph.num_vertices, num_ranks=np_ranks
        )
        policy = DirectionPolicy(self.config)
        shared = self._shared_buffers()
        # Union of all previously allgathered in_queues: common knowledge
        # shared by encoder and decoder, which the sieve codec exploits.
        # Only maintained when a non-identity codec is active — the raw
        # path stays exactly the seed implementation.
        visited_words = (
            np.zeros(bitops.words_for_bits(graph.num_vertices),
                     dtype=bitops.WORD_DTYPE)
            if self.codec is not None
            else None
        )

        owner = int(self.partition.owner(root))
        root_local = states[owner].to_local(np.array([root]))
        states[owner].discover(root_local, np.array([root]))
        frontier_lists: list[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(np_ranks)
        ]
        frontier_lists[owner] = root_local

        tr = self.tracer
        level = 0
        prev_direction: str | None = None
        with tr.span("bfs.run", cat="run", root=root):
            while True:
                stats = self._global_stats(states, frontier_lists)
                if stats.frontier_vertices == 0:
                    break
                direction = policy.decide(stats, tracer=tr)
                lc = LevelCounts(level=level, direction=direction)
                # Frontier statistics + termination check: 3 small
                # allreduces per level (n_f, m_f, m_u), as the hybrid
                # switch requires.
                lc.allreduces = 3
                lc.switched = (
                    prev_direction is not None and prev_direction != direction
                )
                lc.frontier_local = np.array(
                    [len(lst) for lst in frontier_lists], dtype=np.int64
                )

                with tr.span(
                    "level",
                    cat="level",
                    level=level,
                    direction=direction,
                    switched=lc.switched,
                    frontier=stats.frontier_vertices,
                ):
                    if direction == Direction.TOP_DOWN:
                        frontier_lists = self._top_down_level(
                            states, frontier_lists, lc
                        )
                    else:
                        frontier_lists = self._bottom_up_level(
                            states, frontier_lists, lc, shared, visited_words
                        )

                lc.discovered = np.array(
                    [len(lst) for lst in frontier_lists], dtype=np.int64
                )
                counts.levels.append(lc)
                prev_direction = direction
                level += 1

            counts.visited_vertices = sum(st.visited_count() for st in states)
            counts.traversed_edges = (
                sum(
                    int(st.degrees[st.parent >= 0].sum()) for st in states
                )
                // 2
            )
            parent = np.concatenate([st.parent for st in states])
            with tr.span("bfs.price", cat="pricing"):
                timing = assemble(
                    counts, self.comm, self.config, self.sizes, self.constants
                )
        result = BFSResult(
            root=root,
            parent=parent,
            levels=level,
            counts=counts,
            timing=timing,
        )
        if tr.enabled:
            result.telemetry = RunTelemetry.from_tracer(tr, self.metrics)
            from repro.obs.analyze import attribute_run

            result.telemetry.attribution = attribute_run(result)
        if self.metrics is not None:
            self._record_metrics(result)
        return result

    def _record_metrics(self, result: BFSResult) -> None:
        """Fold one run's counts and timings into the metrics registry."""
        m = self.metrics
        m.counter("bfs.runs_total").inc()
        m.counter("bfs.kernel_runs_total", backend=self.kernel.name).inc()
        m.gauge("bfs.last_run.teps").set(result.teps)
        m.gauge("bfs.last_run.simulated_seconds").set(result.seconds)
        for phase, ns in result.timing.breakdown.as_dict().items():
            m.counter("bfs.phase_sim_ns_total", phase=phase).inc(ns)
        stall_hist = m.histogram("bfs.level_stall_ns")
        for lc, lt in zip(result.counts.levels, result.timing.levels):
            m.counter("bfs.levels_total", direction=lc.direction).inc()
            for comp, ns in lt.comm_components().items():
                m.counter(
                    "bfs.comm.component_sim_ns_total", component=comp
                ).inc(ns)
            m.histogram(
                "bfs.level_compute_imbalance", direction=lc.direction
            ).observe(lt.compute_imbalance)
            m.counter(
                "bfs.examined_edges_total", direction=lc.direction
            ).inc(float(lc.examined_edges.sum()))
            if lc.switched:
                m.counter("bfs.direction_switches_total").inc()
            if lt.compute_rank_ns is not None:
                comp_max = float(lt.compute_rank_ns.max(initial=0.0))
                for t in lt.compute_rank_ns:
                    stall_hist.observe(comp_max - float(t))
            if lc.direction == Direction.BOTTOM_UP:
                codec = lc.codec or "raw"
                raw_b = lc.inq_raw_total_bytes + lc.summary_raw_total_bytes
                wire_b = lc.inq_wire_total_bytes + lc.summary_wire_total_bytes
                if raw_b > 0:
                    m.counter(
                        "bfs.comm.allgather_raw_bytes_total", codec=codec
                    ).inc(raw_b)
                    m.counter(
                        "bfs.comm.allgather_wire_bytes_total", codec=codec
                    ).inc(wire_b)
                    if wire_b > 0:
                        m.histogram(
                            "bfs.comm.compression_ratio", codec=codec
                        ).observe(raw_b / wire_b)
                examined = float(lc.examined_edges.sum())
                if examined > 0 and self.config.use_summary:
                    # Fraction of examined edges that fell through the
                    # summary filter to a real in_queue read (Fig. 16's
                    # trade-off, observed per level).
                    m.histogram("bfs.summary_inqueue_read_fraction").observe(
                        float(lc.inqueue_reads.sum()) / examined
                    )

    # ---- level kernels -------------------------------------------------------

    def _top_down_level(
        self,
        states: list[RankState],
        frontier_lists: list[np.ndarray],
        lc: LevelCounts,
    ) -> list[np.ndarray]:
        np_ranks = self.mapping.num_ranks
        tr = self.tracer
        with tr.span("phase.td_expand", cat="phase"):
            sends = [
                topdown.expand(
                    states[r], frontier_lists[r], self.partition,
                    tracer=tr, rank=r, backend=self.kernel,
                )
                for r in range(np_ranks)
            ]
        lc.examined_edges = np.array(
            [s.examined_edges for s in sends], dtype=np.int64
        )
        lc.candidates = np.zeros(np_ranks, dtype=np.int64)
        lc.inqueue_reads = np.zeros(np_ranks, dtype=np.int64)
        send_matrix = [
            [s.outbox[j].reshape(-1) for j in range(np_ranks)] for s in sends
        ]
        lc.td_send_bytes = np.array(
            [
                [send_matrix[i][j].nbytes for j in range(np_ranks)]
                for i in range(np_ranks)
            ],
            dtype=np.int64,
        )
        with tr.span("phase.td_exchange", cat="phase"):
            res = self.comm.alltoallv(send_matrix)
        with tr.span("phase.td_apply", cat="phase"):
            new_lists = []
            for r in range(np_ranks):
                received = [m.reshape(-1, 2) for m in res.data[r]]
                new_lists.append(
                    topdown.apply_received(states[r], received, tracer=tr, rank=r)
                )
        return new_lists

    def _bottom_up_level(
        self,
        states: list[RankState],
        frontier_lists: list[np.ndarray],
        lc: LevelCounts,
        shared: list[NodeSharedBuffer] | None,
        visited_words: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        np_ranks = self.mapping.num_ranks
        n = self.graph.num_vertices
        parts = self._frontier_parts(frontier_lists)
        lc.inq_part_words = max((p.size for p in parts), default=0)
        if self.config.use_summary:
            summary_words = summary_words_for(n, self.config.granularity)
            lc.summary_part_words = summary_words / np_ranks

        visited_parts = None
        if self.codec is not None and visited_words is not None:
            visited_parts = [
                visited_words[self._word_starts[r]:self._word_starts[r + 1]]
                for r in range(np_ranks)
            ]
        tr = self.tracer
        with tr.span("phase.bu_allgather", cat="phase"):
            res = allgather(
                self.comm, parts, self.config.in_queue_algorithm(), shared,
                codec=self.codec,
                visited_parts=visited_parts,
                subgroups=self.config.comm.subgroups,
            )
        lc.codec = res.codec
        lc.inq_raw_total_bytes = res.raw_bytes
        lc.inq_wire_total_bytes = res.wire_bytes
        lc.inq_wire_part_bytes = res.wire_part_bytes
        if shared is not None:
            full_words = shared[0].data
        else:
            full_words = res.data
        in_queue = Bitmap(n, words=full_words.copy())
        if visited_words is not None:
            # Fold the just-published frontier into the common-knowledge
            # mask *after* this allgather used the previous one — both
            # sides of the next level's sieve see the same history.
            np.bitwise_or(visited_words, in_queue.words, out=visited_words)
        # The summary is built locally from the gathered bitmap — the data
        # is bit-identical to the reference code's allgathered summary (it
        # is a pure function of in_queue); its allgather is priced via
        # lc.summary_part_words in timing.assemble.
        with tr.span("phase.bu_summary_build", cat="phase"):
            summary = (
                SummaryBitmap.build(in_queue, self.config.granularity)
                if self.config.use_summary
                else None
            )
        if summary is not None:
            raw_bytes = summary_words * 8.0
            lc.summary_raw_total_bytes = raw_bytes
            if lc.codec not in (None, "raw"):
                # Price the summary's (not functionally executed)
                # allgather through the same codec the in_queue used: the
                # summary is a pure function of in_queue, so encoding the
                # full bitmap yields the exact wire payload the reference
                # code would transmit.  No visited mask — summary blocks
                # re-light across levels.
                enc = get_codec(lc.codec).encode(summary.words)
                lc.summary_wire_total_bytes = float(enc.wire_nbytes)
                lc.summary_wire_part_bytes = float(enc.wire_nbytes) / np_ranks
            else:
                lc.summary_wire_total_bytes = raw_bytes
                lc.summary_wire_part_bytes = lc.summary_part_words * 8.0

        new_lists = []
        cand = np.zeros(np_ranks, dtype=np.int64)
        examined = np.zeros(np_ranks, dtype=np.int64)
        inq_reads = np.zeros(np_ranks, dtype=np.int64)
        gathered = np.zeros(np_ranks, dtype=np.int64)
        rounds = np.zeros(np_ranks, dtype=np.int64)
        with tr.span("phase.bu_scan", cat="phase"):
            for r in range(np_ranks):
                out = bottomup.scan(
                    states[r], in_queue, summary,
                    tracer=tr, rank=r, backend=self.kernel,
                )
                cand[r] = out.candidates
                examined[r] = out.examined_edges
                inq_reads[r] = out.inqueue_reads
                gathered[r] = out.gathered_edges
                rounds[r] = out.chunk_rounds
                new_lists.append(out.new_local)
        lc.candidates = cand
        lc.examined_edges = examined
        lc.inqueue_reads = inq_reads
        if self.metrics is not None:
            # Per-level active-set diagnostics (never priced): how much
            # adjacency the backend materialized to produce the level's
            # examined count, and how many wavefront rounds it took.
            m = self.metrics
            m.counter(
                "bfs.bu.gathered_edges_total", backend=self.kernel.name
            ).inc(float(gathered.sum()))
            m.counter(
                "bfs.bu.scan_examined_edges_total", backend=self.kernel.name
            ).inc(float(examined.sum()))
            m.histogram(
                "bfs.bu.chunk_rounds", backend=self.kernel.name
            ).observe(float(rounds.max(initial=0)))
        return new_lists
