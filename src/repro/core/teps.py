"""Graph500 evaluation driver.

The paper adopts the Graph500 method (IV.A): 64 random roots with degree
>= 1, one BFS per root, per-root TEPS = traversed edges / time, and the
final figure is the *harmonic mean* over the roots.  The driver also
averages the per-phase profile over the roots, which is what the paper's
breakdown figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import BFSConfig, CommConfig
from repro.core.engine import BFSEngine, BFSResult
from repro.core.prepared import PreparedGraph
from repro.core.timing import CostConstants, PhaseBreakdown
from repro.core.validate import validate_parent_tree
from repro.graph.degree import sample_roots
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.util import harmonic_mean
from repro.util.stats_util import Summary, describe

__all__ = ["Graph500Result", "run_graph500"]

GRAPH500_DEFAULT_ROOTS = 64


@dataclass
class Graph500Result:
    """Aggregate of one Graph500-style evaluation."""

    config: BFSConfig
    roots: np.ndarray
    per_root_teps: list[float] = field(default_factory=list)
    per_root_seconds: list[float] = field(default_factory=list)
    results: list[BFSResult] = field(default_factory=list)

    @property
    def harmonic_mean_teps(self) -> float:
        """The Graph500 headline figure."""
        return harmonic_mean(self.per_root_teps)

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of per-root traversal times."""
        return float(np.mean(self.per_root_seconds))

    def teps_statistics(self) -> Summary:
        """Five-number summary of the per-root TEPS sample, as the
        Graph500 output specification reports."""
        return describe(self.per_root_teps)

    def mean_breakdown(self) -> PhaseBreakdown:
        """Per-phase times averaged over the roots (ns)."""
        agg = PhaseBreakdown()
        k = len(self.results)
        for res in self.results:
            bd = res.timing.breakdown
            agg.td_compute += bd.td_compute / k
            agg.td_comm += bd.td_comm / k
            agg.bu_compute += bd.bu_compute / k
            agg.bu_comm += bd.bu_comm / k
            agg.switch += bd.switch / k
            agg.stall += bd.stall / k
        return agg

    def mean_bu_comm_per_level(self) -> float:
        """Average time of each bottom-up communication phase (the Fig. 12
        / Fig. 13 bars), in ns."""
        times = []
        for res in self.results:
            times.extend(
                lt.comm_ns
                for lt in res.timing.levels
                if lt.direction == "bottom_up"
            )
        return float(np.mean(times)) if times else 0.0

    def graph500_output(self, graph: Graph) -> str:
        """The official Graph500 result block (the key/value lines the
        reference code prints), with times in simulated seconds."""
        times = np.asarray(self.per_root_seconds, dtype=np.float64)
        teps = np.asarray(self.per_root_teps, dtype=np.float64)
        scale = int(np.log2(graph.num_vertices))
        edgefactor = graph.meta.get(
            "edgefactor", round(graph.num_edges / graph.num_vertices)
        )

        def quartiles(arr: np.ndarray) -> tuple[float, float, float, float, float]:
            return (
                float(arr.min()),
                float(np.percentile(arr, 25)),
                float(np.median(arr)),
                float(np.percentile(arr, 75)),
                float(arr.max()),
            )

        t_min, t_q1, t_med, t_q3, t_max = quartiles(times)
        e_min, e_q1, e_med, e_q3, e_max = quartiles(teps)
        lines = [
            f"SCALE:                          {scale}",
            f"edgefactor:                     {edgefactor}",
            f"NBFS:                           {len(self.results)}",
            f"graph_generation:               (provided)",
            f"num_mpi_processes:              {self.results[0].counts.num_ranks}",
            f"min_time:                       {t_min:.6g}",
            f"firstquartile_time:             {t_q1:.6g}",
            f"median_time:                    {t_med:.6g}",
            f"thirdquartile_time:             {t_q3:.6g}",
            f"max_time:                       {t_max:.6g}",
            f"min_TEPS:                       {e_min:.6g}",
            f"firstquartile_TEPS:             {e_q1:.6g}",
            f"median_TEPS:                    {e_med:.6g}",
            f"thirdquartile_TEPS:             {e_q3:.6g}",
            f"max_TEPS:                       {e_max:.6g}",
            f"harmonic_mean_TEPS:             {self.harmonic_mean_teps:.6g}",
        ]
        return "\n".join(lines)


def run_graph500(
    graph: Graph,
    cluster: ClusterSpec,
    config: BFSConfig,
    num_roots: int = GRAPH500_DEFAULT_ROOTS,
    seed: int = 2,
    validate: bool = False,
    constants: CostConstants = CostConstants(),
    comm: CommConfig | None = None,
    prepared: PreparedGraph | None = None,
) -> Graph500Result:
    """Run the Graph500 protocol and aggregate the results.

    ``validate=True`` runs the full five-check Graph500 validator on every
    parent tree (slow for large graphs; the test suite exercises it).
    ``comm`` overrides the configuration's communication block.
    ``prepared`` reuses an already-built partition
    (:class:`~repro.core.prepared.PreparedGraph`) for all roots.
    """
    if comm is not None:
        config = replace(config, comm=comm)
    roots = sample_roots(graph, num_roots, seed=seed)
    engine = BFSEngine(
        graph, cluster, config, constants=constants, prepared=prepared
    )
    out = Graph500Result(config=config, roots=roots)
    for root in roots:
        res = engine.run(int(root))
        if validate:
            validate_parent_tree(graph, int(root), res.parent)
        out.results.append(res)
        out.per_root_teps.append(res.teps)
        out.per_root_seconds.append(res.seconds)
    return out
