"""Immutable prepared-graph state shared across BFS queries.

``BFSEngine.__init__`` historically rebuilt the expensive per-run
structures — the 1-D partition, the per-rank CSR extractions, the bitmap
word layout — for every engine, which a serving layer answering many
queries against the same graph cannot afford.  :class:`PreparedGraph`
splits that build work out into an immutable, shareable product keyed by
the *partition-relevant* slice of the configuration:

* the graph itself (identified by a content digest, cached on
  ``graph.meta``);
* the cluster spec and the resolved ranks-per-node / binding;
* whether the partition is degree-balanced.

Everything else on :class:`~repro.core.config.BFSConfig` (codec, kernel,
sharing variant, granularity, alpha/beta ...) is per-query state and
does not invalidate a prepared graph, so one ``PreparedGraph`` serves
every communication/kernel variant of the Fig. 9 stack at once — which
is exactly what :func:`~repro.core.api.compare_configs` and the serving
layer (:mod:`repro.serve`) exploit.

:class:`PreparedGraphCache` is the process-wide LRU in front of
:meth:`PreparedGraph.prepare`; it is thread-safe because the serving
scheduler prepares graphs from worker threads.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.graph.partition import (
    LocalGraph,
    Partition1D,
    degree_balanced_bounds,
    word_aligned_bounds,
)
from repro.graph.types import Graph
from repro.machine.spec import ClusterSpec
from repro.mpi.mapping import BindingPolicy, ProcessMapping
from repro.util import bitops

__all__ = [
    "PreparedGraph",
    "PreparedGraphCache",
    "graph_digest",
    "default_prepared_cache",
    "reset_default_prepared_cache",
]

_DIGEST_META_KEY = "content_digest"


def graph_digest(graph: Graph) -> str:
    """Stable content digest of a graph's CSR arrays.

    Hashes the vertex count plus the raw bytes of ``offsets`` and
    ``targets`` (sha256, 16 hex digits).  The digest is memoized in
    ``graph.meta`` — the ``Graph`` dataclass is frozen but its ``meta``
    dict is deliberately mutable provenance — so repeated cache lookups
    on the same object cost a dict read, not a re-hash.
    """
    cached = graph.meta.get(_DIGEST_META_KEY)
    if isinstance(cached, str) and cached:
        return cached
    h = hashlib.sha256()
    h.update(str(graph.num_vertices).encode())
    h.update(np.ascontiguousarray(graph.offsets, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.targets, dtype=np.int64).tobytes())
    digest = h.hexdigest()[:16]
    graph.meta[_DIGEST_META_KEY] = digest
    return digest


def _partition_axes(cluster: ClusterSpec, config) -> tuple:
    """The slice of (cluster, config) that determines the partition.

    ``ClusterSpec`` is frozen but not hashable (its ``weak_nodes`` dict),
    so cache keys carry its deterministic dataclass ``repr`` instead of
    the object itself.
    """
    return (
        repr(cluster),
        config.resolve_ppn(cluster),
        config.binding,
        config.degree_balanced,
    )


@dataclass(frozen=True)
class PreparedGraph:
    """Everything query-invariant an engine needs to traverse ``graph``.

    Instances are immutable and safe to share across engines, threads
    and concurrent queries: the contained numpy arrays are never written
    after construction (per-query state lives on
    :class:`~repro.core.state.RankState`).
    """

    graph: Graph
    cluster: ClusterSpec
    ppn: int
    binding: BindingPolicy
    degree_balanced: bool
    mapping: ProcessMapping = field(repr=False)
    partition: Partition1D = field(repr=False)
    locals: tuple[LocalGraph, ...] = field(repr=False)
    #: Words per rank's bitmap slice, index-aligned with ``locals``.
    part_words: tuple[int, ...] = field(repr=False)
    #: Word offset of each rank's slice in the concatenated bitmap
    #: (bounds are 64-aligned, so the slices tile exactly).
    word_starts: np.ndarray = field(repr=False)
    #: Global degree array (``np.diff(graph.offsets)``).
    degrees: np.ndarray = field(repr=False)

    @classmethod
    def prepare(
        cls, graph: Graph, cluster: ClusterSpec, config
    ) -> "PreparedGraph":
        """Build the shared state for one (graph, cluster, partition
        config) triple — the work formerly done inline by
        ``BFSEngine.__init__``."""
        ppn = config.resolve_ppn(cluster)
        mapping = ProcessMapping(cluster, ppn, config.binding)
        np_ranks = mapping.num_ranks
        n = graph.num_vertices
        if n % 64 != 0 or n < np_ranks * 64:
            raise ConfigError(
                f"num_vertices={n} must be a multiple of 64 and at least "
                f"64 * num_ranks (= {np_ranks * 64}) so that bitmap parts "
                f"stay word-aligned"
            )
        if config.degree_balanced:
            bounds = degree_balanced_bounds(graph, np_ranks, alignment=64)
        else:
            bounds = word_aligned_bounds(n, np_ranks)
        partition = Partition1D(n, np_ranks, bounds=bounds)
        locals_ = tuple(
            partition.extract_local(graph, r) for r in range(np_ranks)
        )
        part_words = tuple(
            bitops.words_for_bits(partition.size_of(r))
            for r in range(np_ranks)
        )
        word_starts = np.concatenate(([0], np.cumsum(part_words))).astype(
            np.int64
        )
        word_starts.flags.writeable = False
        degrees = np.diff(graph.offsets)
        return cls(
            graph=graph,
            cluster=cluster,
            ppn=ppn,
            binding=config.binding,
            degree_balanced=config.degree_balanced,
            mapping=mapping,
            partition=partition,
            locals=locals_,
            part_words=part_words,
            word_starts=word_starts,
            degrees=degrees,
        )

    @property
    def num_ranks(self) -> int:
        """Simulated MPI ranks the graph is partitioned over."""
        return self.mapping.num_ranks

    @property
    def digest(self) -> str:
        """Content digest of the prepared graph (memoized on the graph)."""
        return graph_digest(self.graph)

    def nbytes(self) -> int:
        """Estimated resident bytes of the partition state.

        Sums the numpy arrays this object *owns* — the per-rank CSR
        extractions, partition bounds, word layout, degrees — but not
        the input graph, which the caller holds regardless of caching.
        Used by :class:`PreparedGraphCache`'s optional byte bound.
        """
        total = int(self.word_starts.nbytes) + int(self.degrees.nbytes)
        for obj in (self.partition, *self.locals):
            attrs = getattr(obj, "__dict__", None) or {
                f: getattr(obj, f, None)
                for f in getattr(obj, "__dataclass_fields__", ())
            }
            for value in attrs.values():
                nb = getattr(value, "nbytes", None)
                if nb is not None:
                    total += int(nb)
        return total

    def check(self, graph: Graph, cluster: ClusterSpec, config) -> None:
        """Raise :class:`ConfigError` unless this prepared state matches
        the (graph, cluster, config) an engine wants to run with."""
        if graph is not self.graph and graph_digest(graph) != self.digest:
            raise ConfigError(
                "prepared graph was built for a different graph "
                f"(digest {self.digest})"
            )
        axes = _partition_axes(cluster, config)
        mine = (
            repr(self.cluster),
            self.ppn,
            self.binding,
            self.degree_balanced,
        )
        if axes != mine:
            raise ConfigError(
                "prepared graph was built for a different partition "
                "configuration: prepared="
                f"(ppn={self.ppn}, binding={self.binding}, "
                f"degree_balanced={self.degree_balanced}), requested="
                f"(ppn={axes[1]}, binding={axes[2]}, "
                f"degree_balanced={axes[3]})"
            )


class PreparedGraphCache:
    """Thread-safe LRU of :class:`PreparedGraph` instances.

    Keyed by ``(graph digest, cluster, resolved ppn, binding,
    degree_balanced)`` — the partition-relevant configuration axes.  Two
    queries that differ only in codec/kernel/sharing settings share one
    entry.  ``hits``/``misses`` feed the serving layer's cache-hit-rate
    report.

    ``max_bytes`` optionally bounds the summed
    :meth:`PreparedGraph.nbytes` estimate in addition to the entry
    count, evicting least-recently-used entries past either bound — the
    knob that keeps a long-lived service from pinning every graph it
    has ever prepared.
    """

    def __init__(self, maxsize: int = 8, max_bytes: int | None = None) -> None:
        if maxsize < 1:
            raise ConfigError("prepared-graph cache needs maxsize >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError("prepared-graph cache max_bytes must be >= 1")
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.Lock()
        #: key -> (prepared, estimated nbytes)
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(graph: Graph, cluster: ClusterSpec, config) -> tuple:
        """The cache key of one (graph, cluster, config) request."""
        return (graph_digest(graph),) + _partition_axes(cluster, config)

    def get_or_prepare(
        self, graph: Graph, cluster: ClusterSpec, config
    ) -> PreparedGraph:
        """Return the cached prepared graph, building it on first use."""
        key = self.key_for(graph, cluster, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[0]
            self.misses += 1
        # Build outside the lock: preparation is pure and idempotent, so
        # a rare duplicate build under contention only wastes work.
        prepared = PreparedGraph.prepare(graph, cluster, config)
        nbytes = prepared.nbytes()
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (prepared, nbytes)
            self._entries.move_to_end(key)
            self._bytes += nbytes
            while len(self._entries) > self.maxsize:
                _, (_, nb) = self._entries.popitem(last=False)
                self._bytes -= nb
            if self.max_bytes is not None:
                while self._bytes > self.max_bytes and len(self._entries) > 1:
                    _, (_, nb) = self._entries.popitem(last=False)
                    self._bytes -= nb
        return prepared

    def stats(self) -> dict:
        """Hit/miss counters and occupancy as a plain dict.

        ``hit_rate`` is 0.0 (not a division error) before the first
        lookup; ``lookups`` carries the denominator so readers can tell
        "no traffic yet" from "all misses".
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "lookups": total,
                "hit_rate": self.hits / total if total else 0.0,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT: PreparedGraphCache | None = None
_DEFAULT_LOCK = threading.Lock()


def default_prepared_cache() -> PreparedGraphCache:
    """Process-wide prepared-graph cache (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = PreparedGraphCache()
        return _DEFAULT


def reset_default_prepared_cache() -> PreparedGraphCache:
    """Replace the process-wide cache with a fresh one (tests, CLI)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = PreparedGraphCache()
        return _DEFAULT
