"""Level-granular checkpointing of BFS engine state.

A :class:`BFSCheckpoint` captures everything the engine needs to resume
a run at the start of a level: the per-rank parent arrays and unexplored
degrees, the frontier lists, the codec's common-knowledge visited mask,
the direction-policy state and the level counter.  Checkpoints are deep
copies — later mutation of the live run never leaks in — and round-trip
bit-identically through the on-disk ``.npz`` format.

Stores implement a two-method protocol (``put`` / ``latest``):
:class:`MemoryCheckpointStore` keeps copies in RAM,
:class:`DiskCheckpointStore` persists each checkpoint as
``ckpt_level####.npz`` under a directory (surviving the process), both
raising :class:`~repro.errors.CheckpointError` on malformed input.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError

__all__ = [
    "BFSCheckpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DiskCheckpointStore",
]

_FORMAT = 1


@dataclass
class BFSCheckpoint:
    """A resumable snapshot of one BFS run at a level boundary."""

    level: int
    prev_direction: str | None
    policy_direction: str
    policy_finished_bottom_up: bool
    parents: list[np.ndarray]
    unexplored: list[int]
    frontier_lists: list[np.ndarray]
    visited_words: np.ndarray | None

    @property
    def num_ranks(self) -> int:
        """Rank count this snapshot was captured from."""
        return len(self.parents)

    @property
    def nbytes(self) -> int:
        """Payload size (the quantity recovery pricing charges)."""
        total = sum(int(p.nbytes) for p in self.parents)
        total += sum(int(f.nbytes) for f in self.frontier_lists)
        if self.visited_words is not None:
            total += int(self.visited_words.nbytes)
        total += 8 * len(self.unexplored)
        return total

    # ---- capture / restore ------------------------------------------------

    @classmethod
    def capture(
        cls,
        *,
        level: int,
        prev_direction: str | None,
        policy,
        states,
        frontier_lists: list[np.ndarray],
        visited_words: np.ndarray | None,
    ) -> "BFSCheckpoint":
        """Deep-copy the engine's mutable state at a level boundary."""
        return cls(
            level=int(level),
            prev_direction=prev_direction,
            policy_direction=str(policy._direction),
            policy_finished_bottom_up=bool(policy._finished_bottom_up),
            parents=[st.parent.copy() for st in states],
            unexplored=[int(st.unexplored_degree) for st in states],
            frontier_lists=[
                np.array(f, dtype=np.int64, copy=True) for f in frontier_lists
            ],
            visited_words=(
                None if visited_words is None else visited_words.copy()
            ),
        )

    def restore(self, policy, states) -> tuple[list[np.ndarray], np.ndarray | None]:
        """Write this snapshot back into live engine state.

        Mutates ``states`` and ``policy`` in place; returns fresh copies
        of the frontier lists and visited mask (so the store's copy stays
        pristine for repeated rollbacks).
        """
        if len(states) != len(self.parents):
            raise CheckpointError(
                f"checkpoint captured {len(self.parents)} ranks, engine has "
                f"{len(states)}",
                level=self.level,
            )
        for st, parent, unexplored in zip(
            states, self.parents, self.unexplored
        ):
            if st.parent.shape != parent.shape:
                raise CheckpointError(
                    "checkpoint parent shape mismatch",
                    rank=st.rank,
                    level=self.level,
                )
            st.parent[:] = parent
            st.unexplored_degree = int(unexplored)
        policy._direction = self.policy_direction
        policy._finished_bottom_up = self.policy_finished_bottom_up
        frontier = [f.copy() for f in self.frontier_lists]
        visited = None if self.visited_words is None else self.visited_words.copy()
        return frontier, visited

    # ---- persistence ------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the snapshot as a ``.npz`` archive, crash-safely.

        The archive is written to a temporary sibling first, fsynced,
        and moved into place with :func:`os.replace` — an atomic rename
        on the same filesystem.  A crash mid-write therefore leaves
        either the previous checkpoint or none, never a torn archive a
        later rollback would trip over; the temporary name carries the
        pid so it can never shadow a real ``ckpt_level*.npz`` entry (it
        also misses the store's pruning glob by construction).
        """
        meta = {
            "format": _FORMAT,
            "level": self.level,
            "prev_direction": self.prev_direction,
            "policy_direction": self.policy_direction,
            "policy_finished_bottom_up": self.policy_finished_bottom_up,
            "num_ranks": self.num_ranks,
            "unexplored": list(self.unexplored),
            "has_visited": self.visited_words is not None,
        }
        arrays = {
            "meta": np.bytes_(json.dumps(meta).encode("utf-8")),
        }
        for r, parent in enumerate(self.parents):
            arrays[f"parent_{r}"] = parent
        for r, frontier in enumerate(self.frontier_lists):
            arrays[f"frontier_{r}"] = frontier
        if self.visited_words is not None:
            arrays["visited_words"] = self.visited_words
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            # Write through an open file object: numpy would otherwise
            # append ``.npz`` to the temporary name, and the fsync needs
            # the descriptor anyway.
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "BFSCheckpoint":
        """Read a snapshot written by :meth:`save`."""
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                if meta.get("format") != _FORMAT:
                    raise CheckpointError(
                        f"{path}: unsupported checkpoint format "
                        f"{meta.get('format')!r}"
                    )
                nr = int(meta["num_ranks"])
                return cls(
                    level=int(meta["level"]),
                    prev_direction=meta["prev_direction"],
                    policy_direction=meta["policy_direction"],
                    policy_finished_bottom_up=bool(
                        meta["policy_finished_bottom_up"]
                    ),
                    parents=[data[f"parent_{r}"] for r in range(nr)],
                    unexplored=[int(u) for u in meta["unexplored"]],
                    frontier_lists=[
                        data[f"frontier_{r}"] for r in range(nr)
                    ],
                    visited_words=(
                        data["visited_words"]
                        if meta["has_visited"]
                        else None
                    ),
                )
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"{path}: unreadable checkpoint archive: {exc}"
            ) from exc


class CheckpointStore:
    """Protocol: where checkpoints live between capture and rollback."""

    def put(self, ckpt: BFSCheckpoint) -> None:  # pragma: no cover
        """Persist a snapshot, evicting the oldest beyond the keep limit."""
        raise NotImplementedError

    def latest(self) -> BFSCheckpoint | None:  # pragma: no cover
        """Return the most recent snapshot, or None if the store is empty."""
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover
        """Drop every stored snapshot (called at the start of each run)."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """In-memory store keeping the most recent ``keep`` checkpoints."""

    def __init__(self, keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("keep must be >= 1")
        self.keep = keep
        self._ckpts: list[BFSCheckpoint] = []

    def put(self, ckpt: BFSCheckpoint) -> None:
        """Record a snapshot (evicting the oldest past ``keep``)."""
        self._ckpts.append(ckpt)
        del self._ckpts[: -self.keep]

    def latest(self) -> BFSCheckpoint | None:
        """Most recent snapshot, or None when empty."""
        return self._ckpts[-1] if self._ckpts else None

    def clear(self) -> None:
        """Drop everything (a new run starts)."""
        self._ckpts = []

    def __len__(self) -> int:
        return len(self._ckpts)


class DiskCheckpointStore(CheckpointStore):
    """On-disk store: one ``ckpt_level####.npz`` per checkpoint."""

    def __init__(self, directory: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def _paths(self) -> list[Path]:
        return sorted(self.directory.glob("ckpt_level*.npz"))

    def path_for(self, level: int) -> Path:
        """Where the checkpoint of ``level`` lives."""
        return self.directory / f"ckpt_level{level:05d}.npz"

    def put(self, ckpt: BFSCheckpoint) -> None:
        """Persist a snapshot and prune beyond ``keep``."""
        ckpt.save(self.path_for(ckpt.level))
        paths = self._paths()
        for stale in paths[: -self.keep]:
            stale.unlink(missing_ok=True)

    def latest(self) -> BFSCheckpoint | None:
        """Load the most recent snapshot from disk (None when empty)."""
        paths = self._paths()
        if not paths:
            return None
        return BFSCheckpoint.load(paths[-1])

    def clear(self) -> None:
        """Delete every stored checkpoint."""
        for path in self._paths():
            path.unlink(missing_ok=True)
