"""Fault-tolerance policy, recovery pricing, and the per-run report.

:class:`ResilienceConfig` is the engine's tolerance policy: how often to
checkpoint, which store to use, how many retries/rollbacks to spend, and
the backoff schedule.  :class:`RecoveryCostModel` prices every recovery
action into *simulated* time (checkpoints, restores, failure detection,
rank respawn, retry backoff) so a recovered run's simulated seconds
honestly include their overhead.  :class:`RecoveryLog` accumulates what
happened during one run; :class:`RecoveryReport` is the frozen summary
attached to :class:`~repro.core.engine.BFSResult` and consumed by the
chaos CLI, metrics and docs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults.checkpoint import CheckpointStore, MemoryCheckpointStore

__all__ = [
    "RecoveryCostModel",
    "ResilienceConfig",
    "RecoveryLog",
    "RecoveryReport",
]


@dataclass(frozen=True)
class RecoveryCostModel:
    """Simulated-time prices of recovery actions (ns / bytes-per-ns).

    Defaults model an in-memory checkpoint on the paper's X7550 nodes
    (snapshot at memory-copy speed) with MPI-style failure detection
    timeouts; the disk bandwidths apply when a
    :class:`~repro.faults.checkpoint.DiskCheckpointStore` is used.
    """

    #: Bandwidth of an in-memory checkpoint copy (bytes/s).
    memory_snapshot_bw: float = 8e9
    #: Write/read bandwidth of an on-disk checkpoint (bytes/s).
    disk_write_bw: float = 1.5e9
    disk_read_bw: float = 3e9
    #: Fixed cost per checkpoint/restore (metadata, barriers).
    checkpoint_latency_ns: float = 20_000.0
    #: Failure-detector timeout before a crash is declared.
    crash_detect_ns: float = 2_000_000.0
    #: Cost of respawning a replacement rank and rejoining the job.
    respawn_ns: float = 10_000_000.0
    #: Retry backoff: ``base * factor**(attempt-1)`` per failed attempt.
    backoff_base_ns: float = 100_000.0
    backoff_factor: float = 2.0
    #: Per-byte cost of the frontier checksum (both sides of a verify).
    checksum_ns_per_byte: float = 0.05

    def checkpoint_ns(self, nbytes: int, on_disk: bool) -> float:
        """Simulated cost of capturing one checkpoint."""
        bw = self.disk_write_bw if on_disk else self.memory_snapshot_bw
        return self.checkpoint_latency_ns + nbytes / bw * 1e9

    def restore_ns(self, nbytes: int, on_disk: bool) -> float:
        """Simulated cost of restoring one checkpoint."""
        bw = self.disk_read_bw if on_disk else self.memory_snapshot_bw
        return self.checkpoint_latency_ns + nbytes / bw * 1e9

    def backoff_ns(self, attempt: int) -> float:
        """Exponential backoff delay after failed attempt ``attempt``."""
        return self.backoff_base_ns * self.backoff_factor ** max(
            0, attempt - 1
        )

    def checksum_ns(self, nbytes: float) -> float:
        """Cost of one checksum verification over ``nbytes``."""
        return self.checksum_ns_per_byte * float(nbytes)


@dataclass
class ResilienceConfig:
    """The engine's fault-tolerance policy.

    ``checkpoint_every=0`` disables checkpointing (crashes and corruption
    then abort with a typed :class:`~repro.errors.FaultError`); the
    default checkpoints at every level boundary.  ``store=None`` builds a
    private in-memory store per engine.
    """

    checkpoint_every: int = 1
    store: CheckpointStore | None = None
    max_attempts: int = 5
    max_rollbacks: int = 8
    verify_checksums: bool = True
    cost: RecoveryCostModel = field(default_factory=RecoveryCostModel)

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.max_rollbacks < 0:
            raise ConfigError("max_rollbacks must be >= 0")
        if self.store is None:
            self.store = MemoryCheckpointStore()

    @property
    def on_disk(self) -> bool:
        """True when checkpoints go through the disk store."""
        from repro.faults.checkpoint import DiskCheckpointStore

        return isinstance(self.store, DiskCheckpointStore)


@dataclass
class RecoveryLog:
    """What fault tolerance did during one run (mutable accumulator)."""

    checkpoints: int = 0
    checkpoint_bytes: int = 0
    retries: int = 0
    rollbacks: int = 0
    #: Levels whose work was executed, lost, and re-executed (one entry
    #: per lost execution; a level can appear repeatedly).
    replayed_levels: list[int] = field(default_factory=list)
    #: Overhead priced independently of level times: retry waste +
    #: backoff, checkpoint/restore, detection, respawn, checksums.
    fixed_overhead_ns: float = 0.0
    actions: list[dict] = field(default_factory=list)

    def note(self, action: str, **detail) -> None:
        """Append one recovery action record."""
        self.actions.append({"action": action, **detail})

    def overhead_ns(self, timing) -> float:
        """Total simulated recovery overhead given the final pricing.

        Replayed levels were executed and thrown away once per entry, so
        their (final) level time counts once more on top of the fixed
        costs.
        """
        lost = 0.0
        by_level = {lt.level: lt.total_ns for lt in timing.levels}
        for level in self.replayed_levels:
            lost += by_level.get(level, 0.0)
        return self.fixed_overhead_ns + lost


@dataclass(frozen=True)
class RecoveryReport:
    """Frozen per-run recovery summary (``BFSResult.recovery``)."""

    checkpoints: int
    checkpoint_bytes: int
    retries: int
    rollbacks: int
    replayed_levels: tuple[int, ...]
    overhead_ns: float
    fault_events: tuple[dict, ...]
    actions: tuple[dict, ...]

    @property
    def overhead_seconds(self) -> float:
        """Recovery overhead in simulated seconds."""
        return self.overhead_ns / 1e9

    @property
    def recovered(self) -> bool:
        """True when any retry or rollback actually happened."""
        return self.retries > 0 or self.rollbacks > 0

    @classmethod
    def from_log(
        cls, log: RecoveryLog, timing, fault_events
    ) -> "RecoveryReport":
        """Freeze a run's accumulator against its final pricing."""
        return cls(
            checkpoints=log.checkpoints,
            checkpoint_bytes=log.checkpoint_bytes,
            retries=log.retries,
            rollbacks=log.rollbacks,
            replayed_levels=tuple(log.replayed_levels),
            overhead_ns=log.overhead_ns(timing),
            fault_events=tuple(ev.as_dict() for ev in fault_events),
            actions=tuple(log.actions),
        )

    def as_dict(self) -> dict:
        """The report as a plain JSON-serializable dict."""
        return {
            "checkpoints": self.checkpoints,
            "checkpoint_bytes": self.checkpoint_bytes,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "replayed_levels": list(self.replayed_levels),
            "overhead_ns": self.overhead_ns,
            "fault_events": [dict(ev) for ev in self.fault_events],
            "actions": [dict(a) for a in self.actions],
        }
