"""The runtime fault injector the communicator and engine consult.

One :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
for the duration of a run.  The hooks are:

* :meth:`begin_level` — the engine announces each level before expanding
  it, so collective-level decisions know where they are;
* :meth:`collective_attempt` — every simulated collective calls this
  after computing its (priced) result but before delivering data; a
  scheduled transient failure raises
  :class:`TransientCollectiveFault` carrying the wasted simulated time
  (the full attempt is re-transmitted on retry);
* :meth:`maybe_corrupt` — the allgather offers its gathered payload for
  deterministic bit flips (detected downstream by frontier checksums);
* :meth:`take_crash` — the engine polls at each level barrier for a
  scheduled rank crash;
* :meth:`straggler_factor` / :meth:`link_derating` — pricing
  perturbations consulted by the post-assembly repricer and the
  communicator's channel models.

Everything is deterministic: decisions are counter-based hashes of the
plan seed and the collective sequence number (retries draw fresh
numbers because each retry is a new invocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, RankCrash

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "TransientCollectiveFault",
    "RankCrashFault",
    "PayloadCorruptionFault",
    "words_checksum",
]


class TransientCollectiveFault(FaultError):
    """A collective attempt failed transiently; retrying may succeed.

    ``wasted_ns`` is the simulated time of the failed attempt (the bytes
    moved before the failure are retransmitted on retry).
    """

    def __init__(self, message: str, wasted_ns: float = 0.0, **context) -> None:
        super().__init__(message, **context)
        self.wasted_ns = float(wasted_ns)


class RankCrashFault(FaultError):
    """A rank crashed; recovery needs a checkpoint restore."""


class PayloadCorruptionFault(FaultError):
    """A frontier checksum mismatched: the collective payload was
    corrupted in transit; recovery rolls back to the last checkpoint."""


def words_checksum(words: np.ndarray) -> tuple[int, int]:
    """Order-independent checksum of a word array: (xor, sum mod 2^64).

    Cheap enough to run per collective, and any single bit flip changes
    both components.  Parts checksums combine by xor/sum, so the sender
    side can be computed per rank and folded.
    """
    if words.size == 0:
        return (0, 0)
    w = words.view(np.uint64) if words.dtype != np.uint64 else words
    x = int(np.bitwise_xor.reduce(w))
    s = int(np.sum(w, dtype=np.uint64))
    return (x, s)


@dataclass
class FaultEvent:
    """One fault that actually fired (or recovery action that ran)."""

    kind: str  # crash | transient | corruption | straggler | link
    level: int
    op: str | None = None
    rank: int | None = None
    node: int | None = None
    seq: int | None = None
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The event as a plain JSON-serializable dict."""
        out = {"kind": self.kind, "level": self.level}
        for key in ("op", "rank", "node", "seq"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


class FaultInjector:
    """Stateful runtime view of a :class:`FaultPlan` for one run.

    The engine calls :meth:`reset` at the start of every run, so one
    injector can serve repeated runs (each run replays the identical
    fault schedule).  ``events`` records every fault that fired, in
    order, for the chaos report.
    """

    def __init__(self, plan: FaultPlan, tracer=None, metrics=None) -> None:
        self.plan = plan
        self.tracer = tracer
        self.metrics = metrics
        self.events: list[FaultEvent] = []
        self._level = 0
        self._seq = 0  # collective invocation counter (incl. retries)
        self._crashes_fired: set[RankCrash] = set()
        self._corruptions_fired: set = set()
        self.reset()

    # ---- lifecycle -------------------------------------------------------

    def bind(self, tracer=None, metrics=None) -> None:
        """Attach the engine's telemetry sinks (None leaves unset)."""
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics

    def reset(self) -> None:
        """Rearm every fault for a fresh run."""
        self.events = []
        self._level = 0
        self._seq = 0
        self._crashes_fired = set()
        self._corruptions_fired = set()
        # Always-on pricing faults are part of the schedule by
        # construction; record them up front so reports show them even
        # though they never "fire" at a specific collective.
        for spec in self.plan.stragglers:
            self._record(
                FaultEvent(
                    kind="straggler",
                    level=spec.first_level,
                    rank=spec.rank,
                    detail={
                        "factor": spec.factor,
                        "last_level": spec.last_level,
                    },
                )
            )
        for spec in self.plan.links:
            self._record(
                FaultEvent(
                    kind="link",
                    level=0,
                    node=spec.node,
                    detail={"factor": spec.factor},
                )
            )

    def begin_level(self, level: int) -> None:
        """The engine is about to expand ``level``."""
        self._level = level

    # ---- collective hooks ------------------------------------------------

    def collective_attempt(self, op: str, wasted_ns: float = 0.0) -> None:
        """Consulted by every collective after pricing, before delivery.

        Raises :class:`TransientCollectiveFault` when the plan schedules
        a transient failure for this invocation.
        """
        seq = self._seq
        self._seq += 1
        if self.plan.transient_fires(op, self._level, seq):
            self._record(
                FaultEvent(
                    kind="transient",
                    level=self._level,
                    op=op,
                    seq=seq,
                    detail={"wasted_ns": float(wasted_ns)},
                )
            )
            raise TransientCollectiveFault(
                f"injected transient failure in {op}",
                wasted_ns=wasted_ns,
                collective=op,
                level=self._level,
            )

    def maybe_corrupt(self, op: str, words: np.ndarray) -> np.ndarray:
        """Apply any scheduled payload corruption to ``words``.

        Returns the (possibly copied and bit-flipped) payload; flips are
        deterministic positions from the plan seed and the collective
        sequence number.
        """
        due = None
        for spec in self.plan.corruptions:
            if (
                spec not in self._corruptions_fired
                and spec.op == op
                and self._level >= spec.level
            ):
                due = spec
                break
        if due is None or words.size == 0:
            return words
        self._corruptions_fired.add(due)
        seq = self._seq  # already advanced past this collective
        corrupted = np.array(words, dtype=np.uint64, copy=True)
        nbits = corrupted.size * 64
        flipped = []
        for flip in range(due.bit_flips):
            bit = self.plan.corruption_bit(seq, nbits, flip)
            corrupted[bit // 64] ^= np.uint64(1) << np.uint64(bit % 64)
            flipped.append(bit)
        self._record(
            FaultEvent(
                kind="corruption",
                level=self._level,
                op=op,
                seq=seq,
                detail={"bits": flipped},
            )
        )
        return corrupted

    # ---- engine hooks ----------------------------------------------------

    def take_crash(self, level: int) -> RankCrash | None:
        """The crash scheduled for ``level``, if any (consumed once)."""
        for spec in self.plan.crashes:
            if spec.level == level and spec not in self._crashes_fired:
                self._crashes_fired.add(spec)
                self._record(
                    FaultEvent(kind="crash", level=level, rank=spec.rank)
                )
                return spec
        return None

    # ---- pricing hooks ---------------------------------------------------

    def straggler_factor(self, rank: int, level: int) -> float:
        """Compute slowdown of ``rank`` at ``level`` (>= 1)."""
        return self.plan.straggler_factor(rank, level)

    def link_derating(self, node: int) -> float:
        """Bandwidth multiplier of ``node`` (<= 1)."""
        return self.plan.link_derating(node)

    @property
    def has_stragglers(self) -> bool:
        """True when the plan slows any rank down."""
        return bool(self.plan.stragglers)

    @property
    def has_link_faults(self) -> bool:
        """True when the plan degrades any node's links."""
        return bool(self.plan.links)

    # ---- recording -------------------------------------------------------

    def _record(self, event: FaultEvent) -> None:
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "fault.injected_total", kind=event.kind
            ).inc()
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.instant(
                f"fault.{event.kind}", cat="fault", **event.as_dict()
            )
