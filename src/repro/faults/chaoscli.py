"""``repro-chaos`` console entry point: the fault-injection campaign.

Usage::

    repro-chaos                       # sweep the full scenario catalogue
    repro-chaos crash-early straggler # just these scenarios
    repro-chaos list                  # print the catalogue
    repro-chaos --scale 12 --nodes 2 --json /tmp/chaos.json
    repro-chaos serve                 # serve-chaos campaign (all scenarios)
    repro-chaos serve mixed --json /tmp/serve-chaos.json

Each campaign first runs a fault-free baseline, then replays the exact
same BFS (same graph, root, configuration) under every requested
scenario from the seeded catalogue (:func:`FaultPlan.scenario`).  Every
run is validated: a scenario passes only when its parent tree is
bit-identical to the baseline *and* survives the Graph500 checks of
:func:`~repro.core.validate.validate_parent_tree` — or when it aborts
with a typed, structured :class:`~repro.errors.ReproError`.  A silently
wrong answer is reported as ``mismatch`` and fails the campaign.

Outcomes:

``recovered``
    fault tolerance actually acted (retries and/or rollbacks) and the
    result is bit-identical and validated;
``degraded``
    only pricing faults fired (stragglers, link degradation) — result
    identical, simulated time worse;
``clean``
    nothing in the plan fired on this workload;
``aborted``
    the run terminated with a typed error (reported with full context);
``mismatch``
    the recovered answer differs from the baseline — always a bug.

Exit status is non-zero when any scenario aborts or mismatches.
``--json`` writes the machine-readable ``repro.chaos/v1`` report.

``repro-chaos serve`` runs the *serving-layer* chaos campaign instead
(:mod:`repro.faults.servechaos`): injected session errors, batch
stragglers, dispatcher kills and cache poison against a live
resilience-enabled scheduler, each scenario required to end
``recovered`` — every query terminally answered, the SLO monitor
burning during injection and ``ok`` after recovery.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import BFSEngine
from repro.core.validate import validate_parent_tree
from repro.errors import ReproError, ValidationError
from repro.faults.plan import FaultPlan, available_scenarios
from repro.faults.recovery import ResilienceConfig
from repro.obs.log import get_logger
from repro.util.formatting import format_table

__all__ = ["main", "run_campaign", "SCHEMA"]

SCHEMA = "repro.chaos/v1"

log = get_logger("chaos")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Deterministic fault-injection campaign over the simulated "
            "NUMA-cluster BFS: crash, straggler, flaky-link, transient "
            "and corruption scenarios, each required to recover "
            "bit-identically or abort with a typed error"
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenarios to run (default: the full catalogue); "
        "'list' prints the catalogue",
    )
    parser.add_argument(
        "--scale", type=int, default=13, help="R-MAT graph scale (2^scale vertices)"
    )
    parser.add_argument(
        "--nodes", type=int, default=2, help="simulated node count"
    )
    parser.add_argument(
        "--ppn", type=int, default=None,
        help="processes per node (default: one per socket)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-schedule seed"
    )
    parser.add_argument(
        "--graph-seed", type=int, default=2, help="R-MAT generator seed"
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="checkpoint period in levels (0 disables checkpointing; "
        "crash/corruption scenarios then abort with a typed error)",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the Graph500 parent-tree validation of every run "
        "(validation is on by default in the chaos campaign)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help=f"write the {SCHEMA} campaign report as JSON to PATH",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="append a repro.run/v1 summary of the campaign (recovery "
        "overheads, outcome counts) to the run ledger at .repro/ledger "
        "(or $REPRO_LEDGER_DIR)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics registry (fault.* / recovery.* counters) "
        "as JSON to PATH at exit",
    )
    parser.add_argument(
        "--kernel", metavar="BACKEND",
        help="BFS kernel backend (exported as $REPRO_KERNEL)",
    )
    parser.add_argument(
        "--codec", metavar="CODEC",
        help="frontier codec (exported as $REPRO_CODEC)",
    )
    return parser


def _scenario_entry(
    name, plan, engine, baseline, validate, graph, root
) -> dict:
    """Run one scenario and build its report entry."""
    entry = {"name": name, "plan": plan.as_dict()}
    try:
        result = engine.run(root)
    except ReproError as exc:
        entry["outcome"] = "aborted"
        entry["error"] = exc.to_dict()
        return entry

    identical = bool(np.array_equal(result.parent, baseline.parent))
    validated = None
    if validate:
        try:
            validate_parent_tree(graph, root, result.parent)
            validated = True
        except ValidationError:
            validated = False
    rec = result.recovery
    if not identical or validated is False:
        outcome = "mismatch"
    elif rec is not None and rec.recovered:
        outcome = "recovered"
    elif rec is not None and rec.fault_events:
        outcome = "degraded"
    else:
        outcome = "clean"
    entry.update(
        outcome=outcome,
        identical=identical,
        validated=validated,
        seconds=result.seconds,
        overhead_seconds=(
            0.0 if rec is None else rec.overhead_seconds
        ),
        overhead_pct=(
            (result.seconds - baseline.seconds) / baseline.seconds * 100.0
            if baseline.seconds > 0
            else 0.0
        ),
        retries=0 if rec is None else rec.retries,
        rollbacks=0 if rec is None else rec.rollbacks,
        checkpoints=0 if rec is None else rec.checkpoints,
        replayed_levels=[] if rec is None else list(rec.replayed_levels),
        fault_events=[] if rec is None else [dict(e) for e in rec.fault_events],
    )
    return entry


def run_campaign(
    scenarios: list[str],
    *,
    scale: int = 13,
    nodes: int = 2,
    ppn: int | None = None,
    seed: int = 0,
    graph_seed: int = 2,
    checkpoint_every: int = 1,
    validate: bool = True,
    metrics=None,
) -> dict:
    """Execute a chaos campaign and return the ``repro.chaos/v1`` report."""
    from dataclasses import replace

    from repro.graph.rmat import rmat_graph
    from repro.machine.spec import paper_cluster

    graph = rmat_graph(scale, seed=graph_seed)
    cluster = paper_cluster(nodes=nodes)
    config = BFSConfig.granularity_variant()
    if ppn is not None:
        config = replace(config, ppn=ppn)
    root = int(np.argmax(graph.degrees()))

    baseline_engine = BFSEngine(graph, cluster, config, metrics=metrics)
    baseline = baseline_engine.run(root)
    if validate:
        validate_parent_tree(graph, root, baseline.parent)
    num_ranks = baseline_engine.mapping.num_ranks

    entries = []
    for name in scenarios:
        plan = FaultPlan.scenario(
            name, seed,
            num_ranks=num_ranks, nodes=nodes, depth=baseline.levels,
        )
        engine = BFSEngine(
            graph, cluster, config,
            metrics=metrics,
            faults=plan,
            resilience=ResilienceConfig(checkpoint_every=checkpoint_every),
        )
        entries.append(
            _scenario_entry(
                name, plan, engine, baseline, validate, graph, root
            )
        )

    ok = all(
        e["outcome"] in ("recovered", "degraded", "clean") for e in entries
    )
    return {
        "schema": SCHEMA,
        "scale": scale,
        "nodes": nodes,
        "ppn": ppn,
        "num_ranks": num_ranks,
        "seed": seed,
        "graph_seed": graph_seed,
        "root": root,
        "checkpoint_every": checkpoint_every,
        "validate": validate,
        "baseline": {
            "levels": baseline.levels,
            "seconds": baseline.seconds,
            "teps": baseline.teps,
        },
        "scenarios": entries,
        "ok": ok,
    }


def _report_table(report: dict) -> str:
    headers = [
        "scenario", "outcome", "retries", "rollbacks", "replayed",
        "ckpts", "overhead%", "validated",
    ]
    rows = []
    for e in report["scenarios"]:
        if e["outcome"] == "aborted":
            err = e["error"]
            rows.append(
                [e["name"], "aborted", "-", "-", "-", "-", "-",
                 err["type"]]
            )
            continue
        rows.append(
            [
                e["name"],
                e["outcome"],
                e["retries"],
                e["rollbacks"],
                len(e["replayed_levels"]),
                e["checkpoints"],
                f"{e['overhead_pct']:+.1f}",
                {True: "yes", False: "NO", None: "skipped"}[e["validated"]],
            ]
        )
    title = (
        f"chaos campaign: scale {report['scale']}, {report['nodes']} nodes, "
        f"{report['num_ranks']} ranks, seed {report['seed']}"
    )
    return format_table(headers, rows, title=title)


def _build_serve_parser() -> argparse.ArgumentParser:
    from repro.faults.servechaos import available_serve_scenarios

    parser = argparse.ArgumentParser(
        prog="repro-chaos serve",
        description=(
            "Serving-layer chaos campaign: deterministic session, "
            "dispatcher and cache faults against a resilience-enabled "
            "batch scheduler, verified by SLO burn-rate detection and "
            "recovery"
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="serve scenarios to run (default: the full catalogue: "
        f"{', '.join(available_serve_scenarios())}); 'list' prints them",
    )
    parser.add_argument("--scale", type=int, default=10)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--ppn", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--graph-seed", type=int, default=2)
    parser.add_argument(
        "--json", metavar="PATH",
        help=f"write the {SCHEMA} (mode=serve) report as JSON to PATH",
    )
    parser.add_argument(
        "--slo-out", metavar="PATH",
        help="write the per-scenario final repro.slo/v1 reports to PATH",
    )
    parser.add_argument(
        "--ledger", action="store_true",
        help="append the campaign (and per-scenario SLO verdicts) to "
        "the run ledger",
    )
    return parser


def _serve_report_table(report: dict) -> str:
    headers = [
        "scenario", "outcome", "queries", "rejected", "restarts",
        "hedges", "retries", "burn", "after",
    ]
    rows = []
    for e in report["scenarios"]:
        if e["outcome"] == "aborted":
            rows.append(
                [e["name"], "aborted", "-", "-", "-", "-", "-", "-",
                 e["error"]["type"]]
            )
            continue
        counts = (
            (e.get("scheduler") or {}).get("resilience") or {}
        ).get("counts", {})
        queries = e.get("queries", {})
        rows.append(
            [
                e["name"],
                e["outcome"],
                sum(queries.values()),
                queries.get("rejected", 0) + queries.get("deadline", 0),
                counts.get("restarts", 0),
                counts.get("hedges", 0),
                counts.get("retries", 0),
                e["slo_during"]["verdict"],
                e["slo_after"]["verdict"],
            ]
        )
    title = (
        f"serve-chaos campaign: scale {report['scale']}, "
        f"{report['nodes']} nodes, seed {report['seed']}"
    )
    return format_table(headers, rows, title=title)


def _serve_main(argv: list[str]) -> int:
    from repro.faults.servechaos import (
        available_serve_scenarios,
        record_from_serve_chaos,
        run_serve_campaign,
    )

    args = _build_serve_parser().parse_args(argv)
    if args.scenarios and args.scenarios[0] == "list":
        for name in available_serve_scenarios():
            print(name)
        return 0
    scenarios = list(args.scenarios) or list(available_serve_scenarios())
    unknown = [s for s in scenarios if s not in available_serve_scenarios()]
    if unknown:
        print(
            f"unknown serve scenario(s) {', '.join(unknown)}; available: "
            f"{', '.join(available_serve_scenarios())}",
            file=sys.stderr,
        )
        return 2
    report = run_serve_campaign(
        scenarios,
        scale=args.scale,
        nodes=args.nodes,
        ppn=args.ppn,
        seed=args.seed,
        graph_seed=args.graph_seed,
    )
    print(_serve_report_table(report))
    for e in report["scenarios"]:
        if e["outcome"] == "aborted":
            print(f"  {e['name']}: {json.dumps(e['error'], sort_keys=True)}")
        elif e["outcome"] == "failed":
            failed = [k for k, ok in e.get("checks", {}).items() if not ok]
            print(f"  {e['name']}: failed checks: {', '.join(failed)}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("serve-chaos report written to %s", args.json)
    if args.slo_out:
        slo_reports = {
            e["name"]: e["slo_after"]
            for e in report["scenarios"]
            if "slo_after" in e
        }
        with open(args.slo_out, "w", encoding="utf-8") as fh:
            json.dump(slo_reports, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("per-scenario SLO reports written to %s", args.slo_out)
    if args.ledger:
        from repro.obs.ledger import default_ledger
        from repro.obs.slo import record_for_slo_report

        ledger = default_ledger()
        record = ledger.append(
            record_from_serve_chaos(report, source="repro-chaos")
        )
        log.info(
            "ledger: appended %s/%s @%s",
            record.kind, record.name, record.fingerprint,
        )
        for e in report["scenarios"]:
            if "slo_after" in e:
                ledger.append(
                    record_for_slo_report(
                        e["slo_after"], source=f"serve-chaos/{e['name']}"
                    )
                )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    if args.scenarios and args.scenarios[0] == "list":
        for name in available_scenarios():
            print(name)
        return 0
    if args.kernel:
        import os

        os.environ["REPRO_KERNEL"] = args.kernel
    if args.codec:
        import os

        os.environ["REPRO_CODEC"] = args.codec
    scenarios = list(args.scenarios) or list(available_scenarios())
    unknown = [s for s in scenarios if s not in available_scenarios()]
    if unknown:
        print(
            f"unknown scenario(s) {', '.join(unknown)}; available: "
            f"{', '.join(available_scenarios())}",
            file=sys.stderr,
        )
        return 2

    registry = None
    if args.metrics_out:
        from repro.obs.metrics import default_registry

        registry = default_registry()

    try:
        report = run_campaign(
            scenarios,
            scale=args.scale,
            nodes=args.nodes,
            ppn=args.ppn,
            seed=args.seed,
            graph_seed=args.graph_seed,
            checkpoint_every=args.checkpoint_every,
            validate=not args.no_validate,
            metrics=registry,
        )
    except ReproError as exc:
        # The baseline itself failed — nothing to compare against.
        log.error(
            "campaign setup failed: %s",
            json.dumps(exc.to_dict(), sort_keys=True),
        )
        return 1

    print(_report_table(report))
    for e in report["scenarios"]:
        if e["outcome"] == "aborted":
            print(
                f"  {e['name']}: {json.dumps(e['error'], sort_keys=True)}"
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("report written to %s", args.json)
    if args.ledger:
        from repro.obs.ledger import default_ledger, record_from_chaos_report

        ledger = default_ledger()
        record = ledger.append(
            record_from_chaos_report(report, source="repro-chaos")
        )
        log.info(
            "ledger: appended %s/%s @%s to %s",
            record.kind, record.name, record.fingerprint, ledger.path,
        )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(registry.to_json())
        log.info("metrics written to %s", args.metrics_out)
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
