"""Deterministic fault injection and fault-tolerant execution support.

The subsystem has four layers (see docs/ROBUSTNESS.md):

* :mod:`repro.faults.plan` — declarative, seeded fault scenarios
  (:class:`FaultPlan` and the per-kind specs);
* :mod:`repro.faults.injector` — the runtime :class:`FaultInjector` the
  communicator and engine consult before moving bytes or pricing time;
* :mod:`repro.faults.checkpoint` — level-granular BFS state snapshots
  with in-memory and on-disk (``.npz``) stores;
* :mod:`repro.faults.recovery` — the tolerance policy
  (:class:`ResilienceConfig`), simulated recovery pricing
  (:class:`RecoveryCostModel`) and the per-run :class:`RecoveryReport`.

``repro-chaos`` (:mod:`repro.faults.chaoscli`) sweeps scenario matrices
and verifies every recovered run against its fault-free twin.
"""

from repro.faults.checkpoint import (
    BFSCheckpoint,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
)
from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    PayloadCorruptionFault,
    RankCrashFault,
    TransientCollectiveFault,
    words_checksum,
)
from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    PayloadCorruption,
    RankCrash,
    StragglerSlowdown,
    TransientFaults,
    available_scenarios,
)
from repro.faults.recovery import (
    RecoveryCostModel,
    RecoveryLog,
    RecoveryReport,
    ResilienceConfig,
)

__all__ = [
    "BFSCheckpoint",
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
    "FaultEvent",
    "FaultInjector",
    "PayloadCorruptionFault",
    "RankCrashFault",
    "TransientCollectiveFault",
    "words_checksum",
    "FaultPlan",
    "LinkDegradation",
    "PayloadCorruption",
    "RankCrash",
    "StragglerSlowdown",
    "TransientFaults",
    "available_scenarios",
    "RecoveryCostModel",
    "RecoveryLog",
    "RecoveryReport",
    "ResilienceConfig",
]
