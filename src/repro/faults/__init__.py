"""Deterministic fault injection and fault-tolerant execution support.

The subsystem has four layers (see docs/ROBUSTNESS.md):

* :mod:`repro.faults.plan` — declarative, seeded fault scenarios
  (:class:`FaultPlan` and the per-kind specs);
* :mod:`repro.faults.injector` — the runtime :class:`FaultInjector` the
  communicator and engine consult before moving bytes or pricing time;
* :mod:`repro.faults.checkpoint` — level-granular BFS state snapshots
  with in-memory and on-disk (``.npz``) stores;
* :mod:`repro.faults.recovery` — the tolerance policy
  (:class:`ResilienceConfig`), simulated recovery pricing
  (:class:`RecoveryCostModel`) and the per-run :class:`RecoveryReport`.

``repro-chaos`` (:mod:`repro.faults.chaoscli`) sweeps scenario matrices
and verifies every recovered run against its fault-free twin.

The *serving* stack has its own chaos surface —
:mod:`repro.faults.serveinject` injects session errors, batch
stragglers, dispatcher kills and cache poison into the
:class:`~repro.serve.scheduler.BatchScheduler`, and
:mod:`repro.faults.servechaos` runs the ``repro-chaos serve`` campaign
that asserts detection (SLO burn) and recovery for each.
"""

from repro.faults.checkpoint import (
    BFSCheckpoint,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
)
from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    PayloadCorruptionFault,
    RankCrashFault,
    TransientCollectiveFault,
    words_checksum,
)
from repro.faults.plan import (
    SERVE_FAULT_KINDS,
    FaultPlan,
    LinkDegradation,
    PayloadCorruption,
    RankCrash,
    ServeFault,
    StragglerSlowdown,
    TransientFaults,
    available_scenarios,
)
from repro.faults.recovery import (
    RecoveryCostModel,
    RecoveryLog,
    RecoveryReport,
    ResilienceConfig,
)
# The serving-chaos layer imports repro.serve, which imports the core
# engine, which imports repro.faults.checkpoint — so these names must
# resolve lazily to keep the package import acyclic.
_LAZY = {
    "FaultySession": "repro.faults.serveinject",
    "ServeFaultInjector": "repro.faults.serveinject",
    "available_serve_scenarios": "repro.faults.servechaos",
    "run_serve_campaign": "repro.faults.servechaos",
    "serve_plan": "repro.faults.servechaos",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "BFSCheckpoint",
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
    "FaultEvent",
    "FaultInjector",
    "PayloadCorruptionFault",
    "RankCrashFault",
    "TransientCollectiveFault",
    "words_checksum",
    "FaultPlan",
    "LinkDegradation",
    "PayloadCorruption",
    "RankCrash",
    "StragglerSlowdown",
    "TransientFaults",
    "available_scenarios",
    "RecoveryCostModel",
    "RecoveryLog",
    "RecoveryReport",
    "ResilienceConfig",
    "SERVE_FAULT_KINDS",
    "ServeFault",
    "ServeFaultInjector",
    "FaultySession",
    "available_serve_scenarios",
    "run_serve_campaign",
    "serve_plan",
]
