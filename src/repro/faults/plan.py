"""Declarative, seeded fault scenarios.

A :class:`FaultPlan` is a frozen description of every fault a run should
suffer: rank crashes at specific levels, per-rank straggler slowdowns,
per-node link-bandwidth degradation, transient collective failures drawn
from a probability schedule, and payload bit-flip corruption.  The plan
is *fully deterministic*: the transient-failure and corruption draws are
counter-based hashes of ``(seed, collective sequence number)``, so the
same plan produces the identical fault schedule — and therefore the
identical recovered result and simulated-time pricing — on every run, on
every machine (no RNG state, no ``PYTHONHASHSEED`` dependence).

Plans are built directly from the spec dataclasses or via the named
scenario catalogue (:func:`FaultPlan.scenario`) the chaos CLI sweeps.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields

from repro.errors import ConfigError

__all__ = [
    "RankCrash",
    "StragglerSlowdown",
    "LinkDegradation",
    "TransientFaults",
    "PayloadCorruption",
    "ServeFault",
    "SERVE_FAULT_KINDS",
    "FaultPlan",
    "available_scenarios",
]

#: Serving-scoped fault kinds (:class:`ServeFault.kind`).
SERVE_FAULT_KINDS = (
    "session-error",
    "straggler",
    "dispatcher-kill",
    "cache-poison",
)


def _unit_hash(seed: int, *parts) -> float:
    """Deterministic value in [0, 1) from a seed and discrete parts.

    CRC32 over the canonical repr — stable across processes and Python
    versions, unlike ``hash()``.
    """
    payload = repr((int(seed),) + tuple(parts)).encode("ascii")
    return zlib.crc32(payload) / 2**32


def _spec_dict(spec) -> dict:
    out = {"kind": type(spec).__name__}
    for f in fields(spec):
        out[f.name] = getattr(spec, f.name)
    return out


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` crashes while executing level ``level``.

    The crash is detected at the level's barrier; recovery restores the
    last checkpoint and replays the lost levels.  Each crash fires once.
    """

    rank: int
    level: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigError(f"crash rank must be >= 0, got {self.rank}")
        if self.level < 0:
            raise ConfigError(f"crash level must be >= 0, got {self.level}")


@dataclass(frozen=True)
class StragglerSlowdown:
    """Rank ``rank`` computes ``factor``x slower on a window of levels.

    A pure pricing perturbation: the functional result is unchanged, but
    the rank's per-level compute time — and therefore every other rank's
    barrier stall — is inflated (``last_level=None`` = to the end).
    """

    rank: int
    factor: float
    first_level: int = 0
    last_level: int | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigError(
                f"straggler factor must be >= 1, got {self.factor}"
            )

    def applies(self, level: int) -> bool:
        """True when this slowdown is active at ``level``."""
        if level < self.first_level:
            return False
        return self.last_level is None or level <= self.last_level


@dataclass(frozen=True)
class LinkDegradation:
    """Node ``node``'s InfiniBand bandwidth is multiplied by ``factor``.

    Composes with the cluster's own ``weak_nodes`` derating and applies
    for the whole run, to both the functional collectives and the final
    pricing pass (which share the communicator).
    """

    node: int
    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ConfigError(
                f"link degradation factor must be in (0, 1], got {self.factor}"
            )


@dataclass(frozen=True)
class TransientFaults:
    """Collectives fail transiently with probability ``probability``.

    Whether the ``k``-th collective invocation of the run fails is a
    counter-based hash of ``(seed, k)`` — deterministic, and each retry
    (a new invocation) draws a fresh value, so bounded retry converges.
    ``ops`` filters the collectives targeted; the level window bounds
    when the schedule is live.
    """

    probability: float
    ops: tuple[str, ...] = ("allgather", "alltoallv")
    first_level: int = 0
    last_level: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ConfigError(
                f"transient probability must be in [0, 1), got "
                f"{self.probability}"
            )

    def applies(self, op: str, level: int) -> bool:
        """True when this schedule covers collective ``op`` at ``level``."""
        if op not in self.ops or level < self.first_level:
            return False
        return self.last_level is None or level <= self.last_level


@dataclass(frozen=True)
class PayloadCorruption:
    """Flip ``bit_flips`` bits in the first matching collective payload.

    Fires once, on the first ``op`` collective at or after ``level``.
    The engine's frontier checksums detect the damage and roll back to
    the last checkpoint instead of computing a silently wrong tree.
    """

    level: int
    bit_flips: int = 1
    op: str = "allgather"

    def __post_init__(self) -> None:
        if self.bit_flips < 1:
            raise ConfigError(
                f"bit_flips must be >= 1, got {self.bit_flips}"
            )


@dataclass(frozen=True)
class ServeFault:
    """A serving-layer fault, fired by a deterministic batch counter.

    Unlike the simulator faults above — which key off BFS levels inside
    one traversal — serving faults key off the *batch sequence* the
    scheduler dispatches: the fault fires on the ``at_batch``-th batch
    observed since the injector was (re-)armed, for ``count``
    consecutive batches.  The four kinds
    (:data:`SERVE_FAULT_KINDS`):

    * ``session-error`` — the session raises a
      :class:`~repro.errors.FaultError` instead of answering;
    * ``straggler`` — the batch sleeps ``delay_s`` before answering
      (drives the scheduler's hedging path);
    * ``dispatcher-kill`` — the dispatcher task crashes with the batch
      un-acked (drives supervision + replay);
    * ``cache-poison`` — the cached copy of the batch's results gets a
      wrong ``root`` (drives poison detection on the next hit).
    """

    kind: str
    at_batch: int = 0
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_KINDS:
            raise ConfigError(
                f"serve fault kind must be one of {SERVE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at_batch < 0:
            raise ConfigError(
                f"serve fault at_batch must be >= 0, got {self.at_batch}"
            )
        if self.count < 1:
            raise ConfigError(
                f"serve fault count must be >= 1, got {self.count}"
            )
        if self.delay_s < 0:
            raise ConfigError(
                f"serve fault delay_s must be >= 0, got {self.delay_s}"
            )
        if self.kind == "straggler" and self.delay_s == 0:
            raise ConfigError("a straggler serve fault needs delay_s > 0")

    def fires_at(self, batch_index: int) -> bool:
        """True when this fault covers the ``batch_index``-th batch
        since the injector was armed."""
        return self.at_batch <= batch_index < self.at_batch + self.count


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong during one BFS run."""

    seed: int = 0
    crashes: tuple[RankCrash, ...] = ()
    stragglers: tuple[StragglerSlowdown, ...] = ()
    links: tuple[LinkDegradation, ...] = ()
    transients: tuple[TransientFaults, ...] = ()
    corruptions: tuple[PayloadCorruption, ...] = ()
    #: Serving-layer faults (ignored by the simulator engines; consumed
    #: by :class:`repro.faults.serveinject.ServeFaultInjector`).
    serve: tuple[ServeFault, ...] = ()

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.crashes
            or self.stragglers
            or self.links
            or self.transients
            or self.corruptions
            or self.serve
        )

    def transient_fires(self, op: str, level: int, seq: int) -> bool:
        """Deterministic failure decision for collective invocation
        ``seq`` (``op`` at ``level``)."""
        for spec in self.transients:
            if spec.applies(op, level) and (
                _unit_hash(self.seed, "transient", seq) < spec.probability
            ):
                return True
        return False

    def straggler_factor(self, rank: int, level: int) -> float:
        """Combined compute slowdown of ``rank`` at ``level`` (>= 1)."""
        factor = 1.0
        for spec in self.stragglers:
            if spec.rank == rank and spec.applies(level):
                factor *= spec.factor
        return factor

    def link_derating(self, node: int) -> float:
        """Combined bandwidth multiplier of ``node`` (<= 1)."""
        factor = 1.0
        for spec in self.links:
            if spec.node == node:
                factor *= spec.factor
        return factor

    def corruption_bit(self, seq: int, nbits: int, flip: int) -> int:
        """Deterministic position of the ``flip``-th corrupted bit in an
        ``nbits``-bit payload (collective invocation ``seq``)."""
        return int(
            _unit_hash(self.seed, "corrupt", seq, flip) * nbits
        ) % max(1, nbits)

    def as_dict(self) -> dict:
        """The plan as a plain JSON-serializable dict."""
        return {
            "seed": self.seed,
            "crashes": [_spec_dict(s) for s in self.crashes],
            "stragglers": [_spec_dict(s) for s in self.stragglers],
            "links": [_spec_dict(s) for s in self.links],
            "transients": [_spec_dict(s) for s in self.transients],
            "corruptions": [_spec_dict(s) for s in self.corruptions],
            "serve": [_spec_dict(s) for s in self.serve],
        }

    # ---- scenario catalogue -----------------------------------------------

    @classmethod
    def scenario(
        cls,
        name: str,
        seed: int = 0,
        *,
        num_ranks: int = 16,
        nodes: int = 2,
        depth: int = 6,
    ) -> "FaultPlan":
        """A named scenario from the chaos catalogue.

        ``depth`` is the (expected) number of BFS levels — scenarios that
        strike "late" clamp their trigger level against it so the fault
        always fires.
        """
        builder = _SCENARIOS.get(name)
        if builder is None:
            raise ConfigError(
                f"unknown chaos scenario {name!r}; available: "
                f"{', '.join(available_scenarios())}"
            )
        return builder(
            seed, max(1, num_ranks), max(1, nodes), max(2, depth)
        )


def _crash_early(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(
        seed=seed, crashes=(RankCrash(rank=1 % num_ranks, level=1),)
    )


def _crash_late(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(RankCrash(rank=num_ranks - 1, level=max(1, depth - 2)),),
    )


def _straggler(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(
        seed=seed, stragglers=(StragglerSlowdown(rank=0, factor=3.0),)
    )


def _flaky_link(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        links=(LinkDegradation(node=nodes - 1, factor=0.25),),
        transients=(TransientFaults(probability=0.15),),
    )


def _corruption(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        corruptions=(
            PayloadCorruption(level=min(2, depth - 1), bit_flips=3),
        ),
    )


def _transient(seed, num_ranks, nodes, depth) -> FaultPlan:
    return FaultPlan(seed=seed, transients=(TransientFaults(probability=0.3),))


_SCENARIOS = {
    "crash-early": _crash_early,
    "crash-late": _crash_late,
    "straggler": _straggler,
    "flaky-link": _flaky_link,
    "corruption": _corruption,
    "transient": _transient,
}


def available_scenarios() -> tuple[str, ...]:
    """Names of the built-in chaos scenarios, in sweep order."""
    return tuple(_SCENARIOS)
