"""Deterministic fault injection for the serving stack.

The simulator injector (:mod:`repro.faults.injector`) lives inside one
traversal; this module injects faults *around* traversals, at the
seams the serving scheduler actually has: the session call, the
dispatcher loop, and the result cache.  A
:class:`ServeFaultInjector` consumes the ``serve`` specs of a
:class:`~repro.faults.plan.FaultPlan` and fires them off deterministic
per-hook counters — the N-th session batch, the N-th dispatched batch,
the N-th cached result since :meth:`ServeFaultInjector.arm` — so a
seeded chaos campaign replays the identical fault schedule every run.

Wiring: wrap the scheduler's session in :meth:`wrap_session` (session
errors and stragglers), hand the injector to
:class:`~repro.serve.scheduler.BatchScheduler` via its ``faults``
parameter (dispatcher kills via ``dispatcher_tick``, cache poison via
``maybe_poison``), and read :attr:`events` for the chaos report.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.errors import FaultError
from repro.faults.injector import FaultEvent
from repro.faults.plan import FaultPlan

__all__ = ["FaultySession", "ServeFaultInjector"]


class ServeFaultInjector:
    """Runtime view of a plan's serving-scoped faults.

    Each injection hook keeps its own batch counter, reset together by
    :meth:`arm` — the chaos campaign arms at the injection-phase
    boundary so ``at_batch`` counts batches *into the phase*, not since
    process start.  Thread-safe: hooks fire from the event loop and
    from executor threads.
    """

    def __init__(
        self, plan: FaultPlan, sleep=time.sleep, armed: bool = False
    ) -> None:
        self.plan = plan
        self.sleep = sleep
        self.events: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._armed = bool(armed)
        self._session_seq = 0
        self._dispatch_seq = 0
        self._poison_seq = 0

    @property
    def armed(self) -> bool:
        """Whether the hooks are live (they no-op until armed)."""
        return self._armed

    def arm(self) -> None:
        """Go live and reset every hook counter (phase boundary).

        Until the first ``arm()`` the injector observes but never
        fires, so a campaign's clean baseline phase can share the
        wired-up scheduler with the injection phase.
        """
        with self._lock:
            self._armed = True
            self._session_seq = 0
            self._dispatch_seq = 0
            self._poison_seq = 0

    def disarm(self) -> None:
        """Stop firing (recovery phase); counters keep their values."""
        with self._lock:
            self._armed = False

    def _specs(self, *kinds):
        return [s for s in self.plan.serve if s.kind in kinds]

    def _record(self, spec, seq: int, **detail) -> None:
        with self._lock:
            self.events.append(
                FaultEvent(
                    kind=f"serve-{spec.kind}",
                    level=0,
                    seq=seq,
                    detail={"scope": "serve", **detail},
                )
            )

    def wrap_session(self, session) -> "FaultySession":
        """The session proxy that injects session-level faults."""
        return FaultySession(session, self)

    # ---- hooks (called by the scheduler / session proxy) ----------------

    def session_tick(self, batch_size: int) -> None:
        """One session batch is about to run; maybe delay or fail it.

        A ``straggler`` spec sleeps ``delay_s`` in the calling (executor)
        thread — exactly what a wedged NUMA node looks like to the
        scheduler — and a ``session-error`` spec raises
        :class:`FaultError` in its place.
        """
        with self._lock:
            if not self._armed:
                return
            seq = self._session_seq
            self._session_seq += 1
        for spec in self._specs("straggler"):
            if spec.fires_at(seq):
                self._record(spec, seq, delay_s=spec.delay_s,
                             batch_size=batch_size)
                self.sleep(spec.delay_s)
        for spec in self._specs("session-error"):
            if spec.fires_at(seq):
                self._record(spec, seq, batch_size=batch_size)
                raise FaultError(
                    "injected session failure",
                    kind="session-error",
                    attempt=seq,
                )

    def dispatcher_tick(self) -> None:
        """One batch was assembled; maybe crash the dispatcher.

        Raising here — after pickup, before the batch runs — leaves the
        batch un-acked, which is precisely the state dispatcher
        supervision and exactly-once replay must absorb.
        """
        with self._lock:
            if not self._armed:
                return
            seq = self._dispatch_seq
            self._dispatch_seq += 1
        for spec in self._specs("dispatcher-kill"):
            if spec.fires_at(seq):
                self._record(spec, seq)
                raise FaultError(
                    "injected dispatcher kill",
                    kind="dispatcher-kill",
                    attempt=seq,
                )

    def maybe_poison(self, result):
        """Possibly corrupt the copy of ``result`` headed for the cache.

        Returns a *new* result object with a wrong ``root`` (the shared
        original handed to waiters is never mutated); results without a
        ``root`` field pass through untouched.  The scheduler's poison
        detection must catch the mismatch on the next cache hit.
        """
        with self._lock:
            if not self._armed:
                return result
            seq = self._poison_seq
            self._poison_seq += 1
        for spec in self._specs("cache-poison"):
            if spec.fires_at(seq):
                root = getattr(result, "root", None)
                if root is None:
                    return result
                self._record(spec, seq, root=int(root))
                try:
                    return dataclasses.replace(result, root=int(root) + 1)
                except TypeError:  # not a dataclass — leave it alone
                    return result
        return result

    def events_as_dicts(self) -> list:
        """Every fired fault as plain dicts (for the chaos report)."""
        with self._lock:
            return [event.as_dict() for event in self.events]


class FaultySession:
    """Session proxy that routes batches through the injector.

    Mirrors the :class:`~repro.serve.session.GraphSession` surface the
    scheduler touches.  ``fresh()`` returns a *clean* (unwrapped)
    session — hedged retries and failure retries run against it, and a
    retry that still hit the injected fault would defeat the point of
    retrying somewhere fresh.
    """

    def __init__(self, session, injector: ServeFaultInjector) -> None:
        self._inner = session
        self._injector = injector

    @property
    def inner(self):
        """The wrapped session (ground-truth checks go here)."""
        return self._inner

    @property
    def graph(self):
        """The wrapped session's graph."""
        return self._inner.graph

    @property
    def config(self):
        """The wrapped session's per-query config."""
        return self._inner.config

    @property
    def digest(self) -> str:
        """The wrapped session's graph digest."""
        return self._inner.digest

    @property
    def tracer(self):
        """The wrapped session's tracer, if any."""
        return getattr(self._inner, "tracer", None)

    def fresh(self):
        """A clean, *unwrapped* session — retries dodge the injector."""
        return self._inner.fresh()

    def run(self, source: int, validate: bool = False):
        """Single-source convenience over :meth:`run_batch`."""
        return self.run_batch([source], validate=validate)[0]

    def run_batch(
        self,
        sources,
        validate: bool = False,
        trace_ids=None,
        batch_id: str | None = None,
        cancel=None,
    ):
        """Run a batch, letting the injector delay or fail it first."""
        self._injector.session_tick(len(list(sources)))
        return self._inner.run_batch(
            sources, validate=validate, trace_ids=trace_ids,
            batch_id=batch_id, cancel=cancel,
        )
