"""The serve-chaos campaign: injected serving faults, verified recovery.

One scenario run is three phases of open-loop load against a single
:class:`~repro.serve.scheduler.BatchScheduler` whose session and
dispatcher are wrapped by a :class:`ServeFaultInjector`:

* **baseline** — clean traffic that warms the result cache, the
  hedge-threshold histogram and the SLO sample history;
* **injection** — the injector is armed and the scenario's faults fire
  on deterministic batch counters while traffic continues; the SLO
  monitor is evaluated at the phase boundary and must *detect the burn*
  (for latency-visible faults);
* **recovery** — clean traffic again, long enough to flush the burn
  windows; the final SLO evaluation must come back ``ok``.

A scenario **recovers** when every query got exactly one terminal
result (a successful answer, a stale-degraded answer, or a structured
rejection — never a hang, never a raw exception), the expected
resilience mechanism actually engaged (restart + replay for dispatcher
kills, hedging for stragglers, retry for session errors, poison
detection for cache poison), spot-checked answers match a clean
session bit-for-bit, and the SLO verdict sequence is
burn-during / ok-after.  The campaign report uses the ``repro.chaos/v1``
schema with ``mode: "serve"`` and lands in the run ledger next to the
simulator chaos campaigns.
"""

from __future__ import annotations

import asyncio
import time
import zlib

import numpy as np

from repro.core.config import BFSConfig
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    FaultError,
    ReproError,
    ServeOverloadError,
)
from repro.faults.plan import FaultPlan, ServeFault
from repro.faults.serveinject import ServeFaultInjector
from repro.graph.rmat import rmat_graph
from repro.machine.spec import paper_cluster
from repro.obs.ledger import LedgerRecord, config_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor, SLOObjective, SLOSpec
from repro.serve.resilience import ResiliencePolicy
from repro.serve.scheduler import BatchScheduler
from repro.serve.session import BFSService

__all__ = [
    "SCHEMA",
    "available_serve_scenarios",
    "record_from_serve_chaos",
    "run_serve_campaign",
    "serve_plan",
]

SCHEMA = "repro.chaos/v1"

#: Queries whose answers burn the latency budget still *succeed* —
#: the objective is deliberately tighter than an injected fault's
#: recovery latency so the monitor must notice every injection.
_SLO_P99_MS = 50.0
_SLO_ERROR_RATE = 0.2


def _jitter(seed: int, name: str) -> int:
    """Deterministic 0..2 batch offset so the seed moves the schedule."""
    return zlib.crc32(repr((int(seed), name)).encode("ascii")) % 3


def _distinct_roots(graph, count: int, seed: int) -> np.ndarray:
    """``count`` *distinct* positive-degree roots.

    :func:`pick_root_pool` samples with replacement (hot-root load
    shapes want repeats); the campaign instead needs every
    injection-phase query to miss the result cache, so roots must not
    collide across phases.
    """
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    rng = np.random.default_rng(seed)
    count = min(int(count), int(candidates.size))
    return rng.choice(candidates, size=count, replace=False).astype(np.int64)


def serve_plan(name: str, seed: int = 0) -> FaultPlan:
    """The named serving-fault scenario as a :class:`FaultPlan`.

    ``at_batch`` offsets are derived from the seed, so two seeds strike
    at different points of the injection phase while one seed replays
    identically.
    """
    builder = _SERVE_SCENARIOS.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown serve-chaos scenario {name!r}; available: "
            f"{', '.join(available_serve_scenarios())}"
        )
    return builder(int(seed))


def _session_error(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        serve=(
            ServeFault(
                kind="session-error",
                at_batch=_jitter(seed, "session-error"),
            ),
        ),
    )


def _straggler(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        serve=(
            ServeFault(
                kind="straggler",
                at_batch=_jitter(seed, "straggler"),
                delay_s=0.4,
            ),
        ),
    )


def _dispatcher_kill(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        serve=(
            ServeFault(
                kind="dispatcher-kill",
                at_batch=_jitter(seed, "dispatcher-kill"),
            ),
        ),
    )


def _cache_poison(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed, serve=(ServeFault(kind="cache-poison", at_batch=0),)
    )


def _mixed(seed: int) -> FaultPlan:
    # The CI scenario: a dispatcher kill and a session straggler in one
    # injection phase — supervision + replay and hedging both engage.
    return FaultPlan(
        seed=seed,
        serve=(
            ServeFault(kind="dispatcher-kill", at_batch=0),
            ServeFault(
                kind="straggler",
                at_batch=1 + _jitter(seed, "mixed-straggler"),
                delay_s=0.4,
            ),
        ),
    )


_SERVE_SCENARIOS = {
    "session-error": _session_error,
    "straggler": _straggler,
    "dispatcher-kill": _dispatcher_kill,
    "cache-poison": _cache_poison,
    "mixed": _mixed,
}


def available_serve_scenarios() -> tuple[str, ...]:
    """Names of the built-in serve-chaos scenarios, in sweep order."""
    return tuple(_SERVE_SCENARIOS)


async def _drive_phase(
    scheduler,
    roots,
    qps: float,
    deadline_ms: float | None,
    outcomes: dict,
    answers: dict,
) -> None:
    """Offer ``roots`` open-loop at ``qps``; bucket every terminal result.

    Every query ends in exactly one bucket — ``success`` (answers are
    kept for the correctness spot-check), ``deadline``, ``rejected``
    (structured admission refusals), ``fault`` (an injected fault
    escaped every retry) or ``error`` (anything else; always a scenario
    failure).
    """

    async def one(delay: float, root: int) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            result = await scheduler.submit(root, deadline_ms=deadline_ms)
        except DeadlineExceededError:
            outcomes["deadline"] += 1
        except ServeOverloadError:
            outcomes["rejected"] += 1
        except FaultError:
            outcomes["fault"] += 1
        except Exception:
            outcomes["error"] += 1
        else:
            outcomes["success"] += 1
            answers[root] = result

    gap = 1.0 / qps if qps and qps != float("inf") else 0.0
    await asyncio.gather(
        *(one(i * gap, int(root)) for i, root in enumerate(roots))
    )


async def _run_scenario(
    name: str,
    plan: FaultPlan,
    service,
    graph,
    cluster,
    config,
    seed: int,
) -> dict:
    registry = MetricsRegistry()
    injector = ServeFaultInjector(plan)
    session = injector.wrap_session(
        service.session(graph, cluster, config, metrics=None)
    )
    policy = ResiliencePolicy(
        max_queue_depth=256,
        shed_policy="reject",
        hedge=True,
        hedge_percentile=99.0,
        hedge_min_ms=100.0,
        hedge_warmup=2,
        retry_failed=True,
        breaker_threshold=5,
        breaker_cooldown_s=0.5,
        supervise=True,
        restart_backoff_s=0.05,
        restart_backoff_max_s=0.5,
        max_restarts=5,
    )
    spec = SLOSpec(
        name="serve-chaos",
        objectives=(
            SLOObjective(kind="latency", threshold_ms=_SLO_P99_MS),
            SLOObjective(kind="error_rate", max_rate=_SLO_ERROR_RATE),
        ),
        fast_window_s=0.75,
        slow_window_s=1.5,
    )
    monitor = SLOMonitor(registry, spec)
    scheduler = BatchScheduler(
        session,
        max_batch=16,
        max_wait_ms=1.0,
        result_cache=256,
        metrics=registry,
        resilience=policy,
        faults=injector,
    )
    outcomes = {
        "success": 0,
        "deadline": 0,
        "rejected": 0,
        "fault": 0,
        "error": 0,
    }
    answers: dict[int, object] = {}
    # Distinct root sets per phase: baseline/injection queries each hit a
    # fresh root so every query exercises a real batch; the cache-poison
    # scenario instead *reuses* its injection roots so poisoned entries
    # get re-read (detection needs a second lookup).
    pool = _distinct_roots(graph, 72, seed=seed)
    roots_a = pool[:24]
    if name == "cache-poison":
        small = pool[24:28]
        roots_b = np.concatenate([small, small, small])
        roots_c = np.resize(small, 44)
    else:
        roots_b = pool[24:48]
        roots_c = np.resize(pool[48:72], 44)

    stop_sampling = asyncio.Event()

    async def sampler() -> None:
        while not stop_sampling.is_set():
            monitor.sample()
            try:
                await asyncio.wait_for(stop_sampling.wait(), 0.1)
            except asyncio.TimeoutError:
                continue

    async with scheduler:
        sample_task = asyncio.get_running_loop().create_task(sampler())
        try:
            # Phase A: clean baseline (warms hedging stats + SLO history).
            await _drive_phase(
                scheduler, roots_a, 200.0, 2000.0, outcomes, answers
            )
            await asyncio.sleep(0.2)
            # Phase B: injection.  A finite (but hot) rate spreads the
            # queries over many small batches, so every deterministic
            # at_batch offset in the scenario catalogue is reached.
            injector.arm()
            await _drive_phase(
                scheduler, roots_b, 300.0, 4000.0, outcomes, answers
            )
            monitor.sample()
            slo_during = monitor.evaluate()
            # Phase C: recovery — clean traffic long enough that both
            # burn windows contain only post-fault events.
            await _drive_phase(
                scheduler, roots_c, 20.0, 2000.0, outcomes, answers
            )
            await asyncio.sleep(0.1)
            monitor.sample()
            slo_after = monitor.evaluate()
            stats = scheduler.stats()
        finally:
            stop_sampling.set()
            await sample_task

    # Correctness spot-check: served answers vs a clean session.
    truth = service.session(graph, cluster, config)
    checked = 0
    correct = True
    for root in list(answers)[:5]:
        result = answers[root]
        expected = truth.run(int(root))
        checked += 1
        if int(result.root) != int(root) or not np.array_equal(
            result.parent, expected.parent
        ):
            correct = False

    counts = (stats.get("resilience") or {}).get("counts", {})
    kinds = {s.kind for s in plan.serve}
    checks = {
        "all_queries_terminal": (
            sum(outcomes.values())
            == len(roots_a) + len(roots_b) + len(roots_c)
        ),
        "no_unstructured_errors": (
            outcomes["error"] == 0 and outcomes["fault"] == 0
        ),
        "answers_correct": correct and checked > 0,
        "slo_recovered": slo_after["verdict"] == "ok",
    }
    # Latency-visible faults must be *detected* by the burn-rate monitor
    # at the injection boundary; session errors and cache poison recover
    # too fast for the latency objective, so their detection check is
    # the mechanism engaging instead.
    if kinds & {"straggler", "dispatcher-kill"}:
        checks["slo_burn_detected"] = slo_during["verdict"] != "ok"
    if "dispatcher-kill" in kinds:
        checks["dispatcher_restarted"] = counts.get("restarts", 0) >= 1
        checks["queries_replayed"] = counts.get("replayed", 0) >= 1
    if "straggler" in kinds:
        checks["hedge_fired"] = counts.get("hedges", 0) >= 1
    if "session-error" in kinds:
        checks["retry_fired"] = counts.get("retries", 0) >= 1
    if "cache-poison" in kinds:
        checks["poison_detected"] = counts.get("poison_detected", 0) >= 1
    outcome = "recovered" if all(checks.values()) else "failed"
    return {
        "name": name,
        "outcome": outcome,
        "plan": plan.as_dict(),
        "events": injector.events_as_dicts(),
        "queries": outcomes,
        "checks": checks,
        "stale_served": counts.get("stale_served", 0),
        "slo_during": {
            "verdict": slo_during["verdict"],
            "objectives": {
                o["label"]: o["verdict"] for o in slo_during["objectives"]
            },
        },
        "slo_after": slo_after,
        "scheduler": stats,
        "correctness_spot_checks": checked,
    }


def run_serve_campaign(
    scenarios: list[str],
    *,
    scale: int = 10,
    nodes: int = 2,
    ppn: int | None = None,
    seed: int = 0,
    graph_seed: int = 2,
) -> dict:
    """Run the named serve-chaos scenarios; returns the campaign report.

    One graph and prepared-graph cache are shared across scenarios (the
    faults live in the serving layer, not the partition); each scenario
    gets its own scheduler, metrics registry, injector and SLO monitor.
    """
    graph = rmat_graph(scale=scale, seed=graph_seed)
    cluster = paper_cluster(nodes=nodes)
    config = BFSConfig.original_ppn8()
    if ppn is not None:
        from dataclasses import replace

        config = replace(config, ppn=ppn)
    service = BFSService(cluster=cluster)
    # Warm the prepared graph once so scenario timings exclude the build.
    service.session(graph, cluster, config)
    entries = []
    for name in scenarios:
        plan = serve_plan(name, seed=seed)
        try:
            entry = asyncio.run(
                _run_scenario(
                    name, plan, service, graph, cluster, config, seed
                )
            )
        except ReproError as exc:
            entry = {
                "name": name,
                "outcome": "aborted",
                "plan": plan.as_dict(),
                "error": exc.to_dict(),
            }
        entries.append(entry)
    return {
        "schema": SCHEMA,
        "mode": "serve",
        "scale": scale,
        "nodes": nodes,
        "ppn": ppn,
        "seed": seed,
        "graph_seed": graph_seed,
        "scenarios": entries,
        "ok": bool(entries)
        and all(e["outcome"] == "recovered" for e in entries),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def record_from_serve_chaos(report: dict, source: str = "") -> LedgerRecord:
    """A ledger record (kind ``chaos``) from one serve-chaos report."""
    if report.get("schema") != SCHEMA or report.get("mode") != "serve":
        raise ValueError(
            f"not a serve-chaos report: schema {report.get('schema')!r} "
            f"mode {report.get('mode')!r}"
        )
    axes = {
        "mode": "serve",
        "scale": report.get("scale"),
        "nodes": report.get("nodes"),
        "ppn": report.get("ppn"),
        "seed": report.get("seed"),
    }
    scenarios = report.get("scenarios", [])
    metrics: dict[str, float] = {
        "scenarios": float(len(scenarios)),
        "recovered": float(
            sum(1 for s in scenarios if s.get("outcome") == "recovered")
        ),
        "ok": 1.0 if report.get("ok") else 0.0,
    }
    for entry in scenarios:
        counts = (
            (entry.get("scheduler") or {}).get("resilience") or {}
        ).get("counts", {})
        for key in ("restarts", "replayed", "hedges", "retries",
                    "poison_detected"):
            if counts.get(key):
                metrics[f"{entry['name']}.{key}"] = float(counts[key])
    return LedgerRecord(
        kind="chaos",
        name="serve-chaos",
        fingerprint=config_fingerprint(axes),
        config=axes,
        metrics=metrics,
        labels={
            "source": source or "repro-chaos",
            "mode": "serve",
            "outcomes": ",".join(
                f"{s['name']}={s.get('outcome')}" for s in scenarios
            ),
        },
        extra={
            "checks": {
                s["name"]: s.get("checks", {}) for s in scenarios
            },
        },
    )
