"""Segmented (per-CSR-row) operations over flat edge arrays.

The bottom-up BFS step needs, for every unvisited vertex ``v`` with adjacency
slice ``adj[offsets[v]:offsets[v+1]]``, the *first* neighbour that lies in the
current frontier (its parent) and the number of edges that an early-exiting
scan would have examined.  Doing this per vertex in Python would be hopeless;
these helpers express the same computation as a handful of numpy passes over
the concatenated edge array.

Segments are described by an ``offsets`` array of length ``nseg + 1`` with
``offsets[0] == 0`` and ``offsets[-1] == n`` where ``n`` is the length of the
flat value array.  Empty segments are allowed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_ids",
    "segment_first_true",
    "segment_any",
    "segment_sums",
    "segment_counts_until_first_true",
]


def _check_offsets(offsets: np.ndarray, n: int) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a 1-D array with at least one entry")
    if offsets[0] != 0 or offsets[-1] != n:
        raise ValueError(
            f"offsets must start at 0 and end at {n}, got {offsets[0]}..{offsets[-1]}"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def segment_ids(offsets: np.ndarray, n: int | None = None) -> np.ndarray:
    """Segment index of every flat element.

    ``segment_ids([0, 2, 2, 5]) == [0, 0, 2, 2, 2]``.
    """
    if n is None:
        n = int(np.asarray(offsets)[-1])
    offsets = _check_offsets(offsets, n)
    nseg = offsets.size - 1
    lengths = np.diff(offsets)
    return np.repeat(np.arange(nseg, dtype=np.int64), lengths)


def segment_first_true(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Flat index of the first True element in each segment, or -1.

    Returns an int64 array of length ``nseg``.
    """
    mask = np.asarray(mask, dtype=bool)
    offsets = _check_offsets(offsets, mask.size)
    nseg = offsets.size - 1
    out = np.full(nseg, -1, dtype=np.int64)
    hits = np.flatnonzero(mask)
    if hits.size == 0:
        return out
    # For each segment, the first hit is the first element of `hits` that is
    # >= offsets[s]; it belongs to the segment iff it is < offsets[s + 1].
    pos = np.searchsorted(hits, offsets[:-1], side="left")
    valid = pos < hits.size
    cand = np.where(valid, hits[np.minimum(pos, hits.size - 1)], -1)
    in_seg = valid & (cand < offsets[1:])
    out[in_seg] = cand[in_seg]
    return out


def segment_any(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Boolean per segment: does the segment contain any True element?"""
    return segment_first_true(mask, offsets) >= 0


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum of values within each segment (empty segments sum to 0)."""
    values = np.asarray(values)
    offsets = _check_offsets(offsets, values.size)
    if values.size == 0:
        return np.zeros(offsets.size - 1, dtype=np.int64)
    csum = np.concatenate([[0], np.cumsum(values, dtype=np.int64)])
    return csum[offsets[1:]] - csum[offsets[:-1]]


def segment_counts_until_first_true(
    mask: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Number of elements an early-exiting scan examines per segment.

    A scan over segment ``s`` examines elements in order and stops at the
    first True element (inclusive).  If the segment has no True element the
    whole segment is examined.  This models the bottom-up BFS early exit:
    the parent search stops at the first neighbour found in the frontier.
    """
    mask = np.asarray(mask, dtype=bool)
    offsets = _check_offsets(offsets, mask.size)
    first = segment_first_true(mask, offsets)
    lengths = np.diff(offsets)
    examined = lengths.copy()
    found = first >= 0
    examined[found] = first[found] - offsets[:-1][found] + 1
    return examined
