"""Segmented (per-CSR-row) operations over flat edge arrays.

The bottom-up BFS step needs, for every unvisited vertex ``v`` with adjacency
slice ``adj[offsets[v]:offsets[v+1]]``, the *first* neighbour that lies in the
current frontier (its parent) and the number of edges that an early-exiting
scan would have examined.  Doing this per vertex in Python would be hopeless;
these helpers express the same computation as a handful of numpy passes over
the concatenated edge array.

Segments are described by an ``offsets`` array of length ``nseg + 1`` with
``offsets[0] == 0`` and ``offsets[-1] == n`` where ``n`` is the length of the
flat value array.  Empty segments are allowed.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "segment_ids",
    "segment_first_true",
    "segment_any",
    "segment_sums",
    "segment_counts_until_first_true",
    "segment_first_true_and_counts",
    "AdjacencyGather",
    "gather_adjacency",
]


def _check_offsets(offsets: np.ndarray, n: int) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a 1-D array with at least one entry")
    if offsets[0] != 0 or offsets[-1] != n:
        raise ValueError(
            f"offsets must start at 0 and end at {n}, got {offsets[0]}..{offsets[-1]}"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def segment_ids(offsets: np.ndarray, n: int | None = None) -> np.ndarray:
    """Segment index of every flat element.

    ``segment_ids([0, 2, 2, 5]) == [0, 0, 2, 2, 2]``.
    """
    if n is None:
        n = int(np.asarray(offsets)[-1])
    offsets = _check_offsets(offsets, n)
    nseg = offsets.size - 1
    lengths = np.diff(offsets)
    return np.repeat(np.arange(nseg, dtype=np.int64), lengths)


def segment_first_true(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Flat index of the first True element in each segment, or -1.

    Returns an int64 array of length ``nseg``.
    """
    mask = np.asarray(mask, dtype=bool)
    offsets = _check_offsets(offsets, mask.size)
    nseg = offsets.size - 1
    out = np.full(nseg, -1, dtype=np.int64)
    hits = np.flatnonzero(mask)
    if hits.size == 0:
        return out
    # For each segment, the first hit is the first element of `hits` that is
    # >= offsets[s]; it belongs to the segment iff it is < offsets[s + 1].
    pos = np.searchsorted(hits, offsets[:-1], side="left")
    valid = pos < hits.size
    cand = np.where(valid, hits[np.minimum(pos, hits.size - 1)], -1)
    in_seg = valid & (cand < offsets[1:])
    out[in_seg] = cand[in_seg]
    return out


def segment_any(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Boolean per segment: does the segment contain any True element?"""
    return segment_first_true(mask, offsets) >= 0


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum of values within each segment (empty segments sum to 0)."""
    values = np.asarray(values)
    offsets = _check_offsets(offsets, values.size)
    if values.size == 0:
        return np.zeros(offsets.size - 1, dtype=np.int64)
    csum = np.concatenate([[0], np.cumsum(values, dtype=np.int64)])
    return csum[offsets[1:]] - csum[offsets[:-1]]


def segment_counts_until_first_true(
    mask: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Number of elements an early-exiting scan examines per segment.

    A scan over segment ``s`` examines elements in order and stops at the
    first True element (inclusive).  If the segment has no True element the
    whole segment is examined.  This models the bottom-up BFS early exit:
    the parent search stops at the first neighbour found in the frontier.
    """
    return segment_first_true_and_counts(mask, offsets)[1]


def segment_first_true_and_counts(
    mask: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fused :func:`segment_first_true` + early-exit examined counts.

    The two quantities share all their intermediate work (the hit search
    and the segment geometry), so the bottom-up kernels ask for them in
    one call rather than running the hit search twice.  Returns
    ``(first, examined)``: the flat index of each segment's first True
    element (-1 when none) and the number of elements an early-exiting
    scan examines (first-hit position inclusive, or the full segment when
    there is no hit).
    """
    mask = np.asarray(mask, dtype=bool)
    offsets = _check_offsets(offsets, mask.size)
    first = segment_first_true(mask, offsets)
    examined = np.diff(offsets)
    found = first >= 0
    examined[found] = first[found] - offsets[:-1][found] + 1
    return first, examined


class AdjacencyGather(NamedTuple):
    """Flattened CSR adjacency of a set of vertices.

    ``pos`` indexes the local ``targets`` array (so ``targets[pos]`` is the
    concatenated adjacency), ``rel`` is each flat element's offset within
    its own segment, ``seg_offsets`` delimits per-vertex segments in the
    flat arrays, and ``lens`` is each vertex's degree.
    """

    pos: np.ndarray
    rel: np.ndarray
    seg_offsets: np.ndarray
    lens: np.ndarray


def gather_adjacency(
    offsets: np.ndarray, vertices: np.ndarray
) -> AdjacencyGather:
    """Flatten the CSR rows of ``vertices`` into one index array.

    This is the shared flattening step of the top-down and bottom-up
    kernels.  The per-element segment offset (``rel``) is computed once
    and the CSR position derived from it, so each of the two ``repeat``
    expansions runs exactly once (the historic kernels repeated
    ``flat_starts`` twice).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = offsets[vertices]
    lens = offsets[vertices + 1] - starts
    seg_offsets = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
    total = int(seg_offsets[-1])
    rel = np.arange(total, dtype=np.int64) - np.repeat(
        seg_offsets[:-1], lens
    )
    pos = rel + np.repeat(starts, lens)
    return AdjacencyGather(pos=pos, rel=rel, seg_offsets=seg_offsets, lens=lens)
