"""Plain-text rendering of experiment results.

Every benchmark harness prints the rows/series the paper's figures and
tables report; these helpers keep that output aligned and readable in a
terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_si", "format_bytes", "format_time_ns"]

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
]


def format_si(value: float, unit: str = "", precision: int = 2) -> str:
    """Format ``value`` with an SI prefix: ``39.2e9 -> '39.20 G'``."""
    if value == 0:
        return f"0 {unit}".rstrip()
    mag = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if mag >= factor:
            return f"{value / factor:.{precision}f} {prefix}{unit}".rstrip()
    return f"{value:.{precision}f} {unit}".rstrip()


def format_bytes(nbytes: float, precision: int = 1) -> str:
    """Format a byte count with binary prefixes."""
    mag = abs(nbytes)
    for factor, prefix in [(2**40, "Ti"), (2**30, "Gi"), (2**20, "Mi"), (2**10, "Ki")]:
        if mag >= factor:
            return f"{nbytes / factor:.{precision}f} {prefix}B"
    return f"{nbytes:.0f} B"


def format_time_ns(ns: float, precision: int = 2) -> str:
    """Format a duration in nanoseconds with a human-scale unit."""
    mag = abs(ns)
    if mag >= 1e9:
        return f"{ns / 1e9:.{precision}f} s"
    if mag >= 1e6:
        return f"{ns / 1e6:.{precision}f} ms"
    if mag >= 1e3:
        return f"{ns / 1e3:.{precision}f} us"
    return f"{ns:.{precision}f} ns"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
